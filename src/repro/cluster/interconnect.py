"""Interconnect model: how long moving bytes between devices takes."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.exceptions import ConfigurationError


@dataclass(frozen=True)
class LinkSpec:
    """A point-to-point link characterised by bandwidth and latency."""

    name: str
    bandwidth_bytes_per_second: float
    latency_seconds: float

    def transfer_time(self, num_bytes: int) -> float:
        """Latency plus serialisation delay for ``num_bytes``."""
        if num_bytes < 0:
            raise ValueError(f"transfer size must be non-negative, got {num_bytes}")
        if num_bytes == 0:
            return 0.0
        return self.latency_seconds + num_bytes / self.bandwidth_bytes_per_second


#: common intra-server links
INTERCONNECT_PRESETS: Dict[str, LinkSpec] = {
    "pcie-gen3": LinkSpec("pcie-gen3", bandwidth_bytes_per_second=12.0e9, latency_seconds=10e-6),
    "pcie-gen4": LinkSpec("pcie-gen4", bandwidth_bytes_per_second=24.0e9, latency_seconds=8e-6),
    "nvlink2": LinkSpec("nvlink2", bandwidth_bytes_per_second=150.0e9, latency_seconds=5e-6),
    "ethernet-25g": LinkSpec("ethernet-25g", bandwidth_bytes_per_second=3.1e9, latency_seconds=50e-6),
}


class Interconnect:
    """Pairwise link model between named devices.

    By default every device pair shares a single homogeneous ``default_link``
    (the paper's testbed is one PCIe server); specific pairs can be
    overridden, e.g. to model NVLink islands.
    """

    def __init__(self, default_link: LinkSpec = INTERCONNECT_PRESETS["pcie-gen3"]):
        self.default_link = default_link
        self._overrides: Dict[Tuple[str, str], LinkSpec] = {}

    def set_link(self, device_a: str, device_b: str, link: LinkSpec) -> None:
        """Override the link between a specific unordered device pair."""
        if device_a == device_b:
            raise ConfigurationError("cannot set a link from a device to itself")
        self._overrides[self._key(device_a, device_b)] = link

    def link_between(self, src: str, dst: str) -> Optional[LinkSpec]:
        """The link used between two devices, or ``None`` if they are the same device."""
        if src == dst:
            return None
        return self._overrides.get(self._key(src, dst), self.default_link)

    def transfer_time(self, num_bytes: int, src: str, dst: str) -> float:
        """Seconds to move ``num_bytes`` from ``src`` to ``dst`` (0 if same device)."""
        link = self.link_between(src, dst)
        if link is None:
            return 0.0
        return link.transfer_time(num_bytes)

    @staticmethod
    def _key(a: str, b: str) -> Tuple[str, str]:
        return (a, b) if a <= b else (b, a)

    def __repr__(self) -> str:
        return f"Interconnect(default={self.default_link.name}, overrides={len(self._overrides)})"
