"""Exhaustive grid search."""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.selection.experiment import ExperimentTracker, SelectionResult, TrialConfig
from repro.selection.search_space import SearchSpace

#: a train function receives (config, num_epochs) and returns a metrics dict
TrainFn = Callable[[TrialConfig, int], Dict[str, float]]


def grid_search(
    search_space: SearchSpace,
    train_fn: TrainFn,
    num_epochs: int = 1,
    objective: str = "loss",
    mode: str = "min",
    max_trials: Optional[int] = None,
) -> SelectionResult:
    """Train every configuration on the Cartesian grid and rank by ``objective``.

    This is the workload shape the paper's motivating example describes (a
    radiologist comparing dozens of configurations): an embarrassingly
    parallel set of independent training jobs.
    """
    tracker = ExperimentTracker(objective=objective, mode=mode)
    for index, hyperparameters in enumerate(search_space.grid()):
        if max_trials is not None and index >= max_trials:
            break
        trial = TrialConfig(trial_id=f"grid-{index}", hyperparameters=hyperparameters)
        tracker.start_trial(trial.trial_id)
        metrics = train_fn(trial, num_epochs)
        tracker.record(trial.trial_id, hyperparameters, metrics, epochs_trained=num_epochs)
    return tracker.as_result("grid_search")
