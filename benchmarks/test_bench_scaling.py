"""E10 — scaling: Hydra's advantage versus device count and model count.

Sweeps the number of devices (2-16) and the number of candidate models (2-16)
and reports Hydra's speedup over classic model parallelism, showing where the
benefit saturates (when there are too few independent models to fill all
devices) and where it is largest.
"""

import pytest

from benchmarks.conftest import bert_large_jobs, print_report
from repro.cluster import Cluster
from repro.scheduler import ModelParallelStrategy, ShardParallelStrategy

DEVICE_COUNTS = (2, 4, 8)
MODEL_COUNTS = (2, 4, 8, 16)


@pytest.mark.benchmark(group="scaling")
def test_scaling_devices_and_models(benchmark):
    def sweep():
        results = {}
        for num_devices in DEVICE_COUNTS:
            cluster = Cluster.single_server(num_devices, "v100-16gb")
            for num_models in MODEL_COUNTS:
                jobs = bert_large_jobs(num_models, batches=1, batch_size=16,
                                       num_shards=min(4, num_devices))
                cluster.reset()
                mp = ModelParallelStrategy().schedule(jobs, cluster)
                cluster.reset()
                sp = ShardParallelStrategy().schedule(
                    bert_large_jobs(num_models, batches=1, batch_size=16,
                                    num_shards=min(4, num_devices)),
                    cluster,
                )
                results[(num_devices, num_models)] = (mp, sp)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for (num_devices, num_models), (mp, sp) in results.items():
        rows.append([
            num_devices,
            num_models,
            f"{mp.makespan:.2f}",
            f"{sp.makespan:.2f}",
            f"{sp.speedup_over(mp):.2f}x",
            f"{sp.cluster_utilization:.2f}",
            sp.waves,
        ])
    print_report(
        "Scaling — Hydra speedup over model parallelism vs devices and model count "
        "(BERT-Large, batch 16)",
        ["devices", "models", "model_parallel_s", "shard_parallel_s", "speedup",
         "hydra_util", "waves"],
        rows,
    )

    # Speedup grows with the number of models available to interleave...
    for num_devices in DEVICE_COUNTS:
        few = results[(num_devices, 2)][1].speedup_over(results[(num_devices, 2)][0])
        many = results[(num_devices, 16)][1].speedup_over(results[(num_devices, 16)][0])
        assert many >= few * 0.95
    # ...and with 4 devices and >=8 models, Hydra is at least 2x faster.
    mp, sp = results[(4, 8)]
    assert sp.speedup_over(mp) > 2.0
