"""E7 — §4.1 Cerebro integration: Hydra + data-parallel model hopping.

The paper plans to pair Hydra with Cerebro, whose model-hopper keeps data
partitions pinned to workers and moves models between them.  This benchmark
runs the hybrid strategy on an 8-GPU cluster (two 4-GPU groups, so two data
partitions) against pure shard parallelism and classic model parallelism, and
additionally exercises the *real-execution* Cerebro hopper on small models to
confirm it trains correctly.
"""

import numpy as np
import pytest

from benchmarks.conftest import bert_large_jobs, print_report
from repro.cluster import Cluster
from repro.data import make_classification
from repro.models import FeedForwardConfig, FeedForwardNetwork
from repro.optim import Adam
from repro.scheduler import (
    HybridShardDataParallelStrategy,
    ModelParallelStrategy,
    ShardParallelStrategy,
)
from repro.selection import CerebroModelHopper

NUM_MODELS = 4
BATCHES = 8


@pytest.mark.benchmark(group="cerebro")
def test_hybrid_shard_data_parallel_simulation(benchmark):
    cluster = Cluster.single_server(8, "v100-16gb")

    def run_all():
        results = {}
        for name, strategy in [
            ("model-parallel", ModelParallelStrategy()),
            ("shard-parallel", ShardParallelStrategy()),
            ("hybrid (2 groups)", HybridShardDataParallelStrategy(num_groups=2)),
        ]:
            cluster.reset()
            results[name] = strategy.schedule(
                bert_large_jobs(NUM_MODELS, batches=BATCHES, batch_size=16), cluster
            )
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        [name, f"{result.makespan:.2f}", f"{result.cluster_utilization:.3f}",
         f"{result.throughput_samples_per_second:.1f}"]
        for name, result in results.items()
    ]
    print_report(
        "§4.1 — Cerebro-style hybrid (8 GPUs, 2 groups of 4): makespan / utilization / throughput",
        ["strategy", "makespan_s", "utilization", "samples_per_s"],
        rows,
    )

    assert results["hybrid (2 groups)"].makespan < results["model-parallel"].makespan
    assert results["shard-parallel"].makespan < results["model-parallel"].makespan


@pytest.mark.benchmark(group="cerebro")
def test_cerebro_hopper_real_training(benchmark):
    data = make_classification(num_samples=128, num_features=16, num_classes=4,
                               class_separation=3.0, rng=np.random.default_rng(5))

    def run():
        hopper = CerebroModelHopper(data, num_workers=4, batch_size=16, seed=0)
        for seed, lr in enumerate([3e-3, 1e-2, 3e-2, 1e-3]):
            model = FeedForwardNetwork(FeedForwardConfig.tiny(), seed=seed)
            hopper.add_model(model, Adam(model.parameters(), lr=lr),
                             boundaries=[(0, 1), (1, 3)], model_id=f"lr={lr}")
        return hopper.fit(num_epochs=3)

    reports = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [model_id, f"{report.epochs[0]['loss']:.4f}", f"{report.epochs[-1]['loss']:.4f}"]
        for model_id, report in reports.items()
    ]
    print_report(
        "Cerebro model hopper (real execution, 4 data partitions, 4 sharded models)",
        ["model", "epoch0_loss", "final_loss"],
        rows,
    )
    assert all(r.epochs[-1]["loss"] < r.epochs[0]["loss"] for r in reports.values())
