"""Hyper-parameter search spaces.

A :class:`SearchSpace` maps parameter names to distributions.  Grid search
enumerates :class:`Choice` parameters (continuous parameters must be given a
grid explicitly); random search samples every parameter.
"""

from __future__ import annotations

import itertools
import math
from typing import Any, Dict, Iterator, List, Optional, Sequence

import numpy as np

from repro.exceptions import SearchSpaceError


class Distribution:
    """Base class for hyper-parameter distributions."""

    def sample(self, rng: np.random.Generator) -> Any:  # pragma: no cover - interface
        raise NotImplementedError

    def grid_values(self) -> List[Any]:  # pragma: no cover - interface
        raise NotImplementedError


class Choice(Distribution):
    """A finite set of candidate values."""

    def __init__(self, values: Sequence[Any]):
        if not values:
            raise SearchSpaceError("Choice requires at least one value")
        self.values = list(values)

    def sample(self, rng: np.random.Generator) -> Any:
        return self.values[int(rng.integers(0, len(self.values)))]

    def grid_values(self) -> List[Any]:
        return list(self.values)

    def __repr__(self) -> str:
        return f"Choice({self.values})"


class Uniform(Distribution):
    """Continuous uniform distribution on ``[low, high]``."""

    def __init__(self, low: float, high: float):
        if high <= low:
            raise SearchSpaceError(f"Uniform requires high > low, got [{low}, {high}]")
        self.low = float(low)
        self.high = float(high)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.low, self.high))

    def grid_values(self) -> List[Any]:
        raise SearchSpaceError(
            "Uniform parameters cannot be grid-enumerated; use Choice for grid search"
        )

    def __repr__(self) -> str:
        return f"Uniform({self.low}, {self.high})"


class LogUniform(Distribution):
    """Log-uniform distribution on ``[low, high]`` (e.g. learning rates)."""

    def __init__(self, low: float, high: float):
        if low <= 0 or high <= low:
            raise SearchSpaceError(f"LogUniform requires 0 < low < high, got [{low}, {high}]")
        self.low = float(low)
        self.high = float(high)

    def sample(self, rng: np.random.Generator) -> float:
        return float(math.exp(rng.uniform(math.log(self.low), math.log(self.high))))

    def grid_values(self) -> List[Any]:
        raise SearchSpaceError(
            "LogUniform parameters cannot be grid-enumerated; use Choice for grid search"
        )

    def __repr__(self) -> str:
        return f"LogUniform({self.low}, {self.high})"


class SearchSpace:
    """A named collection of hyper-parameter distributions."""

    def __init__(self, parameters: Dict[str, Distribution | Sequence[Any]]):
        if not parameters:
            raise SearchSpaceError("search space must define at least one parameter")
        self.parameters: Dict[str, Distribution] = {}
        for name, dist in parameters.items():
            if isinstance(dist, Distribution):
                self.parameters[name] = dist
            elif isinstance(dist, (list, tuple)):
                self.parameters[name] = Choice(dist)
            else:
                raise SearchSpaceError(
                    f"parameter {name!r}: expected a Distribution or a sequence of choices, "
                    f"got {type(dist).__name__}"
                )

    def sample(self, rng: Optional[np.random.Generator] = None) -> Dict[str, Any]:
        """Draw one configuration."""
        generator = rng if rng is not None else np.random.default_rng()
        return {name: dist.sample(generator) for name, dist in self.parameters.items()}

    def grid(self) -> Iterator[Dict[str, Any]]:
        """Enumerate the full Cartesian grid (Choice parameters only)."""
        names = list(self.parameters)
        value_lists = [self.parameters[name].grid_values() for name in names]
        for combination in itertools.product(*value_lists):
            yield dict(zip(names, combination))

    def grid_size(self) -> int:
        size = 1
        for dist in self.parameters.values():
            size *= len(dist.grid_values())
        return size

    def __contains__(self, name: str) -> bool:
        return name in self.parameters

    def __repr__(self) -> str:
        inner = ", ".join(f"{name}={dist!r}" for name, dist in self.parameters.items())
        return f"SearchSpace({inner})"
