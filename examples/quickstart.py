"""Quickstart: plan, simulate, and really train with Hydra-style shard parallelism.

Run with:  python examples/quickstart.py

The script walks through the three layers of the library:

1. profile a BERT-Large configuration and shard it for a 4x16 GB V100 server;
2. simulate a 4-model selection run under task / model / shard parallelism and
   compare makespan and utilization (the paper's Figure 2 comparison at scale);
3. really train two small MLPs with interleaved shard tasks on the numpy
   engine and show the losses they reach.
"""

import numpy as np

from repro import HydraConfig, HydraSession, run_model_selection
from repro.data import DataLoader, make_classification
from repro.models import BertConfig, FeedForwardConfig, FeedForwardNetwork
from repro.optim import Adam
from repro.utils import format_table, seed_everything

GIB = 1024 ** 3


def plan_bert_large(session: HydraSession) -> None:
    print("\n=== 1. Sharding BERT-Large for the paper's 4x V100-16GB testbed ===")
    profile = BertConfig.bert_large().profile(seq_len=384)
    total = profile.total_memory_bytes(batch_size=32)
    print(f"BERT-Large: {profile.total_params / 1e6:.0f}M parameters, "
          f"{total / GIB:.1f} GiB working set at batch 32 -> does not fit one 16 GiB GPU")
    plan = session.plan_model("bert-large", profile, batch_size=32)
    rows = [
        [shard.index, f"{shard.block_range}", f"{shard.param_count / 1e6:.1f}M",
         f"{shard.working_bytes / GIB:.2f}"]
        for shard in plan.shards
    ]
    print(format_table(["shard", "blocks", "params", "working GiB"], rows))
    print(f"Largest shard needs {plan.max_shard_working_bytes / GIB:.2f} GiB "
          f"({plan.memory_reduction_factor():.1f}x less than the whole model).")


def simulate_selection(session: HydraSession) -> None:
    print("\n=== 2. Simulating a 4-model BERT-Large selection run ===")
    profile = BertConfig.bert_large().profile(seq_len=384)
    jobs = [
        session.make_job(f"bert-candidate-{i}", profile, num_epochs=1,
                         batches_per_epoch=4, batch_size=32, num_shards=4)
        for i in range(4)
    ]
    results = session.compare_strategies(jobs)
    rows = []
    for name, result in results.items():
        if result is None:
            rows.append([name, "infeasible (model larger than one GPU)", "-", "-"])
            continue
        rows.append([name, f"{result.makespan:.1f}", f"{result.cluster_utilization:.2f}",
                     f"{result.throughput_samples_per_second:.1f}"])
    print(format_table(["strategy", "makespan (s)", "utilization", "samples/s"], rows))


def train_small_models() -> None:
    print("\n=== 3. Really training two MLP candidates with shard parallelism ===")
    data = make_classification(num_samples=256, num_features=32, num_classes=4,
                               class_separation=2.5, rng=np.random.default_rng(0))

    def builder(seed: int, lr: float):
        def build():
            model = FeedForwardNetwork(
                FeedForwardConfig(input_dim=32, hidden_dims=(64, 32), num_classes=4), seed=seed
            )
            loader = DataLoader(data, batch_size=32, shuffle=True, seed=seed)
            return model, Adam(model.parameters(), lr=lr), loader
        return build

    result = run_model_selection(
        {"lr=0.01": builder(0, 1e-2), "lr=0.001": builder(1, 1e-3)},
        num_devices=2,
        num_epochs=5,
    )
    rows = [[trial.trial_id, f"{trial.metric('loss'):.4f}"] for trial in result.ranked()]
    print(format_table(["candidate", "final loss"], rows))
    print(f"Best candidate: {result.best().trial_id}")


def main() -> None:
    seed_everything(0)
    session = HydraSession(HydraConfig(num_devices=4, gpu="v100-16gb"))
    plan_bert_large(session)
    simulate_selection(session)
    train_small_models()


if __name__ == "__main__":
    main()
