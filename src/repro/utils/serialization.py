"""JSON (de)serialisation helpers tolerant of numpy scalar types,
plus the pickle round-trip probe the process runtime gates on."""

from __future__ import annotations

import dataclasses
import json
import pickle
from pathlib import Path
from typing import Any, Optional

import numpy as np


def probe_picklable(obj: Any) -> Optional[str]:
    """Check whether ``obj`` survives a pickle round-trip.

    Returns ``None`` when it does, otherwise a short human-readable reason
    (exception type and message).  The process runtime uses this to decide —
    per object, not per class — whether a backend, task, or builder can
    cross a process boundary: a wrapper holding only picklable state passes
    even if other instances of the same class would not.
    """
    try:
        pickle.loads(pickle.dumps(obj))
    except Exception as error:  # noqa: BLE001 - the reason is the result
        return f"{type(error).__name__}: {error}"
    return None


class _NumpyJSONEncoder(json.JSONEncoder):
    """JSON encoder that understands numpy scalars/arrays and dataclasses."""

    def default(self, o: Any) -> Any:
        if isinstance(o, (np.integer,)):
            return int(o)
        if isinstance(o, (np.floating,)):
            return float(o)
        if isinstance(o, (np.bool_,)):
            return bool(o)
        if isinstance(o, np.ndarray):
            return o.tolist()
        if dataclasses.is_dataclass(o) and not isinstance(o, type):
            return dataclasses.asdict(o)
        return super().default(o)


def to_json(obj: Any, path: str | Path | None = None, indent: int = 2) -> str:
    """Serialise ``obj`` to a JSON string, optionally writing it to ``path``."""
    text = json.dumps(obj, cls=_NumpyJSONEncoder, indent=indent, sort_keys=True)
    if path is not None:
        Path(path).write_text(text)
    return text


def from_json(source: str | Path) -> Any:
    """Parse JSON from a string or a file path."""
    if isinstance(source, Path) or (isinstance(source, str) and "\n" not in source and source.endswith(".json")):
        return json.loads(Path(source).read_text())
    return json.loads(source)
