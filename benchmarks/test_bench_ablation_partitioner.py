"""E9 (ablation) — partitioning algorithm and shard-count sweep.

DESIGN.md calls out the choice of partitioner (uniform block counts versus
min-max balanced) as a design decision; this ablation quantifies its effect on
per-device memory (what decides whether a model fits at all) and on Hydra's
makespan, across shard counts.
"""

import pytest

from benchmarks.conftest import GIB, PAPER_BATCH, bert_large_profile, print_report
from repro.scheduler import ShardParallelStrategy, TrainingJob
from repro.sharding import make_plan

SHARD_COUNTS = (2, 4, 8)
NUM_MODELS = 4


@pytest.mark.benchmark(group="ablation-partitioner")
def test_partitioner_ablation(benchmark, paper_cluster):
    profile = bert_large_profile()

    def sweep():
        results = {}
        for strategy_name in ("uniform", "min_max"):
            for num_shards in SHARD_COUNTS:
                plans = [
                    make_plan(f"bert-{i}", profile, batch_size=16,
                              num_shards=num_shards, strategy=strategy_name)
                    for i in range(NUM_MODELS)
                ]
                jobs = [
                    TrainingJob(model_id=f"bert-{i}", plan=plan, num_epochs=1,
                                batches_per_epoch=2, samples_per_batch=16)
                    for i, plan in enumerate(plans)
                ]
                paper_cluster.reset()
                schedule = ShardParallelStrategy().schedule(jobs, paper_cluster)
                results[(strategy_name, num_shards)] = (plans[0], schedule)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for (strategy_name, num_shards), (plan, schedule) in results.items():
        rows.append([
            strategy_name,
            num_shards,
            f"{plan.max_shard_working_bytes / GIB:.2f}",
            f"{plan.memory_reduction_factor():.2f}x",
            f"{schedule.makespan:.2f}",
        ])
    print_report(
        "Ablation — partitioner and shard count (4 BERT-Large models, batch 16, 4 GPUs)",
        ["partitioner", "num_shards", "max_shard_GiB", "memory_reduction", "hydra_makespan_s"],
        rows,
    )

    for num_shards in SHARD_COUNTS:
        uniform_plan, _ = results[("uniform", num_shards)]
        balanced_plan, _ = results[("min_max", num_shards)]
        # The balanced partitioner never produces a worse bottleneck shard.
        assert balanced_plan.max_shard_working_bytes <= uniform_plan.max_shard_working_bytes + 1
    # More shards -> smaller per-device footprint (the memory/parallelism trade-off).
    reductions = [results[("min_max", k)][0].memory_reduction_factor() for k in SHARD_COUNTS]
    assert reductions == sorted(reductions)
