"""The telemetry subsystem: spans, metrics, schema, and cross-process traces.

Covers the tentpole contracts of ``repro.telemetry``:

* the recorder — span nesting/parent links, interleaved ``begin``/``end``,
  bounded buffers, drain/ingest, and loadable Chrome + JSONL exports;
* the metrics registry — counters/gauges/histograms, live-stats collectors,
  Prometheus text exposition, and the unified snapshot schema that
  ``ModelServer.metrics()`` / ``FleetRouter.metrics()`` validate against;
* cross-process collection — an ``Experiment.run(pool="process")`` and a
  process-replica fleet each produce one merged trace holding parent *and*
  child-process spans, and a SIGKILLed child drops its buffer without ever
  tearing the parent's timeline;
* the observability satellites — idempotent ``set_verbosity``, contextual
  log records, and the bounded ``LatencyStats`` reservoir.
"""

from __future__ import annotations

import io
import json
import logging
import os
import pickle
import signal
import threading
import time

import numpy as np
import pytest

from repro.api import (
    Budget,
    Experiment,
    ModelSpec,
    ProcessReplica,
    ShardParallelBackend,
    serve,
    serve_fleet,
)
from repro.data import DataLoader, make_classification
from repro.exceptions import ConfigurationError, ServingError
from repro.memory import DeviceArena, SpillManager
from repro.models import FeedForwardConfig, FeedForwardNetwork
from repro.optim import Adam
from repro.selection import SearchSpace
from repro.serving import LatencyStats, ModelRegistry
from repro.telemetry import (
    LATENCY_SNAPSHOT_KEYS,
    NULL_TELEMETRY,
    SchemaError,
    Telemetry,
    assert_monotonic,
    validate_fleet_metrics,
    validate_latency_snapshot,
    validate_registry_snapshot,
)
from repro.utils import get_log_context, get_logger, log_context, set_verbosity

DATASET = make_classification(
    num_samples=64, num_features=8, num_classes=3, class_separation=2.0,
    rng=np.random.default_rng(0),
)


def _build_trainable(trial):
    width = int(trial.get("width", 16))
    config = FeedForwardConfig(input_dim=8, hidden_dims=(width,), num_classes=3)
    model = FeedForwardNetwork(config, seed=0)
    optimizer = Adam(model.parameters(), lr=float(trial.get("lr", 1e-2)))
    loader = DataLoader(DATASET, batch_size=16, shuffle=True, seed=0)
    return model, optimizer, loader


def _build_plain():
    config = FeedForwardConfig(input_dim=8, hidden_dims=(16,), num_classes=3)
    return FeedForwardNetwork(config, seed=0)


class _SleepyNetwork(FeedForwardNetwork):
    """A forward slow enough to SIGKILL its process mid-request."""

    def forward(self, batch):
        time.sleep(0.4)
        return super().forward(batch)


def _build_sleepy():
    config = FeedForwardConfig(input_dim=8, hidden_dims=(16,), num_classes=3)
    return _SleepyNetwork(config, seed=0)


def _fleet_builder(name):
    return _build_plain()


def _arrays(rows: int = 4):
    rng = np.random.default_rng(7)
    return {"features": rng.normal(size=(rows, 8)).astype(np.float64)}


# --------------------------------------------------------------------- #
# Recorder
# --------------------------------------------------------------------- #
class TestRecorder:
    def test_nested_spans_link_to_their_parent(self):
        tel = Telemetry()
        with tel.span("outer", cat="t"):
            with tel.span("inner", cat="t", detail=1):
                pass
        inner, outer = tel.events()
        assert (inner["name"], outer["name"]) == ("inner", "outer")
        assert inner["parent"] == outer["id"]
        assert outer["parent"] is None
        assert inner["args"] == {"detail": 1}
        assert inner["ph"] == "X" and inner["dur"] >= 0
        assert inner["pid"] == os.getpid()

    def test_begin_end_interleaves_without_stacking(self):
        # Two models' steps overlap on one thread: begin() must not make
        # the second span a child of the first.
        tel = Telemetry()
        a = tel.begin("step", cat="t", model="a")
        b = tel.begin("step", cat="t", model="b")
        tel.end(a)
        tel.end(b)
        first, second = tel.events()
        assert first["parent"] is None and second["parent"] is None

    def test_begin_adopts_the_enclosing_span(self):
        tel = Telemetry()
        with tel.span("epoch", cat="t"):
            token = tel.begin("step", cat="t")
            tel.end(token)
        step, epoch = tel.events()
        assert step["parent"] == epoch["id"]

    def test_instant_events(self):
        tel = Telemetry()
        tel.event("request.submit", cat="serving", rows=4)
        (event,) = tel.events()
        assert event["ph"] == "i"
        assert event["args"] == {"rows": 4}

    def test_buffer_is_bounded_and_counts_drops(self):
        tel = Telemetry(max_events=2)
        for index in range(5):
            tel.event(f"e{index}")
        assert len(tel.events()) == 2
        assert tel.dropped == 3

    def test_drain_clears_and_ingest_merges(self):
        child = Telemetry()
        with child.span("trial", cat="t"):
            pass
        shipped = child.drain()
        assert child.events() == []
        parent = Telemetry()
        parent.ingest(shipped)
        (event,) = parent.events()
        assert event["name"] == "trial"

    def test_chrome_trace_loads_and_is_relative_microseconds(self, tmp_path):
        tel = Telemetry()
        with tel.span("outer", cat="t"):
            tel.event("mark", cat="t")
        path = tel.export_chrome_trace(tmp_path / "trace.json")
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
        rows = doc["traceEvents"]
        # one process_name metadata row + the two events
        assert [row["ph"] for row in rows] == ["M", "i", "X"]
        for row in rows[1:]:
            assert row["ts"] >= 0.0  # relative to the earliest event

    def test_jsonl_export_round_trips(self, tmp_path):
        tel = Telemetry()
        with tel.span("outer", cat="t"):
            pass
        path = tel.export_jsonl(tmp_path / "events.jsonl")
        lines = [json.loads(line) for line in open(path, encoding="utf-8")]
        assert [line["name"] for line in lines] == ["outer"]
        assert lines[0]["ts"] == 0.0

    def test_null_telemetry_is_a_picklable_noop_singleton(self):
        assert NULL_TELEMETRY.enabled is False
        assert pickle.loads(pickle.dumps(NULL_TELEMETRY)) is NULL_TELEMETRY
        with NULL_TELEMETRY.span("anything", whatever=1):
            pass
        NULL_TELEMETRY.end(NULL_TELEMETRY.begin("x"))
        NULL_TELEMETRY.counter("c")
        assert NULL_TELEMETRY.events() == []
        assert NULL_TELEMETRY.prometheus_text() == ""

    def test_live_recorder_refuses_to_pickle(self):
        # Recorders hold locks; the process boundary is crossed with an
        # enabled *flag* plus drain/ingest, never the object.
        with pytest.raises(TypeError):
            pickle.dumps(Telemetry())


# --------------------------------------------------------------------- #
# Metrics registry + schema
# --------------------------------------------------------------------- #
class TestMetrics:
    def test_counters_are_monotonic(self):
        tel = Telemetry()
        tel.counter("trials.completed")
        tel.counter("trials.completed", 2)
        assert tel.metrics_snapshot()["counters"]["trials.completed"] == 3.0
        with pytest.raises(ValueError):
            tel.counter("trials.completed", -1)

    def test_gauges_and_histograms(self):
        tel = Telemetry()
        tel.gauge("queue.depth", 5)
        for value in (1.0, 2.0, 3.0, 4.0):
            tel.observe("latency", value)
        snap = tel.metrics_snapshot()
        assert snap["gauges"]["queue.depth"] == 5.0
        hist = snap["histograms"]["latency"]
        assert hist["count"] == 4 and hist["min"] == 1.0 and hist["max"] == 4.0
        validate_registry_snapshot(snap)

    def test_collectors_absorb_live_stats(self):
        tel = Telemetry()
        stats = LatencyStats()
        stats.record(0.010)
        tel.register_collector("server.demo", stats.snapshot)
        snap = tel.metrics_snapshot()
        assert snap["collectors"]["server.demo"]["completed"] == 1.0
        validate_registry_snapshot(snap)

    def test_raising_collector_degrades_to_an_error_entry(self):
        tel = Telemetry()
        tel.register_collector("bad", lambda: 1 / 0)
        snap = tel.metrics_snapshot()
        assert "ZeroDivisionError" in snap["collectors"]["bad"]["error"]

    def test_prometheus_text_exposition(self):
        tel = Telemetry()
        tel.counter("trials.completed", 3)
        tel.gauge("queue.depth", 2)
        tel.observe("latency", 0.5)
        tel.register_collector("pool", lambda: {"workers": 4, "nested": {"x": 1}})
        text = tel.prometheus_text()
        assert "# TYPE repro_trials_completed counter" in text
        assert "repro_trials_completed 3" in text
        assert "repro_queue_depth 2" in text
        assert "repro_latency_count 1" in text
        assert "repro_pool_workers 4" in text
        assert "repro_pool_nested_x 1" in text

    def test_assert_monotonic_catches_regressions(self):
        before = {"completed": 1.0, "failed": 0.0}
        after = {"completed": 2.0, "failed": 0.0}
        assert_monotonic(before, after)
        with pytest.raises(SchemaError):
            assert_monotonic(after, before)

    def test_latency_schema_rejects_missing_and_extra_keys(self):
        good = LatencyStats().snapshot()
        validate_latency_snapshot(good)
        assert set(good) == set(LATENCY_SNAPSHOT_KEYS)
        with pytest.raises(SchemaError):
            validate_latency_snapshot({k: v for k, v in good.items() if k != "completed"})
        with pytest.raises(SchemaError):
            validate_latency_snapshot(dict(good, extra=1.0))
        with pytest.raises(SchemaError):
            validate_latency_snapshot(dict(good, completed=-1.0))

    def test_server_metrics_validate_against_the_schema(self):
        server = serve(_build_plain(), replicas=1, max_batch_size=4, name="schema")
        try:
            before = server.metrics()
            validate_latency_snapshot(before)
            for _ in range(3):
                server.request(_arrays())
            after = server.metrics()
            validate_latency_snapshot(after)
            assert_monotonic(before, after)
            assert after["completed"] == 3.0
        finally:
            server.stop()

    def test_fleet_metrics_validate_against_the_schema(self, tmp_path):
        registry = ModelRegistry(tmp_path / "registry")
        registry.publish("mlp-a", _build_plain())
        router = serve_fleet(registry, _fleet_builder, replicas=1, max_batch_size=4)
        try:
            router.request("mlp-a", _arrays())
            metrics = router.metrics()
            validate_fleet_metrics(metrics)
            validate_latency_snapshot(metrics["fleet"])
            validate_latency_snapshot(metrics["models"]["mlp-a"])
        finally:
            router.stop()


# --------------------------------------------------------------------- #
# Instrumented components (single-process)
# --------------------------------------------------------------------- #
class TestInstrumentation:
    def test_spill_manager_records_lease_evict_fetch(self):
        tel = Telemetry()
        a = np.zeros(4, dtype=np.float32)
        b = np.ones(4, dtype=np.float32)
        manager = SpillManager([DeviceArena("dev0", 16)], telemetry=tel)
        manager.register(("m", 0), "dev0", 16, lambda: [a])
        manager.register(("m", 1), "dev0", 16, lambda: [b])
        with manager.lease(("m", 0)):
            pass
        with manager.lease(("m", 1)):  # evicts shard 0
            pass
        with manager.lease(("m", 0)):  # demand-restores shard 0
            pass
        manager.close()
        names = [event["name"] for event in tel.events()]
        assert names.count("spill.lease") == 3
        assert "spill.evict" in names
        assert "spill.fetch" in names

    def test_experiment_trace_covers_trial_epoch_step(self):
        tel = Telemetry()
        result = Experiment(
            space=SearchSpace({"width": [16, 32]}),
            searcher="grid",
            objective="loss",
            budget=Budget(epochs_per_trial=1),
        ).run(
            backend=ShardParallelBackend(builder=_build_trainable, num_devices=2),
            workers=2,
            telemetry=tel,
        )
        assert len(result.trials) == 2
        events = tel.events()
        names = {event["name"] for event in events}
        assert {"experiment", "trial", "epoch", "step"} <= names
        spans = {event["id"]: event for event in events}
        # Every step chains up to its trial through the parent links.  (The
        # experiment span lives on the caller's thread; trials run on pool
        # threads, so the chain's root is the trial, not the experiment.)
        step = next(e for e in events if e["name"] == "step")
        chain = []
        while step is not None:
            chain.append(step["name"])
            step = spans.get(step["parent"])
        assert chain == ["step", "epoch", "trial"]
        # ...and the runtime counted the completions.
        counters = tel.metrics_snapshot()["counters"]
        assert counters["runtime.trials.completed"] == 2.0

    def test_serve_records_submit_batch_forward(self):
        tel = Telemetry()
        server = serve(
            _build_plain(), replicas=1, max_batch_size=4, name="traced",
            telemetry=tel,
        )
        try:
            server.request(_arrays())
        finally:
            server.stop()
        events = tel.events()
        names = {event["name"] for event in events}
        assert {"request.submit", "serve.batch", "serve.forward"} <= names
        forward = next(e for e in events if e["name"] == "serve.forward")
        batch = next(e for e in events if e["name"] == "serve.batch")
        assert forward["parent"] == batch["id"]
        # The server's stats registered as a collector under its name.
        snap = tel.metrics_snapshot()
        validate_latency_snapshot(snap["collectors"]["server.traced"])

    def test_disabled_telemetry_records_nothing(self):
        server = serve(_build_plain(), replicas=1, max_batch_size=4)
        try:
            server.request(_arrays())
        finally:
            server.stop()
        assert server.telemetry is NULL_TELEMETRY
        assert server.telemetry.events() == []


# --------------------------------------------------------------------- #
# Cross-process collection
# --------------------------------------------------------------------- #
class TestCrossProcess:
    def test_process_pool_experiment_trace_has_child_spans(self, tmp_path):
        tel = Telemetry()
        result = Experiment(
            space=SearchSpace({"width": [16, 32]}),
            searcher="grid",
            objective="loss",
            budget=Budget(epochs_per_trial=1),
        ).run(
            backend=ShardParallelBackend(builder=_build_trainable, num_devices=2),
            workers=2,
            pool="process",
            telemetry=tel,
        )
        assert len(result.trials) == 2
        events = tel.events()
        parent_pid = os.getpid()
        child = [e for e in events if e["pid"] != parent_pid]
        assert {e["name"] for e in child} >= {"trial", "epoch", "step"}
        assert {e["name"] for e in events if e["pid"] == parent_pid} >= {"experiment"}
        # Child spans keep their own process id and link trial→epoch→step.
        spans = {event["id"]: event for event in events}
        step = next(e for e in child if e["name"] == "step")
        chain = [step["name"]]
        while spans.get(step["parent"]) is not None:
            step = spans[step["parent"]]
            chain.append(step["name"])
        assert chain == ["step", "epoch", "trial"]
        # The merged timeline exports to a loadable Chrome trace with both
        # process tracks present.
        path = tel.export_chrome_trace(tmp_path / "trace.json")
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
        tracks = {
            row["pid"] for row in doc["traceEvents"] if row["ph"] == "M"
        }
        assert parent_pid in tracks and len(tracks) >= 2

    def test_process_fleet_trace_has_child_spans(self, tmp_path):
        registry = ModelRegistry(tmp_path / "registry")
        registry.publish("mlp-a", _build_plain())
        tel = Telemetry()
        router = serve_fleet(
            registry, _fleet_builder, replicas=1, max_batch_size=4,
            replica_mode="process", telemetry=tel,
        )
        try:
            for _ in range(2):
                router.request("mlp-a", _arrays())
        finally:
            router.stop()
        events = tel.events()
        parent_pid = os.getpid()
        parent_names = {e["name"] for e in events if e["pid"] == parent_pid}
        child_names = {e["name"] for e in events if e["pid"] != parent_pid}
        assert {"request.submit", "serve.batch", "serve.forward"} <= parent_names
        assert {"replica.build", "replica.forward"} <= child_names
        path = tel.export_chrome_trace(tmp_path / "trace.json")
        with open(path, encoding="utf-8") as handle:
            json.load(handle)

    def test_sigkilled_replica_never_tears_the_trace(self, tmp_path):
        tel = Telemetry()
        replica = ProcessReplica(
            ModelSpec(builder=_build_sleepy), name="victim", telemetry=tel,
        )
        try:
            replica.start()
            pid = replica.pid
            killer = threading.Timer(0.15, os.kill, args=(pid, signal.SIGKILL))
            killer.start()
            try:
                with pytest.raises(ServingError):
                    replica.infer(_arrays(2), pad_to=4)
            finally:
                killer.cancel()
            # The killed child's buffered spans are simply gone; whatever
            # made it into the parent is whole, and the trace still loads.
            for event in tel.events():
                assert {"name", "cat", "ph", "ts", "pid", "tid"} <= set(event)
            # The respawned child flushes normally again.
            replica.infer(_arrays(2), pad_to=4)
            assert "replica.forward" in {
                e["name"] for e in tel.events() if e["pid"] != os.getpid()
            }
            path = tel.export_chrome_trace(tmp_path / "trace.json")
            with open(path, encoding="utf-8") as handle:
                json.load(handle)
        finally:
            replica.close()


# --------------------------------------------------------------------- #
# Satellite: logging
# --------------------------------------------------------------------- #
class TestLogging:
    def _managed_handlers(self):
        root = logging.getLogger("repro")
        return [h for h in root.handlers if getattr(h, "_repro_managed", False)]

    def test_set_verbosity_is_idempotent(self):
        set_verbosity("INFO")
        set_verbosity("INFO")
        set_verbosity("DEBUG")
        assert len(self._managed_handlers()) == 1
        assert logging.getLogger("repro").level == logging.DEBUG

    def test_set_verbosity_rejects_unknown_levels(self):
        with pytest.raises(ConfigurationError):
            set_verbosity("LOUD")

    def test_log_context_reaches_the_record(self):
        stream = io.StringIO()
        set_verbosity("INFO", stream=stream)
        logger = get_logger("test")
        with log_context(trial_id="grid-3", model="mlp"):
            assert get_log_context() == {"trial_id": "grid-3", "model": "mlp"}
            logger.info("inside")
        logger.info("outside")
        inside, outside = stream.getvalue().strip().splitlines()
        assert "[trial_id=grid-3 model=mlp]" in inside
        assert "trial_id" not in outside
        assert get_log_context() == {}

    def test_log_context_nests_and_restores(self):
        with log_context(trial_id="a"):
            with log_context(request_id="r1"):
                assert get_log_context() == {"trial_id": "a", "request_id": "r1"}
            assert get_log_context() == {"trial_id": "a"}

    def test_log_context_is_thread_local(self):
        seen = {}

        def worker():
            seen["context"] = get_log_context()

        with log_context(trial_id="parent-only"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["context"] == {}


# --------------------------------------------------------------------- #
# Satellite: bounded LatencyStats
# --------------------------------------------------------------------- #
class TestBoundedLatencyStats:
    def test_below_the_cap_percentiles_are_exact(self):
        exact, bounded = LatencyStats(), LatencyStats(max_samples=1000)
        for value in np.random.default_rng(5).uniform(0.001, 0.1, size=500):
            exact.record(value)
            bounded.record(value)
        a, b = exact.snapshot(), bounded.snapshot()
        for key in ("latency_p50_ms", "latency_p95_ms", "latency_p99_ms", "completed"):
            assert a[key] == b[key]

    def test_above_the_cap_memory_is_bounded_and_counts_exact(self):
        stats = LatencyStats(max_samples=64)
        for value in np.random.default_rng(6).uniform(0.001, 0.1, size=5000):
            stats.record(value)
        assert len(stats._latencies) == 64
        snap = stats.snapshot()
        assert snap["completed"] == 5000.0  # exact, not sampled
        validate_latency_snapshot(snap)
        # The reservoir is a uniform sample: percentiles stay in range.
        assert 0.001 <= snap["latency_p50_ms"] / 1e3 <= 0.1

    def test_reservoir_is_deterministic(self):
        def run():
            stats = LatencyStats(max_samples=32)
            for value in range(1000):
                stats.record(value / 1000.0)
            return list(stats._latencies)

        assert run() == run()  # fixed-seed reservoir: reproducible samples

    def test_invalid_cap_rejected(self):
        with pytest.raises(ValueError):
            LatencyStats(max_samples=0)
