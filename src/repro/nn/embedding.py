"""Embedding lookup layer."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd import ops
from repro.autograd.tensor import Tensor
from repro.nn import init
from repro.nn.module import Module
from repro.nn.parameter import Parameter
from repro.utils.rng import get_rng


class Embedding(Module):
    """Maps integer ids to dense vectors via a learned lookup table."""

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        rng: Optional[np.random.Generator] = None,
        std: float = 0.02,
    ):
        super().__init__()
        self.num_embeddings = int(num_embeddings)
        self.embedding_dim = int(embedding_dim)
        generator = rng if rng is not None else get_rng()
        self.weight = Parameter(
            init.normal((self.num_embeddings, self.embedding_dim), generator, std=std),
            name="weight",
        )

    def forward(self, indices: Tensor | np.ndarray) -> Tensor:
        ids = indices.data if isinstance(indices, Tensor) else np.asarray(indices)
        if ids.min() < 0 or ids.max() >= self.num_embeddings:
            raise IndexError(
                f"embedding ids must be in [0, {self.num_embeddings}); "
                f"got range [{ids.min()}, {ids.max()}]"
            )
        return ops.embedding(self.weight, ids)

    def __repr__(self) -> str:
        return f"Embedding({self.num_embeddings}, {self.embedding_dim})"
