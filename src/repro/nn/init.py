"""Weight initialisation schemes.

All initialisers take an explicit numpy ``Generator`` so that model
construction is deterministic given a seed — a prerequisite for the paper's
"exact replication of training output" experiments, where the same model must
be constructed twice (sharded and unsharded) with identical weights.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np


def xavier_uniform(shape: Sequence[int], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier uniform initialisation for weight matrices."""
    fan_in, fan_out = _fans(shape)
    limit = gain * math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(np.float32)


def xavier_normal(shape: Sequence[int], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier normal initialisation."""
    fan_in, fan_out = _fans(shape)
    std = gain * math.sqrt(2.0 / (fan_in + fan_out))
    return rng.normal(0.0, std, size=shape).astype(np.float32)


def kaiming_uniform(shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
    """He/Kaiming uniform initialisation, suited to ReLU networks."""
    fan_in, _ = _fans(shape)
    limit = math.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape).astype(np.float32)


def normal(shape: Sequence[int], rng: np.random.Generator, std: float = 0.02) -> np.ndarray:
    """Truncated-free normal initialisation (BERT uses std=0.02)."""
    return rng.normal(0.0, std, size=shape).astype(np.float32)


def zeros(shape: Sequence[int]) -> np.ndarray:
    """All-zero initialisation (biases, LayerNorm offsets)."""
    return np.zeros(shape, dtype=np.float32)


def ones(shape: Sequence[int]) -> np.ndarray:
    """All-one initialisation (LayerNorm scales)."""
    return np.ones(shape, dtype=np.float32)


def _fans(shape: Sequence[int]) -> tuple[int, int]:
    if len(shape) < 1:
        raise ValueError("initialisation requires at least a 1-D shape")
    if len(shape) == 1:
        return shape[0], shape[0]
    fan_in = int(np.prod(shape[1:]))
    fan_out = int(shape[0])
    return fan_in, fan_out
