"""Optimizer base class."""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

from repro.nn.parameter import Parameter


class Optimizer:
    """Base class: holds parameters and per-parameter state.

    ``state_bytes_per_parameter`` reports how many extra bytes of optimizer
    state each trained scalar requires (0 for plain SGD, 8 for Adam with two
    float32 moments); the cluster memory model uses this to charge optimizer
    state to the device that owns a shard.
    """

    state_bytes_per_parameter: int = 0

    def __init__(self, parameters: Iterable[Parameter], lr: float):
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = float(lr)
        self.state: Dict[int, Dict[str, np.ndarray]] = {}
        self.step_count = 0
        self._scratch: Dict[str, np.ndarray] = {}

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        """Apply one update using the gradients currently stored on the parameters.

        Gradients are handed to :meth:`_update` read-only: updates write the
        parameter and optimizer state in place (via ``out=`` ufuncs and the
        shared scratch buffer) and never rebind ``param.data`` or mutate
        ``param.grad``.

        Equivalent to :meth:`advance_step` followed by :meth:`step_params`
        over every parameter — spilled execution uses those two halves
        directly to update one shard at a time while it is resident, which
        is bit-identical because each parameter's update depends only on its
        own gradient, state, and the shared step count.
        """
        self.advance_step()
        self.step_params(self.parameters)

    def advance_step(self) -> None:
        """Begin a new optimisation step (bumps the shared step counter).

        Must run exactly once per mini-batch before any :meth:`step_params`
        call of that batch (Adam's bias correction reads the counter).
        """
        self.step_count += 1

    def step_params(self, parameters: Iterable[Parameter]) -> None:
        """Update just ``parameters`` using their current gradients.

        The per-parameter arithmetic is exactly :meth:`step`'s, so updating a
        model shard by shard (each shard while it is device-resident) yields
        bit-identical results to one whole-model step.  The step counter is
        *not* advanced — callers group updates under one
        :meth:`advance_step`.
        """
        for param in parameters:
            grad = param.grad
            if grad is None:
                continue
            if grad.dtype != param.data.dtype:
                grad = grad.astype(param.data.dtype)
            elif not grad.flags.c_contiguous:
                # Transposed/strided gradient views (e.g. the fused linear
                # kernel's weight gradient) are normalised once here so the
                # update ufuncs stream over contiguous memory.
                grad = np.ascontiguousarray(grad)
            self._update(param, grad)

    def _update(self, param: Parameter, grad: np.ndarray) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def _param_state(self, param: Parameter) -> Dict[str, np.ndarray]:
        return self.state.setdefault(id(param), {})

    def _scratch_views(self, param: Parameter, count: int) -> tuple:
        """``count`` disjoint param-shaped views of one reusable scratch buffer.

        The buffer is allocated once per dtype and grown to the largest
        request, so a warmed-up optimizer performs zero per-step allocations:
        every temporary of every ``_update`` lives in this scratch space.
        """
        size = param.data.size
        key = np.dtype(param.data.dtype).str
        buffer = self._scratch.get(key)
        if buffer is None or buffer.size < count * size:
            buffer = np.empty(count * size, dtype=param.data.dtype)
            self._scratch[key] = buffer
        shape = param.data.shape
        return tuple(
            buffer[i * size:(i + 1) * size].reshape(shape) for i in range(count)
        )

    def state_dict(self) -> Dict[str, object]:
        """Serialisable snapshot of hyper-parameters and step count."""
        return {"lr": self.lr, "step_count": self.step_count}

    def __repr__(self) -> str:
        return f"{type(self).__name__}(lr={self.lr}, params={len(self.parameters)})"
