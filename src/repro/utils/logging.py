"""Lightweight logging helpers.

The library logs through the standard :mod:`logging` module under the
``"repro"`` namespace; :func:`set_verbosity` configures a sensible default
handler for scripts and benchmarks without forcing a configuration on
applications that embed the library.  It is idempotent and re-entrant:
every call replaces the handler *this module* installed (never anyone
else's), so repeated calls with a new level/format take effect instead of
duplicating output.

:func:`log_context` propagates request/trial context (``trial_id``,
``request_id``, ``model``, ...) into log records through a
:class:`contextvars.ContextVar`, so ``repro.*`` lines emitted from replica
threads or the router watchdog are attributable without grepping.  The
fields render as ``[key=value ...]`` via the ``%(repro_context)s`` format
slot, injected by :class:`ContextFilter` (installed on our handler; add it
to any custom handler that uses the slot).
"""

from __future__ import annotations

import contextvars
import logging
import sys
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional, TextIO

_ROOT_LOGGER_NAME = "repro"

#: default record format; ``%(repro_context)s`` renders the ambient context
DEFAULT_LOG_FORMAT = "%(asctime)s %(name)s %(levelname)s%(repro_context)s: %(message)s"

_context: "contextvars.ContextVar[Dict[str, Any]]" = contextvars.ContextVar(
    "repro_log_context", default={}
)


def get_logger(name: str = "") -> logging.Logger:
    """Return a logger under the ``repro`` namespace.

    ``get_logger("scheduler")`` returns the ``repro.scheduler`` logger;
    ``get_logger()`` returns the package root logger.
    """
    if name:
        return logging.getLogger(f"{_ROOT_LOGGER_NAME}.{name}")
    return logging.getLogger(_ROOT_LOGGER_NAME)


# --------------------------------------------------------------------------- #
# Request/trial context propagation
# --------------------------------------------------------------------------- #
class ContextFilter(logging.Filter):
    """Injects the ambient :func:`log_context` fields into every record.

    Sets ``record.repro_context`` to ``" [k=v ...]"`` (or ``""`` when no
    context is active), which the default format renders inline.  Attach it
    to any handler whose format string uses ``%(repro_context)s``.
    """

    def filter(self, record: logging.LogRecord) -> bool:
        fields = _context.get()
        record.repro_context = (
            " [" + " ".join(f"{key}={value}" for key, value in fields.items()) + "]"
            if fields
            else ""
        )
        return True


@contextmanager
def log_context(**fields: Any) -> Iterator[None]:
    """Scope log-record context fields (``trial_id``, ``request_id``, ``model``).

    Nested scopes merge (inner values win); ``None`` values are dropped.
    Context is a :class:`~contextvars.ContextVar`, so each thread (and each
    asyncio task) sees only its own scope — a replica thread's ``model=``
    never leaks into the watchdog's lines.

    Example::

        with log_context(trial_id="grid-0"):
            logger.info("training")   # ... INFO [trial_id=grid-0]: training
    """
    merged = dict(_context.get())
    merged.update(
        {key: value for key, value in fields.items() if value is not None}
    )
    token = _context.set(merged)
    try:
        yield
    finally:
        _context.reset(token)


def get_log_context() -> Dict[str, Any]:
    """The currently active context fields (a copy)."""
    return dict(_context.get())


# --------------------------------------------------------------------------- #
# Verbosity
# --------------------------------------------------------------------------- #
def set_verbosity(
    level: int | str = logging.INFO,
    fmt: Optional[str] = None,
    stream: Optional[TextIO] = None,
) -> None:
    """Attach (or replace) the package's stderr handler and set its level.

    Idempotent and re-entrant: the handler this function installed before is
    removed first (identified by a marker attribute, so handlers added by
    the embedding application are never touched), then one fresh handler
    with ``fmt`` (default :data:`DEFAULT_LOG_FORMAT`) and ``stream``
    (default ``sys.stderr``) is attached.  Calling twice never duplicates
    output, and a second call with a different level/format takes effect.
    """
    logger = logging.getLogger(_ROOT_LOGGER_NAME)
    if isinstance(level, str):
        resolved = logging.getLevelName(level.upper())
        if not isinstance(resolved, int):
            from repro.exceptions import ConfigurationError

            raise ConfigurationError(
                f"unknown log level {level!r}; use DEBUG/INFO/WARNING/ERROR "
                "or a numeric level"
            )
        level = resolved
    logger.setLevel(level)
    for handler in list(logger.handlers):
        if getattr(handler, "_repro_managed", False):
            logger.removeHandler(handler)
            handler.close()
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(logging.Formatter(fmt if fmt is not None else DEFAULT_LOG_FORMAT))
    handler.addFilter(ContextFilter())
    handler._repro_managed = True  # marker: ours to replace on the next call
    logger.addHandler(handler)
