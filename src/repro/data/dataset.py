"""Dataset abstractions.

A dataset is a sized, indexable collection of examples; each example is a
``dict`` mapping field names (``"features"``, ``"label"``, ``"input_ids"``,
...) to numpy arrays or scalars.  The dict convention lets the same loader
serve both the tabular feedforward workload and the token-based BERT
workload.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np


class Dataset:
    """Abstract base: subclasses implement ``__len__`` and ``__getitem__``."""

    def __len__(self) -> int:  # pragma: no cover - interface
        raise NotImplementedError

    def __getitem__(self, index: int) -> Dict[str, np.ndarray]:  # pragma: no cover - interface
        raise NotImplementedError

    def fields(self) -> List[str]:
        """Names of the per-example fields (taken from the first example)."""
        if len(self) == 0:
            return []
        return sorted(self[0].keys())


class ArrayDataset(Dataset):
    """Wraps parallel arrays into a dataset.

    ``ArrayDataset(features=X, label=y)`` yields ``{"features": X[i], "label": y[i]}``.
    """

    def __init__(self, **arrays: np.ndarray):
        if not arrays:
            raise ValueError("ArrayDataset requires at least one array")
        lengths = {name: len(values) for name, values in arrays.items()}
        if len(set(lengths.values())) != 1:
            raise ValueError(f"all arrays must have the same length, got {lengths}")
        self._arrays = {name: np.asarray(values) for name, values in arrays.items()}
        self._length = next(iter(lengths.values()))

    def __len__(self) -> int:
        return self._length

    def __getitem__(self, index: int) -> Dict[str, np.ndarray]:
        if not 0 <= index < self._length:
            raise IndexError(f"index {index} out of range for dataset of size {self._length}")
        return {name: values[index] for name, values in self._arrays.items()}

    def column_source(self) -> tuple:
        """``(columns, row_indices)`` backing this dataset's examples.

        Datasets exposing ``column_source()`` opt in to the loader's
        vectorised batching: whole mini-batches are sliced straight out of
        the column arrays instead of stacking per-example dicts.
        ``row_indices`` is ``None`` when the dataset covers the columns
        densely in order (enabling zero-copy contiguous batch views), or an
        index array mapping dataset positions to column rows.
        """
        return self._arrays, None


class Subset(Dataset):
    """A view of a dataset restricted to a list of indices."""

    def __init__(self, dataset: Dataset, indices: Sequence[int]):
        self.dataset = dataset
        self.indices = list(int(i) for i in indices)
        for i in self.indices:
            if not 0 <= i < len(dataset):
                raise IndexError(f"subset index {i} out of range for dataset of size {len(dataset)}")
        self._index_array = np.asarray(self.indices, dtype=np.intp)

    def __len__(self) -> int:
        return len(self.indices)

    def __getitem__(self, index: int) -> Dict[str, np.ndarray]:
        return self.dataset[self.indices[index]]

    def column_source(self) -> tuple | None:
        """The base dataset's columns plus this subset's row mapping.

        Only the (small) integer index arrays are composed — the column
        data itself is never copied here, so the loader's per-batch gather
        stays O(batch), not O(subset).  Returns ``None`` when the base
        dataset has no columnar form, in which case the loader falls back
        to per-example stacking.
        """
        base_source = getattr(self.dataset, "column_source", None)
        if base_source is None:
            return None
        source = base_source()
        if source is None:
            return None
        base_columns, base_indices = source
        if base_indices is None:
            return base_columns, self._index_array
        return base_columns, np.asarray(base_indices)[self._index_array]
