"""Activation-function layers."""

from __future__ import annotations

from repro.autograd import ops
from repro.autograd.tensor import Tensor
from repro.nn.module import Module


class ReLU(Module):
    """Rectified linear unit."""

    def forward(self, x: Tensor) -> Tensor:
        return ops.relu(x)

    def __repr__(self) -> str:
        return "ReLU()"


class GELU(Module):
    """Gaussian error linear unit (tanh approximation, as used in BERT)."""

    def forward(self, x: Tensor) -> Tensor:
        return ops.gelu(x)

    def __repr__(self) -> str:
        return "GELU()"


class Tanh(Module):
    """Hyperbolic tangent."""

    def forward(self, x: Tensor) -> Tensor:
        return ops.tanh(x)

    def __repr__(self) -> str:
        return "Tanh()"


class Sigmoid(Module):
    """Logistic sigmoid."""

    def forward(self, x: Tensor) -> Tensor:
        return ops.sigmoid(x)

    def __repr__(self) -> str:
        return "Sigmoid()"


_ACTIVATIONS = {
    "relu": ReLU,
    "gelu": GELU,
    "tanh": Tanh,
    "sigmoid": Sigmoid,
}


def get_activation(name: str) -> Module:
    """Instantiate an activation layer from its lowercase name."""
    try:
        return _ACTIVATIONS[name.lower()]()
    except KeyError:
        raise ValueError(
            f"unknown activation {name!r}; expected one of {sorted(_ACTIVATIONS)}"
        ) from None
