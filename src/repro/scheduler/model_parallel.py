"""Baseline: classic model parallelism — one model at a time, sharded across devices.

This is the regime Figure 1 of the paper criticises: the model's shards are
spread over the GPUs, but forward and backward passes are sequential, so at
any instant at most one device is busy and the rest idle.  Multiple models in
a selection run are trained strictly one after another.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.cluster.cluster import Cluster
from repro.exceptions import SchedulingError
from repro.scheduler.base import ScheduleResult, Strategy
from repro.scheduler.placement import Placement
from repro.scheduler.task import ShardTask, TrainingJob, build_task_graph


class ModelParallelStrategy(Strategy):
    """Shard every model across all devices; train models sequentially."""

    name = "model-parallel"

    def schedule(self, jobs: Sequence[TrainingJob], cluster: Cluster) -> ScheduleResult:
        jobs = list(jobs)
        if not jobs:
            raise SchedulingError("no jobs to schedule")
        devices = cluster.device_names()
        placement = Placement()
        tasks_by_job: Dict[str, List[ShardTask]] = {}
        peak_demand: Dict[str, int] = {name: 0 for name in devices}

        for job in jobs:
            per_device_working: Dict[str, int] = {name: 0 for name in devices}
            for shard in job.plan.shards:
                device_name = devices[shard.index % len(devices)]
                placement.assign(job.model_id, shard.index, device_name)
                per_device_working[device_name] += shard.working_bytes
            for name, demand in per_device_working.items():
                if demand > cluster.device(name).spec.memory_bytes:
                    raise SchedulingError(
                        f"model {job.model_id!r}: shards assigned to {name!r} need "
                        f"{demand / 2**30:.2f} GiB; increase the shard count"
                    )
                peak_demand[name] = max(peak_demand[name], demand)
            tasks_by_job[job.model_id] = build_task_graph(job)

        # Strict sequential execution across models.
        extra_deps: Dict[str, List[str]] = {}
        for previous, current in zip(jobs, jobs[1:]):
            extra = self.job_boundary_deps([previous], [current], tasks_by_job)
            for task_id, deps in extra.items():
                extra_deps.setdefault(task_id, []).extend(deps)

        all_tasks = [task for job in jobs for task in tasks_by_job[job.model_id]]
        sim_tasks = self.to_sim_tasks(
            all_tasks, placement, extra_deps=extra_deps, track_activation_memory=False
        )
        trace = self._simulate(cluster, sim_tasks)
        trace.peak_memory_bytes = peak_demand
        return ScheduleResult(strategy=self.name, trace=trace, jobs=jobs, placements=[placement])
