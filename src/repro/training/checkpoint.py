"""Model checkpointing to ``.npz`` archives.

Archives are flat key/value stores of numpy arrays with a namespace prefix
per section: ``param::<name>`` for model parameters, ``opt::<...>`` for
optimizer state (step count and per-parameter moment arrays),
``sched::<key>`` for learning-rate-scheduler state, and ``meta::<key>`` for
caller metadata.  The same serialization (via :func:`save_array_bundle` /
:func:`load_array_bundle`) backs the host shard cache's disk tier in
:mod:`repro.memory` and the serving :class:`~repro.serving.ModelRegistry`,
so a spilled shard, a published model version, and a checkpoint are all
one format.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional

import numpy as np

from repro.exceptions import CheckpointError
from repro.nn.module import Module
from repro.optim.lr_scheduler import LRScheduler
from repro.optim.optimizer import Optimizer

#: archive key prefixes (one namespace per section)
PARAM_PREFIX = "param::"
OPT_PREFIX = "opt::"
SCHED_PREFIX = "sched::"
META_PREFIX = "meta::"


#: in-file data alignment of uncompressed archive members.  64-byte-aligned
#: mmap views take the same BLAS code paths as heap arrays, which is what
#: keeps mmap-served models bit-identical to eagerly loaded ones (misaligned
#: operands can select different GEMM kernels with different rounding).
_MMAP_ALIGN = 64


def save_array_bundle(
    path: str | Path, arrays: Dict[str, np.ndarray], compressed: bool = False
) -> Path:
    """Write a flat ``name -> array`` mapping to an ``.npz`` archive.

    This is the serialization primitive shared by :func:`save_checkpoint`
    and the disk tier of :class:`repro.memory.HostShardCache`.  Returns the
    actual path written (numpy appends ``.npz`` when missing).

    Uncompressed archives are written with every member's array data
    64-byte **aligned within the file** (zip extra-field padding), so
    :func:`load_array_bundle(..., mmap=True)` yields aligned views — a
    prerequisite for bit-exact zero-copy serving.  The result is a normal
    ``.npz``: ``np.load`` and ``zipfile`` read it unchanged.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    written = path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")
    if compressed:
        np.savez_compressed(
            path, **{name: np.asarray(values) for name, values in arrays.items()}
        )
        return written
    _write_aligned_npz(written, arrays)
    return written


def _write_aligned_npz(path: Path, arrays: Dict[str, np.ndarray]) -> None:
    """Write an uncompressed ``.npz`` with 64-byte-aligned member data.

    ``np.savez`` places members at arbitrary offsets; here each member's
    zip local header gets a padding extra field (well-formed TLV, id
    ``0x4141``) sized so the ``.npy`` stream starts on a
    :data:`_MMAP_ALIGN` boundary.  The npy format itself pads its header to
    a 64-multiple, so stream alignment == array-data alignment.
    """
    import io
    import struct
    import zipfile

    from numpy.lib import format as npy_format

    with zipfile.ZipFile(path, "w", zipfile.ZIP_STORED) as archive:
        for name, values in arrays.items():
            stream = io.BytesIO()
            npy_format.write_array(
                stream, np.asarray(values), allow_pickle=False
            )
            info = zipfile.ZipInfo(name + ".npy", date_time=(1980, 1, 1, 0, 0, 0))
            info.compress_type = zipfile.ZIP_STORED
            offset = archive.fp.tell()
            header = 30 + len(info.filename.encode("utf-8"))
            pad = -(offset + header) % _MMAP_ALIGN
            if pad:
                if pad < 4:  # a TLV extra block needs at least its 4-byte head
                    pad += _MMAP_ALIGN
                info.extra = struct.pack("<HH", 0x4141, pad - 4) + b"\x00" * (pad - 4)
            archive.writestr(info, stream.getvalue())


def load_array_bundle(path: str | Path, mmap: bool = False) -> Dict[str, np.ndarray]:
    """Read back a ``name -> array`` mapping written by :func:`save_array_bundle`.

    With ``mmap=True`` the members of an *uncompressed* archive are returned
    as read-only ``np.memmap`` views instead of heap copies: ``np.savez``
    stores members ``ZIP_STORED`` (byte-for-byte ``.npy`` files at fixed
    offsets), so each array can be mapped straight out of the archive.  The
    page cache then shares one physical copy of the bytes among every
    process that maps the same file — the zero-copy transport the process
    serving runtime is built on.  Compressed archives quietly fall back to
    an eager load (their bytes are not mappable).
    """
    path = Path(path)
    if not path.exists() and path.with_suffix(path.suffix + ".npz").exists():
        path = path.with_suffix(path.suffix + ".npz")
    if not path.exists():
        raise CheckpointError(f"archive {path} does not exist")
    if mmap:
        mapped = _mmap_npz(path)
        if mapped is not None:
            return mapped
    with np.load(path, allow_pickle=False) as archive:
        return {key: archive[key] for key in archive.files}


def _mmap_npz(path: Path) -> Optional[Dict[str, np.ndarray]]:
    """Map every member of an uncompressed ``.npz`` as a read-only view.

    Returns ``None`` when the archive cannot be mapped (compressed members,
    object dtypes, or an unexpected layout) — callers fall back to the
    eager loader.  Layout: each ``ZIP_STORED`` member is a verbatim ``.npy``
    stream, so the array bytes live at ``local header + npy header``; the
    zip local file header is 30 bytes plus name/extra fields.
    """
    import zipfile

    from numpy.lib import format as npy_format

    arrays: Dict[str, np.ndarray] = {}
    try:
        with zipfile.ZipFile(path) as archive:
            infos = archive.infolist()
            if any(info.compress_type != zipfile.ZIP_STORED for info in infos):
                return None
            with open(path, "rb") as stream:
                for info in infos:
                    stream.seek(info.header_offset)
                    header = stream.read(30)
                    if len(header) < 30 or header[:4] != b"PK\x03\x04":
                        return None
                    name_len = int.from_bytes(header[26:28], "little")
                    extra_len = int.from_bytes(header[28:30], "little")
                    stream.seek(info.header_offset + 30 + name_len + extra_len)
                    version = npy_format.read_magic(stream)
                    if version == (1, 0):
                        shape, fortran, dtype = npy_format.read_array_header_1_0(stream)
                    elif version == (2, 0):
                        shape, fortran, dtype = npy_format.read_array_header_2_0(stream)
                    else:
                        return None
                    if dtype.hasobject:
                        return None
                    key = info.filename
                    if key.endswith(".npy"):
                        key = key[: -len(".npy")]
                    if shape == ():
                        # 0-d arrays are cheaper copied than mapped.
                        offset = stream.tell()
                        arrays[key] = np.frombuffer(
                            stream.read(dtype.itemsize), dtype=dtype
                        ).reshape(())
                        continue
                    arrays[key] = np.memmap(
                        path,
                        dtype=dtype,
                        mode="r",
                        offset=stream.tell(),
                        shape=shape,
                        order="F" if fortran else "C",
                    )
    except (OSError, ValueError, zipfile.BadZipFile):
        return None
    return arrays


def map_checkpoint_parameters(
    model: Module, path: str | Path
) -> Dict[str, np.ndarray]:
    """Rebind ``model``'s parameters to read-only views of a checkpoint.

    Unlike :func:`load_checkpoint` — which *copies* every array into the
    model's existing buffers — this points each
    :class:`~repro.nn.parameter.Parameter` at a ``np.memmap`` view of the
    archive's bytes.  N processes mapping the same published version share
    one physical copy through the page cache: the zero-copy weight
    transport behind process-based serving replicas.

    The model is **inference-only** afterwards: its parameters are
    read-only (in-place writes raise) and must not be trained or published.
    The returned dict is the archive's ``meta::`` metadata.

    Raises:
        CheckpointError: when the archive's parameter names/shapes do not
            match the model, or it contains no parameters.
    """
    bundle = load_array_bundle(path, mmap=True)
    state = {
        key[len(PARAM_PREFIX):]: values
        for key, values in bundle.items()
        if key.startswith(PARAM_PREFIX)
    }
    metadata = {
        key[len(META_PREFIX):]: values
        for key, values in bundle.items()
        if key.startswith(META_PREFIX)
    }
    if not state:
        raise CheckpointError(f"checkpoint {path} contains no parameters")
    params = dict(model.named_parameters())
    missing = sorted(set(params) - set(state))
    unexpected = sorted(set(state) - set(params))
    if missing or unexpected:
        raise CheckpointError(
            f"checkpoint {path} does not match the model: "
            f"missing parameters {missing}, unexpected entries {unexpected}"
        )
    for name, values in state.items():
        param = params[name]
        if tuple(values.shape) != tuple(param.data.shape):
            raise CheckpointError(
                f"parameter {name!r}: checkpoint shape {tuple(values.shape)} "
                f"does not match model shape {tuple(param.data.shape)}"
            )
        if values.dtype != param.data.dtype:
            # A dtype mismatch cannot be served zero-copy; fall back to a
            # cast copy for this parameter only.
            values = values.astype(param.data.dtype)
        elif values.ctypes.data % _MMAP_ALIGN != 0:
            # A misaligned view (archive written by plain np.savez) can
            # steer BLAS onto a different kernel with different rounding;
            # copy rather than break bit-exactness.  Aligned-archive views
            # (our own writer) stay zero-copy.
            values = np.ascontiguousarray(values)
        param.data = values
    return metadata


def _optimizer_param_names(model: Module, optimizer: Optimizer) -> Dict[int, str]:
    """Map ``id(param) -> qualified name`` for the optimizer's parameters.

    Every optimizer parameter must belong to the model, otherwise the saved
    state could not be re-attached on load.
    """
    by_id = {id(param): name for name, param in model.named_parameters()}
    names: Dict[int, str] = {}
    for param in optimizer.parameters:
        if id(param) not in by_id:
            raise CheckpointError(
                "optimizer holds a parameter that is not part of the model; "
                "cannot serialise its state under a stable name"
            )
        names[id(param)] = by_id[id(param)]
    return names


def save_checkpoint(
    model: Module,
    path: str | Path,
    metadata: Dict[str, object] | None = None,
    compressed: bool = False,
    optimizer: Optional[Optimizer] = None,
    scheduler: Optional[LRScheduler] = None,
) -> Path:
    """Write the model's parameters (and optional metadata) to ``path``.

    With ``compressed=True`` the archive is deflate-compressed
    (``np.savez_compressed``) — markedly smaller artifacts for the
    model-hopping and selection examples, at a modest CPU cost on save.
    ``load_checkpoint`` reads both formats transparently.

    With ``optimizer=...`` the archive additionally captures the full
    optimizer state under ``opt::`` keys — the step count, the learning
    rate, and every per-parameter state array (e.g. Adam's two moments) —
    so spill/restore and mid-trial resume round-trip the *complete*
    training state: training resumed from such a checkpoint is bit-identical
    to training that never stopped.

    With ``scheduler=...`` the learning-rate schedule's dynamic state
    (:meth:`~repro.optim.lr_scheduler.LRScheduler.state_dict`) is captured
    under ``sched::`` keys too, so warmup/decay schedules survive a
    mid-trial resume bit-identically — without it, a resumed run would
    restart the schedule at step 0 and silently diverge.
    """
    path = Path(path)
    state = model.state_dict()
    payload: Dict[str, np.ndarray] = {
        f"{PARAM_PREFIX}{name}": values for name, values in state.items()
    }
    if optimizer is not None:
        names = _optimizer_param_names(model, optimizer)
        payload[f"{OPT_PREFIX}step_count"] = np.asarray(optimizer.step_count)
        payload[f"{OPT_PREFIX}lr"] = np.asarray(optimizer.lr)
        for param in optimizer.parameters:
            per_param = optimizer.state.get(id(param), {})
            for key in sorted(per_param):
                payload[f"{OPT_PREFIX}{names[id(param)]}::{key}"] = per_param[key]
    if scheduler is not None:
        for key, value in scheduler.state_dict().items():
            payload[f"{SCHED_PREFIX}{key}"] = np.asarray(value)
    if metadata:
        for key, value in metadata.items():
            payload[f"{META_PREFIX}{key}"] = np.asarray(value)
    return save_array_bundle(path, payload, compressed=compressed)


def load_checkpoint(
    model: Module,
    path: str | Path,
    optimizer: Optional[Optimizer] = None,
    scheduler: Optional[LRScheduler] = None,
) -> Dict[str, np.ndarray]:
    """Restore parameters saved by :func:`save_checkpoint`; returns metadata.

    With ``optimizer=...`` the optimizer's step count, learning rate, and
    per-parameter state arrays are restored as well; the archive must have
    been written with an optimizer (:class:`~repro.exceptions.CheckpointError`
    otherwise).  State arrays are matched to parameters by qualified name,
    so the optimizer must hold the model's parameters.

    With ``scheduler=...`` the learning-rate schedule's ``sched::`` state is
    restored the same way — the archive must have been written with a
    scheduler, and the caller must pass a freshly built schedule of the
    same shape (warmup/total steps are constructor arguments, like model
    architecture).
    """
    archive = load_array_bundle(path)
    state = {}
    metadata = {}
    opt_entries: Dict[str, np.ndarray] = {}
    sched_entries: Dict[str, np.ndarray] = {}
    for key, values in archive.items():
        if key.startswith(PARAM_PREFIX):
            state[key[len(PARAM_PREFIX):]] = values
        elif key.startswith(META_PREFIX):
            metadata[key[len(META_PREFIX):]] = values
        elif key.startswith(SCHED_PREFIX):
            sched_entries[key[len(SCHED_PREFIX):]] = values
        elif key.startswith(OPT_PREFIX):
            opt_entries[key[len(OPT_PREFIX):]] = values
    if not state:
        raise CheckpointError(f"checkpoint {path} contains no parameters")
    # Validate the whole archive before mutating anything — a caller that
    # catches the CheckpointError must not be left with a torn restore
    # (checkpoint weights next to stale or cleared optimizer moments).
    apply_optimizer = None
    if optimizer is not None:
        if not opt_entries:
            raise CheckpointError(
                f"checkpoint {path} contains no optimizer state; save it with "
                "save_checkpoint(..., optimizer=optimizer)"
            )
        apply_optimizer = _resolve_optimizer_state(model, optimizer, opt_entries)
    if scheduler is not None and not sched_entries:
        raise CheckpointError(
            f"checkpoint {path} contains no scheduler state; save it with "
            "save_checkpoint(..., scheduler=scheduler)"
        )
    model.load_state_dict(state)
    if apply_optimizer is not None:
        apply_optimizer()
    if scheduler is not None:
        scheduler.load_state_dict(
            {key: value.item() for key, value in sched_entries.items()}
        )
    return metadata


def _resolve_optimizer_state(
    model: Module, optimizer: Optimizer, entries: Dict[str, np.ndarray]
):
    """Validate ``opt::`` entries; return a zero-argument applier."""
    names = _optimizer_param_names(model, optimizer)
    by_name = {name: param for param, name in
               ((p, names[id(p)]) for p in optimizer.parameters)}
    if "step_count" not in entries or "lr" not in entries:
        raise CheckpointError(
            "optimizer section is incomplete (missing step_count/lr); the "
            "archive was not written by save_checkpoint(..., optimizer=...)"
        )
    step_count = int(entries["step_count"])
    lr = float(entries["lr"])
    resolved = []
    for key, values in entries.items():
        if key in ("step_count", "lr"):
            continue
        param_name, _, state_key = key.rpartition("::")
        if param_name not in by_name:
            raise CheckpointError(
                f"optimizer state {key!r} names parameter {param_name!r}, "
                "which the optimizer does not hold"
            )
        param = by_name[param_name]
        if values.shape != param.data.shape:
            raise CheckpointError(
                f"optimizer state {key!r}: shape {values.shape} does not match "
                f"parameter shape {param.data.shape}"
            )
        resolved.append((param, state_key, values))

    def apply() -> None:
        optimizer.step_count = step_count
        optimizer.lr = lr
        optimizer.state.clear()
        for param, state_key, values in resolved:
            optimizer.state.setdefault(id(param), {})[state_key] = values.copy()

    return apply
