"""``repro.api.serve`` / ``serve_fleet`` — declarative online inference.

One call turns a (trained) model into a running
:class:`~repro.serving.ModelServer`: replica construction, sharding and
spill-manager plumbing for over-memory models, and batching configuration
all happen here, mirroring how ``Experiment.run(memory_budget=...)`` hides
the training-side spill wiring.  :func:`serve_fleet` does the same for a
*registry*: every published model behind one
:class:`~repro.serving.FleetRouter` sharing one replica pool and one memory
budget.  ``SelectionResult.deploy`` composes these with the
:class:`~repro.serving.ModelRegistry` to go from an experiment's winner to
a server — or into a shared fleet — in one step (see ``docs/serving.md``
and ``docs/router.md``).
"""

from __future__ import annotations

import functools
from typing import Callable, Dict, Optional, Sequence, Union

from repro.exceptions import ConfigurationError
from repro.models.base import ShardableModel
from repro.serving.registry import ModelRegistry
from repro.serving.replica import Replica
from repro.serving.router import FleetRouter
from repro.serving.server import ModelServer

#: what ``serve`` accepts: a live model, a zero-argument factory that
#: builds one fresh copy per replica, or a picklable
#: :class:`~repro.api.runtime.proc.ModelSpec` (required for process replicas)
ModelSource = Union[ShardableModel, Callable[[], ShardableModel]]


def serve(
    model: ModelSource,
    replicas: int = 1,
    max_batch_size: int = 8,
    max_wait_ms: float = 2.0,
    max_queue: int = 64,
    timeout_ms: Optional[float] = None,
    compute_batch_size: Optional[int] = None,
    memory_budget: Optional[int] = None,
    num_shards: Optional[int] = None,
    eviction_policy: str = "schedule-aware",
    prefetch: bool = True,
    spill_dir: Optional[str] = None,
    name: str = "server",
    start: bool = True,
    replica_mode: str = "thread",
    telemetry=None,
) -> ModelServer:
    """Deploy ``model`` behind a dynamically batched replica pool.

    ``model`` is a live :class:`~repro.models.base.ShardableModel` — shared
    read-only by every replica — or a zero-argument factory called once per
    replica (required when replicas must not share parameter arrays, e.g.
    spilled serving with more than one replica).

    ``replica_mode="process"`` serves through
    :class:`~repro.api.runtime.proc.ProcessReplica` children instead of
    threads — true parallel forwards past the GIL.  ``model`` must then be
    a :class:`~repro.api.runtime.proc.ModelSpec`; each child builds the
    model itself and mmaps the spec's registry weights read-only, so N
    replicas share one physical copy of the parameter bytes through the
    page cache.  Responses are bit-identical to thread replicas at the same
    geometry.  Process replicas never spill (``memory_budget`` is
    rejected); a :class:`ModelSpec` with ``replica_mode="thread"`` is also
    accepted and built in-process, once per replica.

    ``memory_budget`` (bytes) opts each replica into *spilled* serving: the
    model is cut into ``num_shards`` shards (default: one per block) and
    served through a private :class:`~repro.memory.SpillManager` whose
    single arena holds ``memory_budget`` bytes — over-memory models answer
    bit-identically to resident ones from a bounded device footprint.

    The remaining knobs configure the :class:`~repro.serving.ModelServer`:
    ``max_batch_size``/``max_wait_ms`` bound the dynamic batcher,
    ``max_queue`` bounds admission, ``timeout_ms`` sets the default
    per-request deadline, and ``compute_batch_size`` fixes the execution
    geometry (default ``max_batch_size``) — servers sharing weights and
    geometry answer bit-identically regardless of batching.

    With ``start=True`` (default) the server is already running; use it as
    a context manager or call ``stop()`` when done.

    ``telemetry`` (a :class:`repro.telemetry.Telemetry` recorder) traces
    submit→batch→forward spans and registers the server's latency stats as
    a snapshot collector; process replicas flush their child-side spans
    back with each reply.  ``None`` keeps the no-op recorder.

    Example::

        server = serve(model, max_batch_size=8, max_wait_ms=2.0)
        logits = server.request({"features": x})
        server.stop()

    Raises:
        ConfigurationError: for invalid counts/budgets, or ``replicas > 1``
            with ``memory_budget`` but no model factory (spilled replicas
            each need their own parameter copy).
    """
    if replicas <= 0:
        raise ConfigurationError(f"replicas must be positive, got {replicas}")
    if replica_mode not in ("thread", "process"):
        raise ConfigurationError(
            f"replica_mode must be 'thread' or 'process', got {replica_mode!r}"
        )
    # Imported lazily: repro.api.runtime imports this facade's package peers.
    from repro.api.runtime.proc import ModelSpec, ProcessReplica

    if replica_mode == "process":
        if not isinstance(model, ModelSpec):
            raise ConfigurationError(
                "process replicas need a ModelSpec (live models cannot cross "
                "a process boundary); pass serve(ModelSpec(...), "
                "replica_mode='process')"
            )
        if memory_budget is not None:
            raise ConfigurationError(
                "process replicas do not spill: their weights are read-only "
                "mmaps shared through the page cache; drop memory_budget or "
                "use replica_mode='thread'"
            )
        children = [
            ProcessReplica(model, name=f"{name}/replica{index}", telemetry=telemetry)
            for index in range(replicas)
        ]
        server = ModelServer(
            children,
            max_batch_size=max_batch_size,
            max_wait_ms=max_wait_ms,
            max_queue=max_queue,
            timeout_ms=timeout_ms,
            compute_batch_size=compute_batch_size,
            name=name,
            telemetry=telemetry,
        )
        return server.start() if start else server

    factory: Optional[Callable[[], ShardableModel]]
    if isinstance(model, ModelSpec):
        factory = model.build
    elif callable(model) and not isinstance(model, ShardableModel):
        factory = model
    else:
        factory = None
    if memory_budget is not None and replicas > 1 and factory is None:
        raise ConfigurationError(
            "spilled serving with multiple replicas needs a model factory: "
            "each replica's spill manager evicts/restores its own parameter "
            "arrays, so replicas cannot share one model object — pass "
            "serve(lambda: build_model(), ...) instead of a live model"
        )

    built = []
    for index in range(replicas):
        instance = factory() if factory is not None else model
        replica_name = f"{name}/replica{index}"
        if memory_budget is not None:
            built.append(
                Replica.spilled(
                    instance,
                    memory_budget=memory_budget,
                    num_shards=num_shards,
                    eviction_policy=eviction_policy,
                    prefetch=prefetch,
                    spill_dir=spill_dir,
                    name=replica_name,
                    telemetry=telemetry,
                )
            )
        else:
            built.append(Replica.resident(instance, name=replica_name))

    server = ModelServer(
        built,
        max_batch_size=max_batch_size,
        max_wait_ms=max_wait_ms,
        max_queue=max_queue,
        timeout_ms=timeout_ms,
        compute_batch_size=compute_batch_size,
        name=name,
        telemetry=telemetry,
    )
    return server.start() if start else server


def serve_fleet(
    registry: ModelRegistry,
    builder: Callable[[str], ShardableModel],
    models: Optional[Sequence[str]] = None,
    weights: Optional[Dict[str, float]] = None,
    memory_budget: Optional[int] = None,
    replicas: int = 2,
    max_batch_size: int = 8,
    max_queue: int = 64,
    timeout_ms: Optional[float] = None,
    compute_batch_size: Optional[int] = None,
    eviction_policy: str = "lru",
    prefetch: bool = True,
    spill_dir: Optional[str] = None,
    max_cold_skips: int = 3,
    name: str = "fleet",
    start: bool = True,
    replica_mode: str = "thread",
    telemetry=None,
) -> FleetRouter:
    """Serve a registry's published models through one shared fleet router.

    ``builder(model_name)`` constructs a fresh model of the right
    architecture for each name; the registry then loads that name's latest
    published weights into it (bit-exact), and the model joins the router.
    ``models`` restricts/orders the fleet (default: every published name);
    ``weights`` sets per-model fair-share weights (default 1.0 each).

    ``memory_budget`` (bytes) is the **fleet-wide** device budget: the
    models' combined parameter bytes may exceed it, in which case cold
    models are evicted whole to the host cache and restored on demand —
    every model must fit the budget individually.  ``None`` keeps the whole
    fleet resident.

    The batching knobs are router-wide defaults; per-model overrides go
    through :meth:`~repro.serving.FleetRouter.add_model` on the returned
    router (models may be added while it serves).  With ``start=True``
    (default) the router is already running; use it as a context manager or
    call ``stop()`` when done.

    ``replica_mode="process"`` serves each model from its own child
    process: the deploy pins each name's **latest published version**, and
    every child builds its model via ``builder(model_name)`` (which must be
    a picklable, module-level callable) and mmaps that version's archive
    read-only.  Process fleets ignore the device budget machinery — their
    memory story is the shared page cache — so ``memory_budget`` is
    rejected.

    Example::

        router = serve_fleet(registry, lambda name: build_model(name),
                             memory_budget=budget, replicas=2)
        logits = router.request("mlp-a", {"features": x})
        router.stop()

    Raises:
        ConfigurationError: for an empty fleet, a ``weights``/``models``
            mismatch, or a model larger than ``memory_budget``.
        CheckpointError: for names without a published version.
    """
    if replica_mode not in ("thread", "process"):
        raise ConfigurationError(
            f"replica_mode must be 'thread' or 'process', got {replica_mode!r}"
        )
    if replica_mode == "process" and memory_budget is not None:
        raise ConfigurationError(
            "a process fleet does not use the device budget: each model's "
            "weights are read-only mmaps shared through the page cache; drop "
            "memory_budget or use replica_mode='thread'"
        )
    chosen = list(models) if models is not None else registry.names()
    if not chosen:
        raise ConfigurationError(
            "serve_fleet needs at least one model; the registry has none "
            "published and models=... named none"
        )
    weights = dict(weights or {})
    unknown = sorted(set(weights) - set(chosen))
    if unknown:
        raise ConfigurationError(
            f"weights name models not in the fleet: {unknown}; fleet: {sorted(chosen)}"
        )
    router = FleetRouter(
        memory_budget=memory_budget,
        replicas=replicas,
        max_batch_size=max_batch_size,
        max_queue=max_queue,
        timeout_ms=timeout_ms,
        eviction_policy=eviction_policy,
        prefetch=prefetch,
        spill_dir=spill_dir,
        max_cold_skips=max_cold_skips,
        name=name,
        telemetry=telemetry,
    )
    if replica_mode == "process":
        from repro.api.runtime.proc import ModelSpec

        for model_name in chosen:
            # Pin the latest version *now*: the fleet serves one immutable
            # archive per model for its whole life, even if training keeps
            # publishing newer versions behind it.
            spec = ModelSpec(
                builder=functools.partial(builder, model_name),
                registry_root=str(registry.root),
                registry_name=model_name,
                version=registry.latest_version(model_name),
            )
            router.add_model(
                model_name,
                spec,
                weight=weights.get(model_name, 1.0),
                compute_batch_size=compute_batch_size,
            )
    else:
        for model_name in chosen:
            model = builder(model_name)
            registry.load(model_name, model)
            router.add_model(
                model_name,
                model,
                weight=weights.get(model_name, 1.0),
                compute_batch_size=compute_batch_size,
            )
    return router.start() if start else router
