"""Analytical per-block cost model.

Every model block is summarised by a :class:`BlockCost`: parameter count,
parameter bytes, activation bytes per sample, output (inter-shard transfer)
bytes per sample, and forward FLOPs per sample.  A :class:`ModelProfile` is
the ordered list of block costs for one model configuration; the partitioner
and the cluster simulator consume profiles, never the real weights, which is
what lets the reproduction reason about BERT-Large-scale models without
allocating 340 M parameters.

The formulas follow the standard transformer accounting (e.g. the BERT paper
and common FLOP estimates): a dense layer of shape ``(in, out)`` costs
``2 * in * out`` FLOPs per token and stores ``out`` activations per token.
Backward passes are charged at twice the forward FLOPs, matching the usual
2:1 backward/forward ratio used by systems papers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence

FLOAT32_BYTES = 4
#: backward FLOPs are roughly 2x forward FLOPs for dense workloads
BACKWARD_FLOP_MULTIPLIER = 2.0


def bytes_for_params(num_params: int, bytes_per_param: int = FLOAT32_BYTES) -> int:
    """Bytes needed to store ``num_params`` float32 weights."""
    return int(num_params) * bytes_per_param


@dataclass(frozen=True)
class BlockCost:
    """Resource footprint of one model block for one sample (batch size 1).

    Attributes
    ----------
    name:
        Human-readable block name (``"encoder_layer_17"``).
    param_count:
        Number of scalar parameters owned by the block.
    param_bytes:
        Bytes of parameter storage (float32).
    activation_bytes_per_sample:
        Bytes of intermediate activations that must stay resident on the
        device while the block's forward result is needed for backward.
    output_bytes_per_sample:
        Bytes of the block's output tensor — this is what crosses the
        inter-shard link when the next block lives on a different device.
    forward_flops_per_sample:
        Forward-pass floating point operations for one sample.
    """

    name: str
    param_count: int
    param_bytes: int
    activation_bytes_per_sample: int
    output_bytes_per_sample: int
    forward_flops_per_sample: float

    @property
    def backward_flops_per_sample(self) -> float:
        return self.forward_flops_per_sample * BACKWARD_FLOP_MULTIPLIER

    def scaled(self, batch_size: int) -> "BlockCost":
        """Return a copy whose per-sample quantities describe a whole batch."""
        return BlockCost(
            name=self.name,
            param_count=self.param_count,
            param_bytes=self.param_bytes,
            activation_bytes_per_sample=self.activation_bytes_per_sample * batch_size,
            output_bytes_per_sample=self.output_bytes_per_sample * batch_size,
            forward_flops_per_sample=self.forward_flops_per_sample * batch_size,
        )


@dataclass
class ModelProfile:
    """Ordered block costs for one model configuration."""

    model_name: str
    blocks: List[BlockCost] = field(default_factory=list)
    optimizer_bytes_per_param: int = 8  # Adam: two float32 moments

    def __iter__(self) -> Iterator[BlockCost]:
        return iter(self.blocks)

    def __len__(self) -> int:
        return len(self.blocks)

    def __getitem__(self, index: int) -> BlockCost:
        return self.blocks[index]

    @property
    def total_params(self) -> int:
        return sum(block.param_count for block in self.blocks)

    @property
    def total_param_bytes(self) -> int:
        return sum(block.param_bytes for block in self.blocks)

    def total_memory_bytes(self, batch_size: int = 1) -> int:
        """Params + optimizer state + activations for the whole model."""
        params = self.total_param_bytes
        optimizer = self.total_params * self.optimizer_bytes_per_param
        activations = sum(
            block.activation_bytes_per_sample for block in self.blocks
        ) * batch_size
        return params + optimizer + activations

    def block_memory_bytes(self, index: int, batch_size: int = 1) -> int:
        """Resident memory for a single block (params + optimizer + activations)."""
        block = self.blocks[index]
        return (
            block.param_bytes
            + block.param_count * self.optimizer_bytes_per_param
            + block.activation_bytes_per_sample * batch_size
        )

    def range_memory_bytes(self, start: int, stop: int, batch_size: int = 1) -> int:
        """Resident memory for blocks ``start..stop-1`` (a candidate shard)."""
        return sum(self.block_memory_bytes(i, batch_size) for i in range(start, stop))

    def range_forward_flops(self, start: int, stop: int, batch_size: int = 1) -> float:
        return sum(
            self.blocks[i].forward_flops_per_sample for i in range(start, stop)
        ) * batch_size

    def total_forward_flops(self, batch_size: int = 1) -> float:
        return self.range_forward_flops(0, len(self.blocks), batch_size)


# --------------------------------------------------------------------------- #
# Primitive cost formulas
# --------------------------------------------------------------------------- #
def linear_cost(
    name: str,
    in_features: int,
    out_features: int,
    tokens_per_sample: int = 1,
    bias: bool = True,
) -> BlockCost:
    """Cost of a dense layer applied to ``tokens_per_sample`` positions."""
    params = in_features * out_features + (out_features if bias else 0)
    activations = out_features * tokens_per_sample * FLOAT32_BYTES
    flops = 2.0 * in_features * out_features * tokens_per_sample
    return BlockCost(
        name=name,
        param_count=params,
        param_bytes=bytes_for_params(params),
        activation_bytes_per_sample=activations,
        output_bytes_per_sample=activations,
        forward_flops_per_sample=flops,
    )


def embedding_cost(
    name: str,
    vocab_size: int,
    hidden_size: int,
    seq_len: int,
    extra_tables: Sequence[int] = (),
) -> BlockCost:
    """Cost of embedding lookup tables (token table plus optional extras).

    ``extra_tables`` lists the row counts of additional tables that share the
    hidden size (position embeddings, segment embeddings).
    """
    rows = vocab_size + sum(extra_tables)
    params = rows * hidden_size
    activations = hidden_size * seq_len * FLOAT32_BYTES
    # Lookups are memory-bound; charge one multiply-add per output element.
    flops = 2.0 * hidden_size * seq_len
    return BlockCost(
        name=name,
        param_count=params,
        param_bytes=bytes_for_params(params),
        activation_bytes_per_sample=activations,
        output_bytes_per_sample=activations,
        forward_flops_per_sample=flops,
    )


def layer_norm_cost(name: str, hidden_size: int, tokens_per_sample: int = 1) -> BlockCost:
    params = 2 * hidden_size
    activations = hidden_size * tokens_per_sample * FLOAT32_BYTES
    flops = 8.0 * hidden_size * tokens_per_sample
    return BlockCost(
        name=name,
        param_count=params,
        param_bytes=bytes_for_params(params),
        activation_bytes_per_sample=activations,
        output_bytes_per_sample=activations,
        forward_flops_per_sample=flops,
    )


def attention_cost(name: str, hidden_size: int, seq_len: int) -> BlockCost:
    """Multi-head self-attention: 4 dense projections + score/context matmuls."""
    params = 4 * (hidden_size * hidden_size + hidden_size)
    projection_flops = 4 * 2.0 * hidden_size * hidden_size * seq_len
    score_flops = 2.0 * 2.0 * seq_len * seq_len * hidden_size  # QK^T and attn@V
    flops = projection_flops + score_flops
    # Activations: Q, K, V, attention probabilities, context, output.
    activations = (
        4 * hidden_size * seq_len + seq_len * seq_len + hidden_size * seq_len
    ) * FLOAT32_BYTES
    output = hidden_size * seq_len * FLOAT32_BYTES
    return BlockCost(
        name=name,
        param_count=params,
        param_bytes=bytes_for_params(params),
        activation_bytes_per_sample=activations,
        output_bytes_per_sample=output,
        forward_flops_per_sample=flops,
    )


def transformer_layer_cost(
    name: str,
    hidden_size: int,
    intermediate_size: int,
    seq_len: int,
) -> BlockCost:
    """One full encoder block: attention + 2 layer norms + feed-forward."""
    attention = attention_cost(f"{name}.attention", hidden_size, seq_len)
    ffn_in = linear_cost(f"{name}.ffn_in", hidden_size, intermediate_size, seq_len)
    ffn_out = linear_cost(f"{name}.ffn_out", intermediate_size, hidden_size, seq_len)
    norms = [
        layer_norm_cost(f"{name}.norm1", hidden_size, seq_len),
        layer_norm_cost(f"{name}.norm2", hidden_size, seq_len),
    ]
    parts = [attention, ffn_in, ffn_out, *norms]
    return BlockCost(
        name=name,
        param_count=sum(p.param_count for p in parts),
        param_bytes=sum(p.param_bytes for p in parts),
        activation_bytes_per_sample=sum(p.activation_bytes_per_sample for p in parts),
        output_bytes_per_sample=hidden_size * seq_len * FLOAT32_BYTES,
        forward_flops_per_sample=sum(p.forward_flops_per_sample for p in parts),
    )
