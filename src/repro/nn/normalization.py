"""Normalisation layers."""

from __future__ import annotations

from repro.autograd import ops
from repro.autograd.tensor import Tensor
from repro.nn import init
from repro.nn.module import Module
from repro.nn.parameter import Parameter


class LayerNorm(Module):
    """Layer normalisation over the last dimension.

    Normalises each feature vector to zero mean / unit variance and applies a
    learned affine transform, exactly as in the transformer encoder blocks of
    the paper's BERT workload.
    """

    def __init__(self, normalized_shape: int, eps: float = 1e-5):
        super().__init__()
        self.normalized_shape = int(normalized_shape)
        self.eps = float(eps)
        self.weight = Parameter(init.ones((self.normalized_shape,)), name="weight")
        self.bias = Parameter(init.zeros((self.normalized_shape,)), name="bias")

    def forward(self, x: Tensor) -> Tensor:
        # Fused single-pass kernel: one graph node, bit-identical to
        # `(x - mean) / (var + eps).sqrt() * self.weight + self.bias`.
        return ops.layer_norm(x, self.weight, self.bias, eps=self.eps)

    def __repr__(self) -> str:
        return f"LayerNorm({self.normalized_shape}, eps={self.eps})"
