"""Model zoo: the paper's workloads expressed as shardable models."""

from repro.models.base import ShardableModel
from repro.models.feedforward import FeedForwardConfig, FeedForwardNetwork
from repro.models.bert import BertConfig, BertForSpanPrediction, BertEmbeddings, BertSpanHead
from repro.models.registry import register_model, create_model, available_models

__all__ = [
    "ShardableModel",
    "FeedForwardConfig",
    "FeedForwardNetwork",
    "BertConfig",
    "BertForSpanPrediction",
    "BertEmbeddings",
    "BertSpanHead",
    "register_model",
    "create_model",
    "available_models",
]
