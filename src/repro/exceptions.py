"""Exception hierarchy for the repro (Hydra reproduction) package.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError``, ``ValueError`` from user
code) propagate unchanged.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class AutogradError(ReproError):
    """Raised for invalid autograd usage (e.g. backward on a non-scalar)."""


class ShapeError(ReproError):
    """Raised when tensor shapes are incompatible for an operation."""


class ConfigurationError(ReproError):
    """Raised when a model, device, or scheduler configuration is invalid."""


class PartitionError(ReproError):
    """Raised when a model cannot be partitioned under the given constraints."""


class SchedulingError(ReproError):
    """Raised when a schedule cannot be constructed or executed."""


class OutOfDeviceMemoryError(SchedulingError):
    """Raised when a placement would exceed a simulated device's memory."""

    def __init__(self, device_name: str, requested_bytes: int, available_bytes: int):
        self.device_name = device_name
        self.requested_bytes = requested_bytes
        self.available_bytes = available_bytes
        super().__init__(
            f"device {device_name!r}: requested {requested_bytes} bytes but only "
            f"{available_bytes} bytes are free"
        )


class MemoryBudgetError(SchedulingError):
    """Raised when the spill manager cannot satisfy a residency request.

    Either a shard is larger than its device's entire arena, or every other
    occupant of the arena is pinned and the acquire timed out waiting for
    capacity (which would otherwise deadlock silently).
    """


class SimulationError(ReproError):
    """Raised when the discrete-event simulator reaches an invalid state."""


class SearchSpaceError(ReproError):
    """Raised for invalid model-selection search-space definitions."""


class CheckpointError(ReproError):
    """Raised when saving or restoring a checkpoint fails."""


class WorkerCrashedError(ReproError):
    """Raised when a pool's child worker process died mid-task.

    The process-backed :class:`~repro.api.runtime.pool.ProcessWorkerPool`
    raises this for the task that was in flight when its child exited
    (SIGKILL, OOM, interpreter crash); only that task fails — the slot
    respawns a fresh child for the next one, and the runner's usual
    :class:`~repro.api.runtime.runner.RetryPolicy` applies.
    """


class ServingError(ReproError):
    """Base class for online-inference (``repro.serving``) failures."""


class ReplicaCrashedError(ServingError):
    """Raised when a process replica's child died with a request in flight.

    Only the in-flight micro-batch fails with this error; the replica
    respawns its child on the next request, so the server keeps serving.
    """


class ServerOverloadedError(ServingError):
    """Raised when a request is rejected by bounded-queue admission control.

    The server's queue is at capacity; the client should back off and retry
    (closed-loop load generators count these as rejections).
    """


class RequestTimeoutError(ServingError):
    """Raised when a request misses its deadline before a response lands.

    Either the request expired while queued (the server drops it without
    running inference) or the caller's ``result(timeout=...)`` wait ran out.
    """
