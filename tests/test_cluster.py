"""Tests for devices, interconnect, cluster, and the discrete-event simulator."""

import numpy as np
import pytest

from repro.cluster import (
    Cluster,
    ClusterSimulator,
    Device,
    DeviceSpec,
    ExecutionTrace,
    GPU_PRESETS,
    INTERCONNECT_PRESETS,
    Interconnect,
    LinkSpec,
    SimTask,
    TaskRecord,
)
from repro.exceptions import ConfigurationError, OutOfDeviceMemoryError, SimulationError

GIB = 1024 ** 3


class TestDeviceSpec:
    def test_presets_exist(self):
        assert "v100-16gb" in GPU_PRESETS
        assert GPU_PRESETS["v100-16gb"].memory_bytes == 16 * GIB

    def test_compute_time(self):
        spec = DeviceSpec("toy", memory_bytes=GIB, flops_per_second=1e9)
        assert spec.compute_time(2e9) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            spec.compute_time(-1)


class TestDeviceMemoryLedger:
    def _device(self, memory=1000):
        return Device(DeviceSpec("toy", memory_bytes=memory, flops_per_second=1e9), name="gpu0")

    def test_allocate_release_cycle(self):
        device = self._device()
        device.allocate("a", 400)
        assert device.used_bytes == 400
        assert device.free_bytes == 600
        assert device.holds("a")
        assert device.release("a") == 400
        assert device.used_bytes == 0

    def test_peak_tracking(self):
        device = self._device()
        device.allocate("a", 400)
        device.allocate("b", 500)
        device.release("a")
        assert device.peak_bytes == 900

    def test_over_allocation_raises(self):
        device = self._device(100)
        with pytest.raises(OutOfDeviceMemoryError) as excinfo:
            device.allocate("big", 200)
        assert excinfo.value.device_name == "gpu0"
        assert excinfo.value.requested_bytes == 200

    def test_duplicate_key_rejected(self):
        device = self._device()
        device.allocate("x", 10)
        with pytest.raises(ConfigurationError):
            device.allocate("x", 10)

    def test_release_unknown_key_rejected(self):
        with pytest.raises(ConfigurationError):
            self._device().release("nope")

    def test_negative_allocation_rejected(self):
        with pytest.raises(ValueError):
            self._device().allocate("neg", -1)

    def test_reset(self):
        device = self._device()
        device.allocate("a", 10)
        device.reset()
        assert device.used_bytes == 0 and device.peak_bytes == 0


class TestInterconnect:
    def test_link_transfer_time(self):
        link = LinkSpec("test", bandwidth_bytes_per_second=1e9, latency_seconds=1e-3)
        assert link.transfer_time(1e9) == pytest.approx(1.001)
        assert link.transfer_time(0) == 0.0
        with pytest.raises(ValueError):
            link.transfer_time(-5)

    def test_same_device_transfer_is_free(self):
        net = Interconnect()
        assert net.transfer_time(10 ** 9, "gpu0", "gpu0") == 0.0

    def test_default_link_used_between_distinct_devices(self):
        net = Interconnect(default_link=INTERCONNECT_PRESETS["pcie-gen3"])
        expected = INTERCONNECT_PRESETS["pcie-gen3"].transfer_time(1_000_000)
        assert net.transfer_time(1_000_000, "gpu0", "gpu1") == pytest.approx(expected)

    def test_override_is_symmetric(self):
        net = Interconnect()
        net.set_link("gpu0", "gpu1", INTERCONNECT_PRESETS["nvlink2"])
        fast = net.transfer_time(10 ** 8, "gpu1", "gpu0")
        slow = net.transfer_time(10 ** 8, "gpu0", "gpu2")
        assert fast < slow

    def test_self_link_rejected(self):
        with pytest.raises(ConfigurationError):
            Interconnect().set_link("gpu0", "gpu0", INTERCONNECT_PRESETS["nvlink2"])

    def test_nvlink_faster_than_pcie(self):
        nvlink = INTERCONNECT_PRESETS["nvlink2"].transfer_time(10 ** 9)
        pcie = INTERCONNECT_PRESETS["pcie-gen3"].transfer_time(10 ** 9)
        assert nvlink < pcie


class TestCluster:
    def test_single_server_factory(self):
        cluster = Cluster.single_server(4, "v100-16gb")
        assert len(cluster) == 4
        assert cluster.device_names() == ["gpu0", "gpu1", "gpu2", "gpu3"]
        assert cluster.total_memory_bytes == 4 * 16 * GIB

    def test_unknown_device_lookup(self):
        cluster = Cluster.single_server(2)
        with pytest.raises(ConfigurationError):
            cluster.device("gpu9")

    def test_duplicate_names_rejected(self):
        spec = GPU_PRESETS["v100-16gb"]
        with pytest.raises(ConfigurationError):
            Cluster([Device(spec, "a"), Device(spec, "a")])

    def test_empty_cluster_rejected(self):
        with pytest.raises(ConfigurationError):
            Cluster([])

    def test_invalid_device_count(self):
        with pytest.raises(ConfigurationError):
            Cluster.single_server(0)

    def test_reset_clears_all_devices(self):
        cluster = Cluster.single_server(2)
        cluster.device("gpu0").allocate("x", 100)
        cluster.reset()
        assert cluster.device("gpu0").used_bytes == 0


class TestSimulator:
    def _cluster(self, n=2):
        spec = DeviceSpec("unit", memory_bytes=10 * GIB, flops_per_second=1e9)
        return Cluster([Device(spec, f"gpu{i}") for i in range(n)])

    def test_single_task(self):
        cluster = self._cluster(1)
        trace = ClusterSimulator(cluster).run([SimTask("t0", "gpu0", compute_flops=2e9)])
        assert trace.makespan == pytest.approx(2.0)
        assert trace.records[0].device == "gpu0"

    def test_duration_override(self):
        cluster = self._cluster(1)
        trace = ClusterSimulator(cluster).run(
            [SimTask("t0", "gpu0", compute_flops=5e9, duration_seconds=0.5)]
        )
        assert trace.makespan == pytest.approx(0.5)

    def test_dependencies_respected(self):
        cluster = self._cluster(2)
        tasks = [
            SimTask("a", "gpu0", compute_flops=1e9),
            SimTask("b", "gpu1", compute_flops=1e9, deps=["a"]),
        ]
        trace = ClusterSimulator(cluster).run(tasks)
        rec = {r.task_id: r for r in trace.records}
        assert rec["b"].start >= rec["a"].end

    def test_independent_tasks_run_in_parallel(self):
        cluster = self._cluster(2)
        tasks = [SimTask(f"t{i}", f"gpu{i}", compute_flops=1e9) for i in range(2)]
        trace = ClusterSimulator(cluster).run(tasks)
        assert trace.makespan == pytest.approx(1.0)
        assert trace.utilization() == pytest.approx(1.0)

    def test_device_exclusivity(self):
        cluster = self._cluster(1)
        tasks = [SimTask(f"t{i}", "gpu0", compute_flops=1e9) for i in range(3)]
        trace = ClusterSimulator(cluster).run(tasks)
        assert trace.makespan == pytest.approx(3.0)
        records = sorted(trace.records, key=lambda r: r.start)
        for first, second in zip(records, records[1:]):
            assert second.start >= first.end

    def test_transfer_time_added(self):
        cluster = self._cluster(2)
        tasks = [
            SimTask("producer", "gpu0", compute_flops=1e9),
            SimTask("consumer", "gpu1", compute_flops=1e9, deps=["producer"],
                    input_transfers=[("gpu0", 12 * 10 ** 9)]),
        ]
        trace = ClusterSimulator(cluster).run(tasks)
        consumer = next(r for r in trace.records if r.task_id == "consumer")
        assert consumer.transfer_seconds > 0.9
        assert trace.makespan == pytest.approx(1.0 + consumer.transfer_seconds + 1.0)

    def test_same_device_transfer_free(self):
        cluster = self._cluster(1)
        tasks = [
            SimTask("producer", "gpu0", compute_flops=1e9),
            SimTask("consumer", "gpu0", compute_flops=1e9, deps=["producer"],
                    input_transfers=[("gpu0", 10 ** 12)]),
        ]
        trace = ClusterSimulator(cluster).run(tasks)
        assert trace.makespan == pytest.approx(2.0)

    def test_memory_allocation_and_release(self):
        cluster = self._cluster(1)
        tasks = [
            SimTask("alloc", "gpu0", compute_flops=1e9,
                    memory_allocations=[("buffer", 5 * GIB)]),
            SimTask("free", "gpu0", compute_flops=1e9, deps=["alloc"],
                    memory_releases=["buffer"]),
        ]
        trace = ClusterSimulator(cluster).run(tasks)
        assert trace.peak_memory_bytes["gpu0"] == 5 * GIB
        assert cluster.device("gpu0").used_bytes == 0

    def test_memory_overflow_raises(self):
        cluster = self._cluster(1)
        tasks = [SimTask("big", "gpu0", memory_allocations=[("x", 100 * GIB)])]
        with pytest.raises(OutOfDeviceMemoryError):
            ClusterSimulator(cluster).run(tasks)

    def test_unknown_device_rejected(self):
        with pytest.raises(SimulationError):
            ClusterSimulator(self._cluster(1)).run([SimTask("t", "gpu7")])

    def test_duplicate_task_id_rejected(self):
        with pytest.raises(SimulationError):
            ClusterSimulator(self._cluster(1)).run(
                [SimTask("t", "gpu0"), SimTask("t", "gpu0")]
            )

    def test_unknown_dependency_rejected(self):
        with pytest.raises(SimulationError):
            ClusterSimulator(self._cluster(1)).run([SimTask("t", "gpu0", deps=["ghost"])])

    def test_cycle_detected_as_deadlock(self):
        tasks = [
            SimTask("a", "gpu0", deps=["b"]),
            SimTask("b", "gpu0", deps=["a"]),
        ]
        with pytest.raises(SimulationError):
            ClusterSimulator(self._cluster(1)).run(tasks)

    def test_policy_controls_ordering(self):
        cluster = self._cluster(1)

        def prefer_tagged(device, ready):
            important = [t for t in ready if t.tags.get("important")]
            return important[0] if important else ready[0]

        tasks = [
            SimTask("boring", "gpu0", compute_flops=1e9),
            SimTask("critical", "gpu0", compute_flops=1e9, tags={"important": True}),
        ]
        trace = ClusterSimulator(cluster, policy=prefer_tagged).run(tasks)
        first = min(trace.records, key=lambda r: r.start)
        assert first.task_id == "critical"

    def test_deterministic_across_runs(self):
        def run_once():
            cluster = self._cluster(3)
            rng = np.random.default_rng(0)
            tasks = []
            for i in range(30):
                deps = [f"t{i - 1}"] if i % 5 else []
                tasks.append(
                    SimTask(f"t{i}", f"gpu{i % 3}", compute_flops=float(rng.integers(1, 10)) * 1e8,
                            deps=deps)
                )
            trace = ClusterSimulator(cluster).run(tasks)
            return [(r.task_id, r.start, r.end) for r in trace.records]

        assert run_once() == run_once()


class TestExecutionTrace:
    def _trace(self):
        records = [
            TaskRecord("a", "gpu0", 0.0, 2.0, 2.0, 0.0, {"model": "m0"}),
            TaskRecord("b", "gpu1", 1.0, 2.0, 0.5, 0.5, {"model": "m1"}),
            TaskRecord("c", "gpu0", 2.0, 4.0, 2.0, 0.0, {"model": "m1"}),
        ]
        return ExecutionTrace(device_names=["gpu0", "gpu1"], records=records,
                              peak_memory_bytes={"gpu0": 100, "gpu1": 50})

    def test_makespan_and_busy(self):
        trace = self._trace()
        assert trace.makespan == 4.0
        assert trace.busy_seconds("gpu0") == 4.0
        assert trace.busy_seconds("gpu1") == 1.0
        assert trace.busy_seconds() == 5.0

    def test_utilization(self):
        trace = self._trace()
        assert trace.utilization("gpu0") == pytest.approx(1.0)
        assert trace.utilization("gpu1") == pytest.approx(0.25)
        assert trace.utilization() == pytest.approx(5.0 / 8.0)
        assert trace.idle_seconds("gpu1") == pytest.approx(3.0)

    def test_empty_trace(self):
        trace = ExecutionTrace(device_names=["gpu0"])
        assert trace.makespan == 0.0
        assert trace.utilization() == 0.0
        assert trace.throughput(10) == 0.0

    def test_compute_vs_transfer_accounting(self):
        trace = self._trace()
        assert trace.compute_seconds("gpu1") == pytest.approx(0.5)

    def test_throughput(self):
        assert self._trace().throughput(8) == pytest.approx(2.0)

    def test_records_filtering(self):
        trace = self._trace()
        assert len(trace.records_for(device="gpu0")) == 2
        assert len(trace.records_for(model="m1")) == 2
        assert len(trace.records_for(device="gpu0", model="m1")) == 1

    def test_gantt_rows_sorted(self):
        rows = self._trace().gantt_rows()
        assert rows[0][0] == "gpu0" and rows[0][2] == 0.0

    def test_summary_keys(self):
        summary = self._trace().summary()
        assert {"makespan_seconds", "num_tasks", "cluster_utilization",
                "per_device_utilization", "peak_memory_bytes"} <= set(summary)

    def test_concatenate_shifts_time(self):
        trace = self._trace()
        combined = ExecutionTrace.concatenate([trace, self._trace()])
        assert combined.makespan == pytest.approx(8.0)
        assert len(combined.records) == 6
        assert combined.peak_memory_bytes["gpu0"] == 100

    def test_concatenate_requires_same_devices(self):
        other = ExecutionTrace(device_names=["gpuX"])
        with pytest.raises(ValueError):
            ExecutionTrace.concatenate([self._trace(), other])

    def test_concatenate_empty_list_rejected(self):
        with pytest.raises(ValueError):
            ExecutionTrace.concatenate([])
