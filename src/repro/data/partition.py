"""Data partitioning for Cerebro-style model hopping.

Cerebro shards the *data* across workers and hops models between partitions
so that each model sees every partition once per epoch without moving data.
The hybrid Hydra + data-parallel experiment (E7) reuses these partitions.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.data.dataset import Dataset, Subset


def partition_dataset(
    dataset: Dataset,
    num_partitions: int,
    shuffle: bool = True,
    seed: Optional[int] = 0,
) -> List[Subset]:
    """Split ``dataset`` into ``num_partitions`` near-equal disjoint subsets.

    Partition sizes differ by at most one example; every example appears in
    exactly one partition.
    """
    if num_partitions <= 0:
        raise ValueError(f"num_partitions must be positive, got {num_partitions}")
    n = len(dataset)
    if num_partitions > n:
        raise ValueError(
            f"cannot split {n} examples into {num_partitions} non-empty partitions"
        )
    indices = np.arange(n)
    if shuffle:
        indices = np.random.default_rng(seed).permutation(n)
    splits = np.array_split(indices, num_partitions)
    return [Subset(dataset, split.tolist()) for split in splits]
