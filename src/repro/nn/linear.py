"""Fully-connected (affine) layer."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd import ops
from repro.autograd.tensor import Tensor
from repro.nn import init
from repro.nn.module import Module
from repro.nn.parameter import Parameter
from repro.utils.rng import get_rng


class Linear(Module):
    """Applies ``y = x @ W^T + b``.

    Parameters
    ----------
    in_features, out_features:
        Input and output widths.
    bias:
        Whether to add a learned offset.
    rng:
        Generator used for weight initialisation; defaults to the global RNG.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        generator = rng if rng is not None else get_rng()
        self.weight = Parameter(
            init.kaiming_uniform((self.out_features, self.in_features), generator),
            name="weight",
        )
        if bias:
            self.bias = Parameter(init.zeros((self.out_features,)), name="bias")
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        # Fused kernel: one graph node, bit-identical to
        # `x.matmul(self.weight.T) + self.bias`.
        return ops.linear(x, self.weight, self.bias)

    def __repr__(self) -> str:
        return (
            f"Linear(in_features={self.in_features}, out_features={self.out_features}, "
            f"bias={self.bias is not None})"
        )
