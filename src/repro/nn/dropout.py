"""Dropout regularisation."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd import ops
from repro.autograd.tensor import Tensor
from repro.nn.module import Module
from repro.utils.rng import get_rng


class Dropout(Module):
    """Inverted dropout.

    During training each element is zeroed with probability ``p`` and the
    survivors are rescaled by ``1 / (1 - p)``.  Evaluation mode is the
    identity.  The mask is drawn from ``rng`` (or the global generator),
    which keeps sharded and unsharded executions bit-identical when they are
    driven by the same seed sequence.
    """

    def __init__(self, p: float = 0.1, rng: Optional[np.random.Generator] = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = float(p)
        self._rng = rng

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        generator = self._rng if self._rng is not None else get_rng()
        keep_prob = 1.0 - self.p
        mask = (generator.uniform(size=x.shape) < keep_prob).astype(x.data.dtype)
        return ops.dropout(x, mask=mask, keep_prob=keep_prob)

    def __repr__(self) -> str:
        return f"Dropout(p={self.p})"
