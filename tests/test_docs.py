"""Documentation is part of the contract: snippets run, links resolve,
public API docstrings exist.

* every ```python block in README.md and docs/*.md is executed top to
  bottom (blocks within one file share a namespace, tutorial-style);
* every intra-repo markdown link in README.md, DESIGN.md, and docs/*.md
  must point at an existing file (and an existing heading, when it has a
  ``#fragment``);
* every public ``repro.api`` symbol — and every public method/property of
  the public classes — must carry a non-empty docstring.

The CI ``docs`` job runs exactly this module.
"""

from __future__ import annotations

import inspect
import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCS_DIR = REPO_ROOT / "docs"

SNIPPET_FILES = sorted([REPO_ROOT / "README.md", *DOCS_DIR.glob("*.md")])
LINKED_FILES = sorted(
    [REPO_ROOT / "README.md", REPO_ROOT / "DESIGN.md", *DOCS_DIR.glob("*.md")]
)

_FENCE = re.compile(r"^```(\w*)\s*$")
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def _python_blocks(path: Path):
    """Yield (starting_line, source) for every ```python fence in ``path``."""
    blocks = []
    language, start, lines = None, 0, []
    for number, line in enumerate(path.read_text().splitlines(), start=1):
        fence = _FENCE.match(line)
        if fence and language is None:
            language, start, lines = fence.group(1), number + 1, []
        elif line.strip() == "```" and language is not None:
            if language == "python":
                blocks.append((start, "\n".join(lines)))
            language = None
        elif language is not None:
            lines.append(line)
    return blocks


def _headings(path: Path):
    """GitHub-style anchor slugs for every markdown heading in ``path``."""
    slugs = set()
    for line in path.read_text().splitlines():
        if line.startswith("#"):
            title = line.lstrip("#").strip()
            slug = re.sub(r"[^\w\- ]", "", title.lower()).replace(" ", "-")
            slugs.add(slug)
    return slugs


class TestDocSnippets:
    @pytest.mark.parametrize(
        "path", SNIPPET_FILES, ids=[p.relative_to(REPO_ROOT).as_posix() for p in SNIPPET_FILES]
    )
    def test_every_python_block_runs(self, path):
        blocks = _python_blocks(path)
        assert blocks, f"{path.name} has no runnable python snippets"
        namespace = {"__name__": f"doc_snippet_{path.stem}"}
        for line, source in blocks:
            try:
                exec(compile(source, f"{path.name}:{line}", "exec"), namespace)
            except Exception as error:  # pragma: no cover - failure reporting
                pytest.fail(
                    f"snippet at {path.name}:{line} failed: "
                    f"{type(error).__name__}: {error}"
                )


class TestIntraRepoLinks:
    @pytest.mark.parametrize(
        "path", LINKED_FILES, ids=[p.relative_to(REPO_ROOT).as_posix() for p in LINKED_FILES]
    )
    def test_relative_links_resolve(self, path):
        broken = []
        for target in _LINK.findall(path.read_text()):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            location, _, fragment = target.partition("#")
            resolved = (path.parent / location).resolve() if location else path
            if not resolved.exists():
                broken.append(f"{target} -> missing file {location}")
                continue
            if fragment and resolved.suffix == ".md":
                if fragment not in _headings(resolved):
                    broken.append(f"{target} -> no heading #{fragment}")
        assert not broken, f"broken links in {path.name}: {broken}"


class TestPublicDocstrings:
    def test_no_public_api_symbol_lacks_a_docstring(self):
        import repro.api as api

        undocumented = []
        for name in api.__all__:
            symbol = getattr(api, name)
            if not (inspect.getdoc(symbol) or "").strip():
                undocumented.append(name)
            if not inspect.isclass(symbol):
                continue
            for attr, member in vars(symbol).items():
                if attr.startswith("_"):
                    continue
                if not (callable(member) or isinstance(member, property)):
                    continue
                if not (inspect.getdoc(getattr(symbol, attr)) or "").strip():
                    undocumented.append(f"{name}.{attr}")
        assert not undocumented, f"public repro.api surface missing docstrings: {undocumented}"
