"""Adam and AdamW optimizers (AdamW is what BERT fine-tuning uses)."""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np

from repro.nn.parameter import Parameter
from repro.optim.optimizer import Optimizer


class Adam(Optimizer):
    """Adam with bias-corrected first and second moments."""

    state_bytes_per_parameter = 8  # two float32 moments per scalar

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas: Tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)

    def _update(self, param: Parameter, grad: np.ndarray) -> None:
        # Fully in-place update: the moments are mutated with `out=` ufuncs
        # and every temporary lives in the optimizer's scratch buffer, so a
        # warmed-up step allocates nothing.  Each numpy operation applies the
        # same ufunc to the same operands as the allocating formulation
        # (`m = beta1*m + (1-beta1)*grad`, ...), keeping updates bit-exact.
        state = self._param_state(param)
        m = state.get("m")
        v = state.get("v")
        if m is None:
            m = state["m"] = np.zeros_like(param.data)
            v = state["v"] = np.zeros_like(param.data)
        work, scratch = self._scratch_views(param, 2)
        if self.weight_decay and self._couples_weight_decay():
            np.multiply(param.data, self.weight_decay, out=scratch)
            grad = np.add(grad, scratch, out=work)
        np.multiply(m, self.beta1, out=m)
        np.multiply(grad, 1.0 - self.beta1, out=scratch)
        np.add(m, scratch, out=m)
        np.multiply(v, self.beta2, out=v)
        np.multiply(grad, grad, out=scratch)
        np.multiply(scratch, 1.0 - self.beta2, out=scratch)
        np.add(v, scratch, out=v)
        update = np.divide(m, 1.0 - self.beta1 ** self.step_count, out=work)  # m_hat
        denom = np.divide(v, 1.0 - self.beta2 ** self.step_count, out=scratch)  # v_hat
        np.sqrt(denom, out=denom)
        np.add(denom, self.eps, out=denom)
        np.divide(update, denom, out=update)
        if self.weight_decay and not self._couples_weight_decay():
            np.multiply(param.data, self.weight_decay, out=scratch)
            np.add(update, scratch, out=update)
        np.multiply(update, self.lr, out=update)
        np.subtract(param.data, update, out=param.data)

    def _couples_weight_decay(self) -> bool:
        """Adam couples L2 into the gradient; AdamW decays weights directly."""
        return True


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter)."""

    def _couples_weight_decay(self) -> bool:
        return False
