"""Execution traces: what ran where, when — and the derived metrics.

The paper's evaluation quantities (device utilization for Figure 1 and
desideratum D1, makespan/speedup for Figure 2 and desideratum D2, per-device
memory for the §4.2 result) are all computed from an :class:`ExecutionTrace`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass(frozen=True)
class TaskRecord:
    """One executed task: identity, placement, timing."""

    task_id: str
    device: str
    start: float
    end: float
    compute_seconds: float
    transfer_seconds: float
    tags: Dict[str, object] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class ExecutionTrace:
    """The full record of one simulated run."""

    device_names: List[str]
    records: List[TaskRecord] = field(default_factory=list)
    peak_memory_bytes: Dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Core metrics
    # ------------------------------------------------------------------ #
    @property
    def makespan(self) -> float:
        """End time of the last task (simulation starts at t=0)."""
        if not self.records:
            return 0.0
        return max(record.end for record in self.records)

    def busy_seconds(self, device: Optional[str] = None) -> float:
        """Total seconds the device (or all devices) spent occupied by tasks."""
        return sum(
            record.duration
            for record in self.records
            if device is None or record.device == device
        )

    def compute_seconds(self, device: Optional[str] = None) -> float:
        """Seconds spent on useful compute (excluding inter-device transfers)."""
        return sum(
            record.compute_seconds
            for record in self.records
            if device is None or record.device == device
        )

    def transfer_seconds(self, device: Optional[str] = None) -> float:
        """Seconds spent moving bytes (boundary activations, spill traffic).

        Includes both transfers charged to compute tasks (``input_transfers``)
        and dedicated transfer tasks such as the spilled strategy's
        host-lane fetch/writeback records, whose whole duration is transfer.
        """
        return sum(
            record.transfer_seconds
            for record in self.records
            if device is None or record.device == device
        )

    def utilization(self, device: Optional[str] = None) -> float:
        """Busy time divided by wall-clock time.

        With ``device=None`` this is the cluster-average utilization:
        total busy time over (makespan × number of devices).
        """
        span = self.makespan
        if span == 0:
            return 0.0
        if device is not None:
            return self.busy_seconds(device) / span
        return self.busy_seconds() / (span * len(self.device_names))

    def per_device_utilization(self) -> Dict[str, float]:
        return {name: self.utilization(name) for name in self.device_names}

    def idle_seconds(self, device: str) -> float:
        return self.makespan - self.busy_seconds(device)

    def throughput(self, units: float) -> float:
        """``units`` of work (samples, batches, tasks) per simulated second."""
        span = self.makespan
        return units / span if span > 0 else 0.0

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def records_for(self, device: Optional[str] = None, **tag_filters) -> List[TaskRecord]:
        """Records matching a device and/or tag equality filters."""
        matched = []
        for record in self.records:
            if device is not None and record.device != device:
                continue
            if all(record.tags.get(key) == value for key, value in tag_filters.items()):
                matched.append(record)
        return matched

    def gantt_rows(self) -> List[Tuple[str, str, float, float]]:
        """(device, task_id, start, end) rows sorted by device then start time."""
        rows = [
            (record.device, record.task_id, record.start, record.end)
            for record in self.records
        ]
        return sorted(rows, key=lambda row: (row[0], row[2]))

    @staticmethod
    def concatenate(traces: List["ExecutionTrace"]) -> "ExecutionTrace":
        """Join traces end-to-end in time (used for wave-by-wave execution).

        Each trace's records are shifted by the cumulative makespan of the
        traces before it; peak memory is the per-device maximum over traces.
        """
        if not traces:
            raise ValueError("concatenate requires at least one trace")
        device_names = traces[0].device_names
        records: List[TaskRecord] = []
        peak: Dict[str, int] = {}
        offset = 0.0
        for trace in traces:
            if trace.device_names != device_names:
                raise ValueError("cannot concatenate traces from different clusters")
            for record in trace.records:
                records.append(
                    TaskRecord(
                        task_id=record.task_id,
                        device=record.device,
                        start=record.start + offset,
                        end=record.end + offset,
                        compute_seconds=record.compute_seconds,
                        transfer_seconds=record.transfer_seconds,
                        tags=dict(record.tags),
                    )
                )
            for name, value in trace.peak_memory_bytes.items():
                peak[name] = max(peak.get(name, 0), value)
            offset += trace.makespan
        return ExecutionTrace(device_names=device_names, records=records, peak_memory_bytes=peak)

    def summary(self) -> Dict[str, object]:
        """Headline metrics as a plain dict (used by benchmark reports)."""
        return {
            "makespan_seconds": self.makespan,
            "num_tasks": len(self.records),
            "cluster_utilization": self.utilization(),
            "per_device_utilization": self.per_device_utilization(),
            "transfer_seconds": self.transfer_seconds(),
            "peak_memory_bytes": dict(self.peak_memory_bytes),
        }
