"""Synthetic span-extraction data standing in for SQuAD.

The paper fine-tunes BERT-Large on SQuAD (question answering by predicting
an answer span inside a context).  Real SQuAD is unavailable offline, so
:func:`make_span_extraction` builds sequences with the same task shape: a
"question" token segment, a separator, a "context" segment, and a contiguous
answer span whose start/end positions are the labels.  The answer span is
marked by correlated token patterns so that an attention model can actually
learn the task (accuracy rises above chance in the examples).
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.data.dataset import Dataset
from repro.utils.rng import get_rng

PAD_TOKEN = 0
CLS_TOKEN = 1
SEP_TOKEN = 2
_SPECIAL_TOKENS = 3


class SyntheticSpanDataset(Dataset):
    """Token sequences with an answer span to be located.

    Each example contains ``input_ids``, ``attention_mask``, ``start_position``
    and ``end_position`` — the same fields a SQuAD fine-tuning pipeline feeds
    to BERT.
    """

    def __init__(
        self,
        num_samples: int = 256,
        seq_len: int = 64,
        vocab_size: int = 128,
        max_answer_len: int = 6,
        rng: Optional[np.random.Generator] = None,
    ):
        if vocab_size <= _SPECIAL_TOKENS + 2:
            raise ValueError("vocab_size too small for special tokens plus content tokens")
        if seq_len < 8:
            raise ValueError("seq_len must be at least 8")
        generator = rng if rng is not None else get_rng()
        self.num_samples = int(num_samples)
        self.seq_len = int(seq_len)
        self.vocab_size = int(vocab_size)
        self.max_answer_len = int(max_answer_len)
        self._examples = [
            self._generate_example(generator) for _ in range(self.num_samples)
        ]

    def _generate_example(self, rng: np.random.Generator) -> Dict[str, np.ndarray]:
        seq_len = self.seq_len
        # Layout: [CLS] question(q_len) [SEP] context(...) [SEP]
        question_len = int(rng.integers(3, max(4, seq_len // 8) + 1))
        context_start = 1 + question_len + 1
        context_end = seq_len - 1  # final SEP
        tokens = rng.integers(_SPECIAL_TOKENS, self.vocab_size, size=seq_len)
        tokens[0] = CLS_TOKEN
        tokens[1 + question_len] = SEP_TOKEN
        tokens[seq_len - 1] = SEP_TOKEN

        # The "question" is a single query token repeated; the answer span in
        # the context is the run of positions holding that same token.
        query_token = int(rng.integers(_SPECIAL_TOKENS, self.vocab_size))
        tokens[1:1 + question_len] = query_token
        answer_len = int(rng.integers(1, self.max_answer_len + 1))
        max_start = context_end - answer_len
        answer_start = int(rng.integers(context_start, max(max_start, context_start) + 1))
        answer_end = answer_start + answer_len - 1
        # Remove accidental occurrences of the query token elsewhere in the context.
        context_slice = slice(context_start, context_end)
        context = tokens[context_slice]
        collisions = context == query_token
        context[collisions] = (context[collisions] + 1 - _SPECIAL_TOKENS) % (
            self.vocab_size - _SPECIAL_TOKENS
        ) + _SPECIAL_TOKENS
        tokens[context_slice] = context
        tokens[answer_start:answer_end + 1] = query_token

        attention_mask = np.ones(seq_len, dtype=np.int64)
        return {
            "input_ids": tokens.astype(np.int64),
            "attention_mask": attention_mask,
            "start_position": np.int64(answer_start),
            "end_position": np.int64(answer_end),
        }

    def __len__(self) -> int:
        return self.num_samples

    def __getitem__(self, index: int) -> Dict[str, np.ndarray]:
        return self._examples[index]


def make_span_extraction(
    num_samples: int = 256,
    seq_len: int = 64,
    vocab_size: int = 128,
    rng: Optional[np.random.Generator] = None,
) -> SyntheticSpanDataset:
    """Convenience constructor mirroring the other ``make_*`` helpers."""
    return SyntheticSpanDataset(
        num_samples=num_samples, seq_len=seq_len, vocab_size=vocab_size, rng=rng
    )
