"""The model registry: versioned checkpoints as the training→serving bridge.

A :class:`ModelRegistry` is a directory of published model versions::

    <root>/<name>/v0001/model.npz
    <root>/<name>/v0002/model.npz
    ...

Each archive is an ordinary checkpoint written by
:func:`repro.training.checkpoint.save_checkpoint` (``param::`` parameter
arrays plus ``meta::`` metadata), so a published model, a mid-trial
checkpoint, and a disk-spilled shard all share one serialization.  Training
code publishes a trained model under a name; serving code builds a model of
the same architecture and loads the published bytes back into it —
bit-identical, which is what makes a spilled or replicated deployment
reproduce the training-time outputs exactly.
"""

from __future__ import annotations

import os
import re
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

import numpy as np

from repro.exceptions import CheckpointError, ConfigurationError
from repro.nn.module import Module
from repro.training.checkpoint import load_checkpoint, save_checkpoint

#: directory name for version ``n`` (zero-padded so lexical sort == numeric)
_VERSION_DIR = "v{version:04d}"
_VERSION_RE = re.compile(r"^v(\d{4,})$")
_NAME_RE = re.compile(r"^[\w.-]+$")
#: archive file inside each version directory
_ARCHIVE = "model.npz"


@dataclass(frozen=True)
class ModelVersion:
    """One published model version: where it lives and what was recorded."""

    name: str
    version: int
    path: Path
    metadata: Dict[str, Any] = field(default_factory=dict)

    @property
    def archive(self) -> Path:
        """Path of the version's ``.npz`` checkpoint archive."""
        return self.path / _ARCHIVE


def _plain(value: np.ndarray) -> Any:
    """Unwrap 0-d / single-element metadata arrays back to python scalars."""
    array = np.asarray(value)
    if array.shape == () or array.size == 1:
        return array.reshape(()).item()
    return array


class ModelRegistry:
    """Publishes and loads versioned model checkpoints under one root.

    Publishing copies a model's parameters (plus caller metadata) into a new
    version directory; loading copies a chosen version — the latest by
    default — back into a caller-built model of the same architecture.
    The registry is thread-safe: concurrent trials under the worker-pool
    runtime can publish without clobbering each other's version numbers.

    It is also **process-safe and crash-safe**: a version directory is
    claimed with an atomic ``mkdir`` (auto-numbered publishes race forward
    past collisions), and the archive is written to a temporary file and
    ``os.replace``-d into place, so readers never observe a torn archive —
    a publisher killed mid-write leaves a version directory without an
    archive, which every lookup path ignores.  Registry objects pickle
    (they serialise as their root path), so a handle can be shipped to
    worker processes that publish or load against the same directory.

    Example::

        registry = ModelRegistry(tmp_path)
        published = registry.publish("mlp", trained_model, metadata={"loss": 0.3})
        restored = registry.load("mlp", fresh_model)          # latest version
        assert restored.version == published.version

    Raises:
        ConfigurationError: for invalid model names or version numbers.
        CheckpointError: for unknown names/versions, version collisions, or
            archives whose parameters do not match the target model.
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()

    def __getstate__(self) -> Dict[str, Any]:
        """Pickle as the root path alone (locks are per-process)."""
        return {"root": str(self.root)}

    def __setstate__(self, state: Dict[str, Any]) -> None:
        """Rebuild against the same directory with a fresh in-process lock."""
        self.root = Path(state["root"])
        self.root.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()

    # ------------------------------------------------------------------ #
    # Publishing
    # ------------------------------------------------------------------ #
    def publish(
        self,
        name: str,
        model: Module,
        metadata: Optional[Dict[str, Any]] = None,
        version: Optional[int] = None,
        compressed: bool = False,
    ) -> ModelVersion:
        """Publish ``model``'s parameters as a new version of ``name``.

        ``version`` defaults to one past the latest published version (1 for
        a new name); passing an explicit number that already exists raises —
        published versions are immutable.  ``metadata`` values must be
        convertible by ``np.asarray`` (numbers, strings, small arrays).

        The version directory is claimed with an atomic ``mkdir`` (so
        concurrent publishers — threads *or* processes — cannot share a
        number; auto-numbered publishes retry past collisions), and the
        archive lands via write-to-temp + ``os.replace``: readers either
        see the complete archive or no archive at all.
        """
        self._check_name(name)
        if version is not None and version <= 0:
            raise ConfigurationError(f"version must be positive, got {version}")
        with self._lock:
            directory, version = self._claim_version_dir(name, version)
            payload = {"model_name": getattr(model, "model_name", type(model).__name__)}
            payload.update(metadata or {})
            staged = save_checkpoint(
                model,
                directory / (".staging-" + _ARCHIVE),
                metadata=payload,
                compressed=compressed,
            )
            os.replace(staged, directory / _ARCHIVE)
            return ModelVersion(
                name=name, version=version, path=directory, metadata=dict(payload)
            )

    def _claim_version_dir(self, name: str, version: Optional[int]):
        """Atomically create (and thereby own) the next version directory.

        ``mkdir`` is the cross-process mutex: whoever creates the directory
        owns the number.  Auto-numbered publishes advance past collisions —
        both live racers and torn directories a killed publisher left
        behind (a directory without an archive is invisible to
        :meth:`versions` but still occupies its number).
        """
        floor = 1
        for _ in range(10_000):
            if version is not None:
                chosen = version
            else:
                existing = self.versions(name)
                chosen = max((existing[-1] + 1) if existing else 1, floor)
            directory = self.root / name / _VERSION_DIR.format(version=chosen)
            try:
                directory.mkdir(parents=True)
                return directory, chosen
            except FileExistsError:
                if version is not None:
                    raise CheckpointError(
                        f"model {name!r} version {version} is already published; "
                        "published versions are immutable"
                    )
                floor = chosen + 1
        raise CheckpointError(  # pragma: no cover - requires 10k live racers
            f"could not allocate a version number for model {name!r}"
        )

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def names(self) -> List[str]:
        """Every model name with at least one published version, sorted.

        Directories that are not valid model names (a pre-existing registry
        root may contain unrelated entries) are skipped, not rejected.
        """
        with self._lock:
            return sorted(
                entry.name
                for entry in self.root.iterdir()
                if entry.is_dir()
                and _NAME_RE.match(entry.name)
                and self.versions(entry.name)
            )

    def versions(self, name: str) -> List[int]:
        """Published version numbers of ``name``, ascending (empty if none)."""
        self._check_name(name)
        directory = self.root / name
        if not directory.is_dir():
            return []
        found = []
        for entry in directory.iterdir():
            match = _VERSION_RE.match(entry.name)
            if match and (entry / _ARCHIVE).exists():
                found.append(int(match.group(1)))
        return sorted(found)

    def latest_version(self, name: str) -> int:
        """The newest published version number of ``name``."""
        versions = self.versions(name)
        if not versions:
            raise CheckpointError(f"registry has no published model {name!r}")
        return versions[-1]

    def archive_path(self, name: str, version: Optional[int] = None) -> Path:
        """The ``.npz`` archive path of ``name``/``version`` (default latest).

        This is the file process-based serving replicas ``mmap`` read-only:
        published versions are immutable, so a path resolved once stays
        valid for the life of the deployment.
        """
        return self._resolve(name, version).archive

    def metadata(self, name: str, version: Optional[int] = None) -> Dict[str, Any]:
        """The metadata recorded when ``name``/``version`` was published.

        Reads only the ``meta::`` entries of the archive — parameters are
        not materialised, so this is cheap even for large models.
        """
        archive = self._resolve(name, version).archive
        metadata: Dict[str, Any] = {}
        with np.load(archive, allow_pickle=False) as handle:
            for key in handle.files:
                if key.startswith("meta::"):
                    metadata[key[len("meta::"):]] = _plain(handle[key])
        return metadata

    # ------------------------------------------------------------------ #
    # Loading
    # ------------------------------------------------------------------ #
    def load(
        self, name: str, model: Module, version: Optional[int] = None
    ) -> ModelVersion:
        """Copy a published version's parameters into ``model`` (bit-exact).

        ``version`` defaults to the latest.  The model must expose exactly
        the published parameter names and shapes (it is the caller's job to
        rebuild the right architecture — e.g. from the trial's recorded
        hyperparameters).
        """
        resolved = self._resolve(name, version)
        metadata = load_checkpoint(model, resolved.archive)
        return ModelVersion(
            name=resolved.name,
            version=resolved.version,
            path=resolved.path,
            metadata={key: _plain(value) for key, value in metadata.items()},
        )

    # ------------------------------------------------------------------ #
    def _resolve(self, name: str, version: Optional[int]) -> ModelVersion:
        with self._lock:
            if version is None:
                version = self.latest_version(name)
            directory = self.root / name / _VERSION_DIR.format(version=version)
            if not (directory / _ARCHIVE).exists():
                raise CheckpointError(
                    f"registry has no model {name!r} version {version}; "
                    f"published versions: {self.versions(name) or 'none'}"
                )
            return ModelVersion(name=name, version=int(version), path=directory)

    @staticmethod
    def _check_name(name: str) -> None:
        if not _NAME_RE.match(name or ""):
            raise ConfigurationError(
                f"invalid model name {name!r}; use letters, digits, '.', '_', '-'"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ModelRegistry(root={str(self.root)!r}, models={self.names()})"
