"""The spilled-execution subsystem: arenas, host cache, spill manager,
prefetch, spill-aware scheduling — and the exactness bar: spilled training
is bit-identical (``array_equal``) to fully-resident training."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import Budget, Experiment, FunctionBackend, ShardParallelBackend
from repro.cluster import Cluster
from repro.cluster.device import Device, DeviceSpec, GPU_PRESETS
from repro.data import DataLoader, make_classification
from repro.exceptions import (
    CheckpointError,
    ConfigurationError,
    MemoryBudgetError,
    SchedulingError,
)
from repro.memory import (
    DeviceArena,
    HostShardCache,
    LRUEvictionPolicy,
    Prefetcher,
    ResidencyState,
    ScheduleAwareEvictionPolicy,
    SpillManager,
    make_eviction_policy,
)
from repro.models import FeedForwardConfig, FeedForwardNetwork
from repro.optim import SGD, Adam
from repro.scheduler import (
    ShardParallelStrategy,
    SpilledShardParallelStrategy,
    TrainingJob,
    plan_waves,
    spill_aware_placement,
)
from repro.selection import SearchSpace
from repro.sharding import make_plan
from repro.training import ShardedModelExecutor, ShardParallelTrainer
from repro.training.checkpoint import load_checkpoint, save_checkpoint


# --------------------------------------------------------------------------- #
# Helpers
# --------------------------------------------------------------------------- #
def small_mlp(seed: int = 3, width: int = 16) -> FeedForwardNetwork:
    config = FeedForwardConfig(input_dim=16, hidden_dims=(width,) * 3, num_classes=4)
    return FeedForwardNetwork(config, seed=seed)


def mlp_loader(batch_size: int = 16, features: int = 16, classes: int = 4) -> DataLoader:
    data = make_classification(
        num_samples=64, num_features=features, num_classes=classes,
        rng=np.random.default_rng(11),
    )
    return DataLoader(data, batch_size=batch_size, shuffle=True, seed=0)


def uniform_mlp(seed: int = 9, width: int = 32) -> FeedForwardNetwork:
    """Equal-sized square blocks, so every shard has the same footprint."""
    config = FeedForwardConfig(
        input_dim=width, hidden_dims=(width,) * 3, num_classes=width
    )
    return FeedForwardNetwork(config, seed=seed)


def shard_nbytes(executor: ShardedModelExecutor, shard: int, optimizer) -> int:
    params = executor.shard_parameters(shard)
    return sum(p.data.nbytes for p in params) + (
        sum(p.data.size for p in params) * optimizer.state_bytes_per_parameter
    )


def train_epochs(executor, loader, optimizer, epochs: int = 2):
    losses = []
    for epoch in range(epochs):
        loader.set_epoch(epoch)
        for batch in loader:
            losses.append(executor.train_step(batch, optimizer))
    return np.asarray(losses)


BOUNDARIES = [(0, 1), (1, 2), (2, 3), (3, 4)]


# --------------------------------------------------------------------------- #
# DeviceArena
# --------------------------------------------------------------------------- #
class TestDeviceArena:
    def test_ledger_semantics(self):
        arena = DeviceArena("dev0", 100)
        arena.allocate("a", 60)
        assert arena.used_bytes == 60 and arena.free_bytes == 40
        with pytest.raises(ConfigurationError):
            arena.allocate("a", 1)  # duplicate key
        with pytest.raises(MemoryBudgetError):
            arena.allocate("b", 41)  # over budget
        assert arena.release("a") == 60
        with pytest.raises(ConfigurationError):
            arena.release("a")
        assert arena.peak_bytes == 60

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ConfigurationError):
            DeviceArena("dev0", 0)

    def test_bridges_to_cluster_device(self):
        device = Device(GPU_PRESETS["v100-16gb"], name="gpu0")
        arena = DeviceArena.for_device(device, budget_bytes=1000)
        arena.allocate("shard", 600)
        assert device.holds("shard") and device.used_bytes == 600
        arena.release("shard")
        assert not device.holds("shard")
        arena.allocate("again", 10)
        arena.reset()
        assert not device.holds("again") and arena.used_bytes == 0

    def test_budget_cannot_exceed_bridged_device(self):
        device = Device(DeviceSpec("t", memory_bytes=100, flops_per_second=1.0))
        with pytest.raises(ConfigurationError):
            DeviceArena.for_device(device, budget_bytes=101)


# --------------------------------------------------------------------------- #
# HostShardCache
# --------------------------------------------------------------------------- #
class TestHostShardCache:
    def test_round_trip_copies(self):
        cache = HostShardCache()
        source = np.arange(6, dtype=np.float32)
        cache.put(("m", 0), [source])
        source += 100.0  # mutating the original must not corrupt the stash
        (restored,) = cache.take(("m", 0))
        assert np.array_equal(restored, np.arange(6, dtype=np.float32))
        assert not cache.holds(("m", 0))

    def test_take_missing_raises(self):
        with pytest.raises(ConfigurationError):
            HostShardCache().take(("m", 0))

    def test_drop_model(self):
        cache = HostShardCache()
        cache.put(("a", 0), [np.zeros(2)])
        cache.put(("a", 1), [np.zeros(2)])
        cache.put(("b", 0), [np.zeros(2)])
        cache.drop_model("a")
        assert cache.keys() == [("b", 0)]

    def test_memory_limit_requires_spill_dir(self):
        with pytest.raises(ConfigurationError):
            HostShardCache(memory_limit_bytes=10)

    def test_disk_tier_round_trip(self, tmp_path):
        payloads = {
            ("m", i): [np.full(8, i, dtype=np.float32), np.full(4, -i, dtype=np.float32)]
            for i in range(4)
        }
        cache = HostShardCache(memory_limit_bytes=64, spill_dir=tmp_path)
        for key, arrays in payloads.items():
            cache.put(key, arrays)
        # The limit holds ~one entry in DRAM; the rest overflowed to disk.
        assert cache.bytes_in_memory <= 64 or len(cache.keys()) == 1
        assert any(tmp_path.glob("*.npz")), "expected npz archives on disk"
        for key, arrays in payloads.items():
            restored = cache.take(key)
            for dst, src in zip(restored, arrays):
                assert np.array_equal(dst, src)
        assert not any(tmp_path.glob("*.npz")), "taken entries must leave disk"

    def test_disk_stems_do_not_collide_after_sanitisation(self, tmp_path):
        cache = HostShardCache(memory_limit_bytes=8, spill_dir=tmp_path)
        first = np.full(4, 1.0, dtype=np.float32)
        second = np.full(4, 2.0, dtype=np.float32)
        cache.put(("m/1", 0), [first])  # both ids sanitise to "m_1"
        cache.put(("m_1", 0), [second])
        assert np.array_equal(cache.take(("m/1", 0))[0], first)
        assert np.array_equal(cache.take(("m_1", 0))[0], second)

    def test_oversized_single_payload_respects_dram_bound(self, tmp_path):
        cache = HostShardCache(memory_limit_bytes=8, spill_dir=tmp_path)
        big = np.arange(16, dtype=np.float32)  # 64 bytes > the 8-byte limit
        cache.put(("m", 0), [big])
        assert cache.bytes_in_memory == 0, "even the newest entry must overflow"
        assert np.array_equal(cache.take(("m", 0))[0], big)


# --------------------------------------------------------------------------- #
# Eviction policies
# --------------------------------------------------------------------------- #
class TestEvictionPolicies:
    def _records(self, manager_keys):
        from repro.memory import ShardResidency

        return [
            ShardResidency(key=key, device="dev0", nbytes=1, arrays_fn=list, last_use=use)
            for key, use in manager_keys
        ]

    def test_lru_evicts_oldest(self):
        records = self._records([(("m", 0), 5), (("m", 1), 2), (("m", 2), 9)])
        assert LRUEvictionPolicy().choose(records).key == ("m", 1)

    def test_schedule_aware_evicts_furthest_next_hop(self):
        policy = ScheduleAwareEvictionPolicy()
        policy.announce("m", [("m", 0), ("m", 1), ("m", 2)])
        records = self._records([(("m", 0), 1), (("m", 1), 2), (("m", 2), 3)])
        assert policy.choose(records).key == ("m", 2)
        # Accessing shard 2 consumes its hop; with nothing upcoming it
        # becomes the ideal victim.
        policy.announce("m", [("m", 0), ("m", 1)])
        assert policy.choose(records).key == ("m", 2)

    def test_schedule_aware_prefers_between_batch_models(self):
        policy = ScheduleAwareEvictionPolicy()
        policy.announce("busy", [("busy", 0)])
        records = self._records([(("busy", 0), 1), (("idle", 0), 9)])
        assert policy.choose(records).key == ("idle", 0)

    def test_make_policy_unknown_name(self):
        with pytest.raises(ConfigurationError):
            make_eviction_policy("belady-prime")
        assert make_eviction_policy("lru").name == "lru"
        assert make_eviction_policy("schedule-aware").name == "schedule-aware"


# --------------------------------------------------------------------------- #
# SpillManager state machine
# --------------------------------------------------------------------------- #
class TestSpillManager:
    def _manager(self, capacity: int, **kwargs):
        return SpillManager([DeviceArena("dev0", capacity)], **kwargs)

    def test_acquire_charges_and_evicts_under_pressure(self):
        a = np.zeros(4, dtype=np.float32)
        b = np.ones(4, dtype=np.float32)
        manager = self._manager(capacity=16, scrub_evicted=True)
        manager.register(("m", 0), "dev0", 16, lambda: [a])
        manager.register(("m", 1), "dev0", 16, lambda: [b])
        with manager.lease(("m", 0)):
            assert manager.residency(("m", 0)) is ResidencyState.RESIDENT
        manager.acquire(("m", 1))  # pressure: evicts shard 0
        manager.release(("m", 1))
        assert manager.residency(("m", 0)) is ResidencyState.EVICTED
        assert np.isnan(a).all(), "scrub must poison evicted arrays"
        with manager.lease(("m", 0)):
            assert np.array_equal(a, np.zeros(4, dtype=np.float32)), (
                "restore must put the exact bytes back"
            )
        assert manager.stats.evictions >= 1
        assert manager.stats.bytes_evicted >= 16

    def test_pinned_shards_are_never_evicted(self):
        a, b = np.zeros(2), np.zeros(2)
        manager = self._manager(capacity=8, acquire_timeout_seconds=0.2)
        manager.register(("m", 0), "dev0", 8, lambda: [a])
        manager.register(("m", 1), "dev0", 8, lambda: [b])
        manager.acquire(("m", 0))
        with pytest.raises(MemoryBudgetError):
            manager.acquire(("m", 1))  # only candidate is pinned -> timeout
        manager.release(("m", 0))
        with manager.lease(("m", 1)):
            pass

    def test_shard_larger_than_arena_rejected(self):
        manager = self._manager(capacity=8)
        manager.register(("m", 0), "dev0", 9, lambda: [])
        with pytest.raises(MemoryBudgetError):
            manager.acquire(("m", 0))

    def test_release_without_acquire_rejected(self):
        manager = self._manager(capacity=8)
        manager.register(("m", 0), "dev0", 4, lambda: [])
        with pytest.raises(ConfigurationError):
            manager.release(("m", 0))

    def test_unregistered_key_rejected(self):
        with pytest.raises(ConfigurationError):
            self._manager(capacity=8).acquire(("ghost", 0))

    def test_prefetch_overlaps_and_acquire_joins(self):
        a = np.arange(4, dtype=np.float32)
        prefetcher = Prefetcher(depth=1)
        manager = self._manager(capacity=64, prefetcher=prefetcher, scrub_evicted=True)
        manager.register(("m", 0), "dev0", 16, lambda: [a])
        with manager.lease(("m", 0)):
            pass
        manager.evict(("m", 0))
        assert np.isnan(a).all()
        assert manager.prefetch(("m", 0)) is True
        with manager.lease(("m", 0)):  # joins the in-flight prefetch
            assert np.array_equal(a, np.arange(4, dtype=np.float32))
        assert manager.stats.prefetches_completed == 1
        assert manager.prefetch(("m", 0)) is False  # already resident
        prefetcher.close()

    def test_failed_prefetch_preserves_payload_and_surfaces(self):
        a = np.arange(4, dtype=np.float32)
        prefetcher = Prefetcher(depth=1)
        manager = self._manager(
            capacity=64, prefetcher=prefetcher, scrub_evicted=True,
            acquire_timeout_seconds=5.0,
        )
        manager.register(("m", 0), "dev0", 16, lambda: [a])
        with manager.lease(("m", 0)):
            pass
        manager.evict(("m", 0))
        # Break the live-array view so the async restore fails mid-flight.
        manager.register(("m", 0), "dev0", 16, lambda: [a, a])
        assert manager.prefetch(("m", 0)) is True
        with pytest.raises(ConfigurationError):
            manager.acquire(("m", 0))  # surfaces the prefetch failure
        # The canonical payload survived the failure: repair and restore.
        manager.register(("m", 0), "dev0", 16, lambda: [a])
        with manager.lease(("m", 0)):
            assert np.array_equal(a, np.arange(4, dtype=np.float32))
        prefetcher.close()

    def test_close_shuts_down_owned_prefetcher(self):
        manager = self._manager(capacity=64, prefetcher=Prefetcher(depth=1))
        manager.close()
        manager.close()  # idempotent

    def test_forget_restores_evicted_values(self):
        a = np.arange(4, dtype=np.float32)
        manager = self._manager(capacity=16, scrub_evicted=True)
        manager.register(("m", 0), "dev0", 16, lambda: [a])
        with manager.lease(("m", 0)):
            pass
        manager.evict(("m", 0))
        assert np.isnan(a).all()
        manager.forget_model("m")
        assert np.array_equal(a, np.arange(4, dtype=np.float32))
        assert manager.registered() == []

    def test_reregistration_moves_device(self):
        a = np.zeros(2)
        arenas = [DeviceArena("dev0", 64), DeviceArena("dev1", 64)]
        manager = SpillManager(arenas)
        manager.register(("m", 0), "dev0", 8, lambda: [a])
        with manager.lease(("m", 0)):
            pass
        assert arenas[0].used_bytes == 8
        manager.register(("m", 0), "dev1", 8, lambda: [a])
        assert arenas[0].used_bytes == 0
        with manager.lease(("m", 0)):
            assert arenas[1].used_bytes == 8


# --------------------------------------------------------------------------- #
# Spilled execution is bit-identical to resident execution
# --------------------------------------------------------------------------- #
class TestSpilledExecutorExactness:
    @pytest.mark.parametrize("policy", ["lru", "schedule-aware"])
    def test_losses_and_params_match_resident_run(self, policy):
        resident_model = small_mlp()
        resident_opt = Adam(resident_model.parameters(), lr=1e-2)
        resident_exec = ShardedModelExecutor(resident_model, BOUNDARIES)
        resident_losses = train_epochs(resident_exec, mlp_loader(), resident_opt)

        spilled_model = small_mlp()
        spilled_opt = Adam(spilled_model.parameters(), lr=1e-2)
        spilled_exec = ShardedModelExecutor(spilled_model, BOUNDARIES)
        budget = int(shard_nbytes(spilled_exec, 0, spilled_opt) * 1.5)
        manager = SpillManager(
            [DeviceArena("dev0", budget)],
            policy=policy,
            prefetcher=Prefetcher(),
            scrub_evicted=True,
        )
        spilled_exec.bind_memory(manager, spilled_opt)
        spilled_losses = train_epochs(spilled_exec, mlp_loader(), spilled_opt)

        assert manager.stats.evictions > 0, "budget was not tight enough to spill"
        assert np.array_equal(resident_losses, spilled_losses)
        manager.forget_model(spilled_model.model_name)
        for (_, p_resident), (_, p_spilled) in zip(
            resident_model.named_parameters(), spilled_model.named_parameters()
        ):
            assert np.array_equal(p_resident.data, p_spilled.data)

    def test_sgd_spilled_matches_resident(self):
        resident_model = small_mlp()
        resident_opt = SGD(resident_model.parameters(), lr=1e-2, momentum=0.9)
        resident_losses = train_epochs(
            ShardedModelExecutor(resident_model, BOUNDARIES), mlp_loader(), resident_opt
        )
        spilled_model = small_mlp()
        spilled_opt = SGD(spilled_model.parameters(), lr=1e-2, momentum=0.9)
        spilled_exec = ShardedModelExecutor(spilled_model, BOUNDARIES)
        manager = SpillManager(
            [DeviceArena("dev0", int(shard_nbytes(spilled_exec, 0, spilled_opt) * 1.5))],
            scrub_evicted=True,
        )
        spilled_exec.bind_memory(manager, spilled_opt)
        assert np.array_equal(
            resident_losses, train_epochs(spilled_exec, mlp_loader(), spilled_opt)
        )

    def test_train_step_rejects_foreign_optimizer(self):
        model = small_mlp()
        optimizer = Adam(model.parameters(), lr=1e-2)
        executor = ShardedModelExecutor(model, BOUNDARIES)
        manager = SpillManager([DeviceArena("dev0", 1 << 20)])
        executor.bind_memory(manager, optimizer)
        other = Adam(model.parameters(), lr=1e-2)
        with pytest.raises(ConfigurationError):
            executor.train_step(next(iter(mlp_loader())), other)


# --------------------------------------------------------------------------- #
# Acceptance: over-memory models train to completion, bit-identically
# --------------------------------------------------------------------------- #
class TestOverMemoryTraining:
    def test_model_larger_than_every_device_budget(self):
        """Resident bytes exceed each device's budget; training still bit-matches."""
        def build():
            model = uniform_mlp(seed=9, width=32)
            return model, Adam(model.parameters(), lr=5e-3), mlp_loader(
                features=32, classes=32
            )

        # Fully-resident reference on an unconstrained trainer.
        model_ref, opt_ref, loader_ref = build()
        trainer_ref = ShardParallelTrainer(num_devices=2)
        trainer_ref.add_model(model_ref, opt_ref, loader_ref, BOUNDARIES, model_id="big")
        reports_ref = trainer_ref.fit(num_epochs=2)

        # Spilled run: per-device budget below the model's per-device share.
        model, optimizer, loader = build()
        probe = ShardedModelExecutor(model, BOUNDARIES)
        per_shard = max(shard_nbytes(probe, s, optimizer) for s in range(4))
        budget = int(per_shard * 1.5)  # holds 1 shard (+ prefetch slack), not 2
        total_resident = sum(shard_nbytes(probe, s, optimizer) for s in range(4))
        assert total_resident > budget, "model must exceed every device budget"
        for device in range(2):  # each device's own share must overflow too
            share = sum(shard_nbytes(probe, s, optimizer) for s in range(device, 4, 2))
            assert share > budget
        manager = SpillManager(
            [DeviceArena("dev0", budget), DeviceArena("dev1", budget)],
            policy="schedule-aware",
            prefetcher=Prefetcher(),
            scrub_evicted=True,
        )
        trainer = ShardParallelTrainer(num_devices=2, memory_manager=manager)
        trainer.add_model(model, optimizer, loader, BOUNDARIES, model_id="big")
        reports = trainer.fit(num_epochs=2)

        assert manager.stats.evictions > 0
        ref_losses = [epoch["loss"] for epoch in reports_ref["big"].epochs]
        spl_losses = [epoch["loss"] for epoch in reports["big"].epochs]
        assert np.array_equal(np.asarray(ref_losses), np.asarray(spl_losses))
        for arena in manager.arenas.values():
            assert arena.peak_bytes <= arena.capacity_bytes

    def test_more_models_than_aggregate_budget(self):
        """Three models share arenas that cannot hold even one of them."""
        def build(seed):
            model = small_mlp(seed=seed)
            return model, Adam(model.parameters(), lr=1e-2), mlp_loader()

        def run(memory_manager):
            trainer = ShardParallelTrainer(num_devices=2, memory_manager=memory_manager)
            for index in range(3):
                model, optimizer, loader = build(seed=20 + index)
                trainer.add_model(model, optimizer, loader, BOUNDARIES, model_id=f"m{index}")
            reports = trainer.fit(num_epochs=1)
            return {
                model_id: [epoch["loss"] for epoch in report.epochs]
                for model_id, report in reports.items()
            }

        reference = run(None)
        probe_model, probe_opt, _ = build(seed=20)
        probe = ShardedModelExecutor(probe_model, BOUNDARIES)
        budget = int(max(shard_nbytes(probe, s, probe_opt) for s in range(4)) * 1.6)
        manager = SpillManager(
            [DeviceArena("dev0", budget), DeviceArena("dev1", budget)],
            policy="schedule-aware",
            scrub_evicted=True,
        )
        spilled = run(manager)
        assert manager.stats.evictions > 0
        assert reference.keys() == spilled.keys()
        for model_id in reference:
            assert np.array_equal(
                np.asarray(reference[model_id]), np.asarray(spilled[model_id])
            )


# --------------------------------------------------------------------------- #
# Spilling under the concurrent runtime (workers=1 vs workers=4)
# --------------------------------------------------------------------------- #
class TestSpillUnderConcurrentBackend:
    def _experiment(self):
        data = make_classification(
            num_samples=96, num_features=16, num_classes=4,
            rng=np.random.default_rng(5),
        )

        def build(trial):
            width = int(trial.get("width"))
            model = small_mlp(seed=1, width=width)
            return (
                model,
                Adam(model.parameters(), lr=float(trial.get("lr"))),
                DataLoader(data, batch_size=16, shuffle=True, seed=0),
            )

        space = SearchSpace({"width": [16, 24], "lr": [1e-2, 1e-3]})
        experiment = Experiment(
            space=space, searcher="grid", objective="loss",
            budget=Budget(epochs_per_trial=2),
        )
        return experiment, build

    def test_identical_rankings_and_losses_across_worker_counts(self):
        experiment, build = self._experiment()
        tight = 48 * 1024  # a fraction of what four trials' shards need

        unconstrained = experiment.run(
            backend=ShardParallelBackend(builder=build, num_devices=2)
        )
        serial_backend = ShardParallelBackend(
            builder=build, num_devices=2, memory_budget=tight
        )
        serial = experiment.run(backend=serial_backend, workers=1)
        pooled_backend = ShardParallelBackend(
            builder=build, num_devices=2, memory_budget=tight
        )
        pooled = experiment.run(backend=pooled_backend, workers=4)

        def ranking(result):
            return [trial.trial_id for trial in result.ranked()]

        def losses(result):
            return {t.trial_id: t.metric("loss") for t in result.ranked()}

        assert ranking(serial) == ranking(pooled) == ranking(unconstrained)
        assert losses(serial) == losses(pooled) == losses(unconstrained)
        for backend in (serial_backend, pooled_backend):
            total = backend.memory.stats.demand_fetches + backend.memory.stats.prefetches_issued
            assert total > 0, "the tight budget must actually exercise the manager"
            assert backend.memory.registered() == [], "teardown must forget trials"
            for arena in backend.memory.arenas.values():
                assert arena.used_bytes == 0
                assert arena.peak_bytes <= arena.capacity_bytes

    def test_run_memory_budget_on_unsupported_backend(self):
        experiment, _ = self._experiment()
        backend = FunctionBackend(lambda trial, epochs: {"loss": 0.0})
        with pytest.raises(ConfigurationError):
            experiment.run(backend=backend, memory_budget=1 << 20)

    def test_run_memory_budget_wraps_shard_parallel(self):
        experiment, build = self._experiment()
        plain = experiment.run(backend=ShardParallelBackend(builder=build, num_devices=2))
        budgeted = experiment.run(
            backend=ShardParallelBackend(builder=build, num_devices=2),
            memory_budget=48 * 1024,
        )
        assert [t.trial_id for t in plain.ranked()] == [
            t.trial_id for t in budgeted.ranked()
        ]
        assert {t.trial_id: t.metric("loss") for t in plain.ranked()} == {
            t.trial_id: t.metric("loss") for t in budgeted.ranked()
        }


# --------------------------------------------------------------------------- #
# Spill-aware scheduling on the simulator
# --------------------------------------------------------------------------- #
def over_memory_cluster_and_job(num_devices: int = 2):
    """A job whose resident bytes exceed every device (activations small).

    The model's blocks are uniform (square hidden layers), so each of the 4
    shards has the same resident footprint and a device sized for ~1.7
    shards cannot hold its round-robin share of 2 — spilling is forced on
    every device.
    """
    profile = FeedForwardConfig(
        input_dim=128, hidden_dims=(128, 128, 128), num_classes=128
    ).profile()
    plan = make_plan("big", profile, batch_size=2, num_shards=4)
    worst_resident = max(shard.resident_bytes for shard in plan.shards)
    activation_total = sum(shard.activation_bytes for shard in plan.shards)
    spec = DeviceSpec(
        "tiny-gpu",
        memory_bytes=int(worst_resident * 1.7 + activation_total),
        flops_per_second=14e12,
    )
    cluster = Cluster.single_server(num_devices, gpu=spec)
    job = TrainingJob("big", plan, num_epochs=1, batches_per_epoch=2, samples_per_batch=2)
    total_resident = sum(shard.resident_bytes for shard in plan.shards)
    assert total_resident > spec.memory_bytes
    return cluster, job


class TestSpillAwarePlacement:
    def test_admits_over_memory_job(self):
        cluster, job = over_memory_cluster_and_job()
        plan = spill_aware_placement([job], cluster, charge_memory=False)
        assert plan.num_spilled > 0
        assert len(plan.placement) == job.num_shards

    def test_fitting_workload_spills_nothing(self, four_gpu_cluster):
        profile = FeedForwardConfig.paper_1_2m().profile()
        job = TrainingJob(
            "fits", make_plan("fits", profile, batch_size=16, num_shards=4)
        )
        plan = spill_aware_placement([job], four_gpu_cluster, charge_memory=False)
        assert plan.num_spilled == 0

    def test_rejects_truly_impossible_shard(self):
        profile = FeedForwardConfig.paper_1_2m().profile()
        plan = make_plan("huge", profile, batch_size=2, num_shards=4)
        worst = max(shard.resident_bytes for shard in plan.shards)
        cluster = Cluster.single_server(
            1, gpu=DeviceSpec("nano", memory_bytes=int(worst // 2), flops_per_second=1e12)
        )
        job = TrainingJob("huge", plan)
        with pytest.raises(SchedulingError):
            spill_aware_placement([job], cluster, charge_memory=False)

    def test_plan_waves_error_names_shard_and_suggests_spilling(self):
        cluster, job = over_memory_cluster_and_job()
        with pytest.raises(SchedulingError) as excinfo:
            plan_waves([job], cluster)
        message = str(excinfo.value)
        assert "'big'" in message
        assert "shard" in message
        assert "spill_aware_placement" in message
        assert "spilled-shard-parallel" in message


class TestSpilledShardParallelStrategy:
    def test_over_memory_job_runs_with_overlapped_transfers(self):
        cluster, job = over_memory_cluster_and_job()
        result = SpilledShardParallelStrategy().schedule([job], cluster)
        assert result.makespan > 0
        assert len(result.spilled_shards) > 0
        assert result.summary()["spilled_shards"] == len(result.spilled_shards)

        spilled_batches = len(result.spilled_shards) * job.total_batches
        fetches = result.trace.records_for(kind="spill-fetch")
        writebacks = result.trace.records_for(kind="spill-writeback")
        assert len(fetches) == 2 * spilled_batches  # one per forward, one per backward
        assert len(writebacks) == spilled_batches  # one per update

        # Transfers run on the host lane and appear in utilization accounting.
        assert all(record.device == "host" for record in fetches + writebacks)
        assert result.trace.busy_seconds("host") > 0
        assert "host" in result.trace.device_names
        assert result.trace.transfer_seconds("host") > 0
        assert result.trace.summary()["transfer_seconds"] >= (
            result.trace.transfer_seconds("host")
        )
        per_model = result.per_model_metrics()["big"]
        compute_only = sum(
            record.duration
            for record in result.trace.records
            if record.device != "host" and record.tags.get("model") == "big"
        )
        assert per_model["busy_seconds"] > compute_only  # includes transfer time

        # Overlap: some transfer interval intersects device compute.
        compute = [r for r in result.trace.records if r.device != "host"]
        assert any(
            fetch.start < task.end and task.start < fetch.end
            for fetch in fetches
            for task in compute
        ), "spill transfers must overlap compute, not serialise behind it"

        # Device peaks stay within capacity (the simulator enforces the
        # ledger, so completing at all proves admission was sound).
        for device in cluster.devices:
            assert result.trace.peak_memory_bytes[device.name] <= device.spec.memory_bytes

    def test_fitting_workload_matches_shard_parallel_memory_behaviour(self, four_gpu_cluster):
        profile = FeedForwardConfig.paper_1_2m().profile()
        jobs = [
            TrainingJob(f"m{i}", make_plan(f"m{i}", profile, batch_size=16, num_shards=4))
            for i in range(2)
        ]
        result = SpilledShardParallelStrategy().schedule(jobs, four_gpu_cluster)
        assert result.spilled_shards == []
        assert not result.trace.records_for(kind="spill-fetch")
        baseline = ShardParallelStrategy().schedule(jobs, four_gpu_cluster)
        assert result.makespan == pytest.approx(baseline.makespan, rel=0.25)

    def test_available_via_hydra_session(self):
        from repro.hydra import HydraSession

        assert "spilled-shard-parallel" in HydraSession().available_strategies()


# --------------------------------------------------------------------------- #
# Checkpointing the full training state (params + optimizer)
# --------------------------------------------------------------------------- #
class TestCheckpointOptimizerState:
    @staticmethod
    def _batches(count):
        loader = mlp_loader(batch_size=16)
        loader.set_epoch(0)  # iteration advances the epoch; pin it per pass
        iterator = iter(loader)
        return [next(iterator) for _ in range(count)]

    @staticmethod
    def _train_on(model, optimizer, batches):
        for batch in batches:
            loss = model.loss_on_batch(batch)
            model.zero_grad()
            loss.backward()
            optimizer.step()

    def test_resume_is_bit_identical(self, tmp_path):
        batches = self._batches(4)

        reference = small_mlp(seed=4)
        reference_opt = Adam(reference.parameters(), lr=1e-2)
        self._train_on(reference, reference_opt, batches)

        # Same run, but checkpointed after 2 steps and resumed elsewhere.
        first = small_mlp(seed=4)
        first_opt = Adam(first.parameters(), lr=1e-2)
        self._train_on(first, first_opt, batches[:2])
        path = save_checkpoint(first, tmp_path / "mid.npz", optimizer=first_opt)

        resumed = small_mlp(seed=99)  # different init — must be overwritten
        resumed_opt = Adam(resumed.parameters(), lr=1e-2)
        load_checkpoint(resumed, path, optimizer=resumed_opt)
        assert resumed_opt.step_count == 2
        self._train_on(resumed, resumed_opt, batches[2:])

        for (_, p_ref), (_, p_res) in zip(
            reference.named_parameters(), resumed.named_parameters()
        ):
            assert np.array_equal(p_ref.data, p_res.data)

    def test_load_without_saved_optimizer_state_raises(self, tmp_path):
        model = small_mlp()
        path = save_checkpoint(model, tmp_path / "params-only.npz")
        optimizer = Adam(model.parameters(), lr=1e-2)
        with pytest.raises(CheckpointError):
            load_checkpoint(model, path, optimizer=optimizer)

    def test_params_only_round_trip_still_works(self, tmp_path):
        model = small_mlp()
        path = save_checkpoint(model, tmp_path / "plain.npz", metadata={"epoch": 3})
        other = small_mlp(seed=42)
        metadata = load_checkpoint(other, path)
        assert int(metadata["epoch"]) == 3
        for (_, a), (_, b) in zip(model.named_parameters(), other.named_parameters()):
            assert np.array_equal(a.data, b.data)

    def test_failed_optimizer_load_leaves_model_untouched(self, tmp_path):
        from repro.training.checkpoint import load_array_bundle, save_array_bundle

        source = small_mlp(seed=4)
        optimizer = Adam(source.parameters(), lr=1e-2)
        path = save_checkpoint(source, tmp_path / "ok.npz", optimizer=optimizer)
        bundle = load_array_bundle(path)
        name = next(name for name, _ in source.named_parameters())
        bundle[f"opt::{name}::m"] = np.zeros(3, dtype=np.float32)  # wrong shape
        path = save_array_bundle(tmp_path / "corrupt.npz", bundle)

        target = small_mlp(seed=99)
        before = {n: p.data.copy() for n, p in target.named_parameters()}
        target_opt = Adam(target.parameters(), lr=1e-2)
        with pytest.raises(CheckpointError):
            load_checkpoint(target, path, optimizer=target_opt)
        # No torn restore: neither the params nor the optimizer changed.
        for n, p in target.named_parameters():
            assert np.array_equal(p.data, before[n])
        assert target_opt.step_count == 0

    def test_optimizer_with_foreign_parameter_rejected(self, tmp_path):
        model = small_mlp()
        stray = small_mlp(seed=8)
        optimizer = Adam(stray.parameters(), lr=1e-2)
        with pytest.raises(CheckpointError):
            save_checkpoint(model, tmp_path / "bad.npz", optimizer=optimizer)
