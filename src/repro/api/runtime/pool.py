"""Worker pools: the execution substrate of the concurrent runtime.

A :class:`WorkerPool` is a thin, uniform veneer over
:mod:`concurrent.futures` executors: ``submit`` a callable, get a
:class:`~concurrent.futures.Future` back.  Three implementations cover the
practical spectrum:

* :class:`SerialWorkerPool` — runs the callable inline and returns an
  already-completed future.  Zero threads, zero nondeterminism; the
  ``workers=1`` baseline and the pool used to debug scheduling issues.
* :class:`ThreadWorkerPool` — a :class:`~concurrent.futures.ThreadPoolExecutor`.
  The default for trial execution: the numpy engine releases the GIL inside
  large array ops, and simulated / I/O-bound trials overlap perfectly.
* :class:`ProcessWorkerPool` — a :class:`~concurrent.futures.ProcessPoolExecutor`
  for CPU-bound, *picklable* work.  Trial handles that hold live models are
  generally not picklable, so this pool suits pure-function workloads
  (surrogate objectives, cost-model evaluations) rather than engine
  backends.

Pools are context managers; :func:`make_pool` is the one-stop factory the
rest of the runtime uses.

Example::

    from repro.api.runtime import make_pool

    with make_pool(4) as pool:
        futures = [pool.submit(job, index) for index in range(8)]
        results = [future.result() for future in futures]

This module deliberately imports nothing from the rest of ``repro.api`` so
lower layers (e.g. the Cerebro hopper) can accept a pool without creating
an import cycle.
"""

from __future__ import annotations

from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Any, Callable

from repro.exceptions import ConfigurationError


class WorkerPool:
    """Protocol every pool implements: ``submit`` work, ``shutdown`` when done.

    Subclasses set :attr:`size` (the number of concurrent slots) and
    implement :meth:`submit`.  Pools are reusable across cohorts and
    experiments; shut them down once, at the end of their life.

    Example::

        pool = ThreadWorkerPool(2)
        try:
            future = pool.submit(sum, [1, 2, 3])
            assert future.result() == 6
        finally:
            pool.shutdown()

    Raises:
        ConfigurationError: from concrete constructors, when ``size`` is not
            positive.
    """

    #: number of tasks the pool runs concurrently
    size: int = 1

    #: short name used in reports and error messages
    kind: str = "pool"

    def submit(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Future:
        """Schedule ``fn(*args, **kwargs)`` and return its future."""
        raise NotImplementedError

    def shutdown(self, wait: bool = True) -> None:
        """Release the pool's workers; no further ``submit`` calls allowed."""

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(size={self.size})"


class SerialWorkerPool(WorkerPool):
    """Runs every task inline, in submission order, on the caller's thread.

    ``submit`` executes the callable immediately and returns a future that
    is already resolved (or already carries the exception).  Useful as the
    deterministic ``workers=1`` degenerate case and in tests: concurrency
    machinery runs unchanged, with no actual concurrency.

    Example::

        pool = SerialWorkerPool()
        assert pool.submit(len, "abc").result() == 3
    """

    size = 1
    kind = "serial"

    def submit(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Future:
        """Run ``fn`` now; the returned future is already completed."""
        future: Future = Future()
        try:
            future.set_result(fn(*args, **kwargs))
        except BaseException as error:  # noqa: BLE001 - mirrored into the future
            future.set_exception(error)
        return future


class _ExecutorPool(WorkerPool):
    """Shared shape for pools backed by a ``concurrent.futures`` executor."""

    def __init__(self, size: int):
        if size <= 0:
            raise ConfigurationError(f"pool size must be positive, got {size}")
        self.size = int(size)
        self._executor = self._make_executor()

    def _make_executor(self):
        raise NotImplementedError

    def submit(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Future:
        """Schedule ``fn`` on the executor and return its future."""
        return self._executor.submit(fn, *args, **kwargs)

    def shutdown(self, wait: bool = True) -> None:
        """Shut the executor down; pending tasks finish when ``wait`` is True."""
        self._executor.shutdown(wait=wait)


class ThreadWorkerPool(_ExecutorPool):
    """A thread-backed pool — the default trial-execution substrate.

    Threads share the interpreter, so live models and loaders need no
    pickling, and the numpy engine's large array ops release the GIL.

    Example::

        with ThreadWorkerPool(4) as pool:
            assert pool.submit(max, 1, 2).result() == 2

    Raises:
        ConfigurationError: if ``size`` is not positive.
    """

    kind = "thread"

    def _make_executor(self) -> ThreadPoolExecutor:
        return ThreadPoolExecutor(max_workers=self.size, thread_name_prefix="repro-worker")


class ProcessWorkerPool(_ExecutorPool):
    """A process-backed pool for CPU-bound, picklable workloads.

    Each task (callable, arguments, and result) must pickle.  Engine-backend
    trial handles hold live models and usually do not — use this pool for
    function backends whose train functions are module-level callables.

    Example::

        with ProcessWorkerPool(2) as pool:
            assert pool.submit(abs, -3).result() == 3

    Raises:
        ConfigurationError: if ``size`` is not positive.
    """

    kind = "process"

    def _make_executor(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(max_workers=self.size)


_POOL_KINDS = {
    "serial": SerialWorkerPool,
    "thread": ThreadWorkerPool,
    "process": ProcessWorkerPool,
}


def make_pool(workers: int = 1, kind: str = "thread") -> WorkerPool:
    """Build a pool with ``workers`` slots.

    ``workers=1`` always returns a :class:`SerialWorkerPool` (whatever
    ``kind`` says): one slot admits no concurrency, and inline execution is
    strictly more deterministic.

    Example::

        assert make_pool(1).kind == "serial"
        assert make_pool(4).kind == "thread"
        assert make_pool(2, kind="process").kind == "process"

    Raises:
        ConfigurationError: if ``workers`` is not positive or ``kind`` is
            unknown.
    """
    if workers <= 0:
        raise ConfigurationError(f"workers must be positive, got {workers}")
    if kind not in _POOL_KINDS:
        raise ConfigurationError(
            f"unknown pool kind {kind!r}; available: {sorted(_POOL_KINDS)}"
        )
    if workers == 1:
        return SerialWorkerPool()
    return _POOL_KINDS[kind](workers)
