"""Tests for datasets, loaders, synthetic generators, and partitioning."""

import numpy as np
import pytest

from repro.data import (
    ArrayDataset,
    DataLoader,
    Subset,
    SyntheticSpanDataset,
    make_classification,
    make_regression,
    make_span_extraction,
    make_xor,
    partition_dataset,
)
from repro.data.text import CLS_TOKEN, SEP_TOKEN


class TestArrayDataset:
    def test_basic_indexing(self):
        ds = ArrayDataset(features=np.arange(10).reshape(5, 2), label=np.arange(5))
        assert len(ds) == 5
        assert np.array_equal(ds[2]["features"], [4, 5])
        assert ds[2]["label"] == 2

    def test_requires_equal_lengths(self):
        with pytest.raises(ValueError):
            ArrayDataset(a=np.zeros(3), b=np.zeros(4))

    def test_requires_at_least_one_array(self):
        with pytest.raises(ValueError):
            ArrayDataset()

    def test_out_of_range(self):
        ds = ArrayDataset(x=np.zeros(3))
        with pytest.raises(IndexError):
            ds[3]

    def test_fields(self):
        ds = ArrayDataset(features=np.zeros(2), label=np.zeros(2))
        assert ds.fields() == ["features", "label"]


class TestSubset:
    def test_view_semantics(self):
        ds = ArrayDataset(x=np.arange(10))
        sub = Subset(ds, [9, 0, 5])
        assert len(sub) == 3
        assert sub[0]["x"] == 9

    def test_rejects_bad_indices(self):
        ds = ArrayDataset(x=np.arange(3))
        with pytest.raises(IndexError):
            Subset(ds, [3])


class TestDataLoader:
    def test_batch_shapes_and_count(self):
        ds = make_classification(num_samples=50, num_features=8, num_classes=3,
                                 rng=np.random.default_rng(0))
        loader = DataLoader(ds, batch_size=16)
        batches = list(loader)
        assert len(loader) == 4
        assert len(batches) == 4
        assert batches[0]["features"].shape == (16, 8)
        assert batches[-1]["features"].shape == (2, 8)

    def test_drop_last(self):
        ds = make_classification(num_samples=50, rng=np.random.default_rng(0))
        loader = DataLoader(ds, batch_size=16, drop_last=True)
        assert len(loader) == 3
        assert all(batch.size == 16 for batch in loader)

    def test_invalid_batch_size(self):
        ds = make_classification(num_samples=8, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            DataLoader(ds, batch_size=0)

    def test_shuffle_is_reproducible_given_seed_and_epoch(self):
        ds = ArrayDataset(x=np.arange(32))
        loader_a = DataLoader(ds, batch_size=8, shuffle=True, seed=3)
        loader_b = DataLoader(ds, batch_size=8, shuffle=True, seed=3)
        batches_a = [batch["x"].tolist() for batch in loader_a]
        batches_b = [batch["x"].tolist() for batch in loader_b]
        assert batches_a == batches_b

    def test_shuffle_differs_across_epochs(self):
        ds = ArrayDataset(x=np.arange(64))
        loader = DataLoader(ds, batch_size=64, shuffle=True, seed=0)
        epoch0 = next(iter(loader))["x"].tolist()
        epoch1 = next(iter(loader))["x"].tolist()
        assert epoch0 != epoch1
        loader.set_epoch(0)
        assert next(iter(loader))["x"].tolist() == epoch0

    def test_no_shuffle_preserves_order(self):
        ds = ArrayDataset(x=np.arange(10))
        loader = DataLoader(ds, batch_size=4, shuffle=False)
        flat = [value for batch in loader for value in batch["x"]]
        assert flat == list(range(10))

    def test_batch_container_api(self):
        ds = make_classification(num_samples=8, rng=np.random.default_rng(0))
        batch = next(iter(DataLoader(ds, batch_size=8)))
        assert "features" in batch
        assert "missing" not in batch
        assert set(batch.keys()) == {"features", "label"}
        assert batch.size == 8


class TestSyntheticTabular:
    def test_classification_shapes_and_labels(self):
        ds = make_classification(num_samples=40, num_features=6, num_classes=5,
                                 rng=np.random.default_rng(0))
        labels = {int(ds[i]["label"]) for i in range(len(ds))}
        assert labels <= set(range(5))
        assert ds[0]["features"].shape == (6,)
        assert ds[0]["features"].dtype == np.float32

    def test_classification_is_learnable_structure(self):
        # With large separation and tiny noise, nearest-centroid is near-perfect,
        # so the generated clusters really carry label signal.
        rng = np.random.default_rng(0)
        ds = make_classification(num_samples=200, num_features=8, num_classes=4,
                                 class_separation=5.0, noise=0.1, rng=rng)
        features = np.stack([ds[i]["features"] for i in range(len(ds))])
        labels = np.array([ds[i]["label"] for i in range(len(ds))])
        centroids = np.stack([features[labels == c].mean(axis=0) for c in range(4)])
        predicted = np.argmin(
            ((features[:, None, :] - centroids[None]) ** 2).sum(axis=-1), axis=1
        )
        assert (predicted == labels).mean() > 0.95

    def test_regression_shapes(self):
        ds = make_regression(num_samples=30, num_features=4, rng=np.random.default_rng(0))
        assert ds[0]["target"].shape == (1,)

    def test_xor_labels(self):
        ds = make_xor(num_samples=64, rng=np.random.default_rng(0))
        labels = {int(ds[i]["label"]) for i in range(len(ds))}
        assert labels == {0, 1}

    def test_reproducible_with_same_rng_seed(self):
        a = make_classification(num_samples=10, rng=np.random.default_rng(5))
        b = make_classification(num_samples=10, rng=np.random.default_rng(5))
        assert np.array_equal(a[0]["features"], b[0]["features"])


class TestSyntheticSpans:
    def test_fields_and_shapes(self):
        ds = SyntheticSpanDataset(num_samples=10, seq_len=32, vocab_size=50,
                                  rng=np.random.default_rng(0))
        example = ds[0]
        assert example["input_ids"].shape == (32,)
        assert example["attention_mask"].shape == (32,)
        assert 0 <= example["start_position"] <= example["end_position"] < 32

    def test_special_token_layout(self):
        ds = SyntheticSpanDataset(num_samples=5, seq_len=24, vocab_size=40,
                                  rng=np.random.default_rng(1))
        for i in range(len(ds)):
            tokens = ds[i]["input_ids"]
            assert tokens[0] == CLS_TOKEN
            assert tokens[-1] == SEP_TOKEN
            assert (tokens == SEP_TOKEN).sum() >= 2

    def test_answer_span_holds_query_token(self):
        ds = SyntheticSpanDataset(num_samples=20, seq_len=40, vocab_size=64,
                                  rng=np.random.default_rng(2))
        for i in range(len(ds)):
            example = ds[i]
            tokens = example["input_ids"]
            query = tokens[1]
            span = tokens[int(example["start_position"]):int(example["end_position"]) + 1]
            assert np.all(span == query)
            # The query token appears in the context only inside the answer span.
            context_positions = np.where(tokens == query)[0]
            context_positions = context_positions[context_positions >= int(example["start_position"]) - 0]
            assert len(span) >= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            SyntheticSpanDataset(vocab_size=3)
        with pytest.raises(ValueError):
            SyntheticSpanDataset(seq_len=4)

    def test_factory_helper(self):
        ds = make_span_extraction(num_samples=4, seq_len=16, vocab_size=32,
                                  rng=np.random.default_rng(0))
        assert len(ds) == 4


class TestPartitioning:
    def test_partitions_cover_dataset_disjointly(self):
        ds = ArrayDataset(x=np.arange(23))
        parts = partition_dataset(ds, 4, shuffle=True, seed=0)
        sizes = [len(p) for p in parts]
        assert sum(sizes) == 23
        assert max(sizes) - min(sizes) <= 1
        seen = sorted(int(p[i]["x"]) for p in parts for i in range(len(p)))
        assert seen == list(range(23))

    def test_no_shuffle_keeps_contiguous_blocks(self):
        ds = ArrayDataset(x=np.arange(10))
        parts = partition_dataset(ds, 2, shuffle=False)
        assert [parts[0][i]["x"] for i in range(5)] == list(range(5))

    def test_validation(self):
        ds = ArrayDataset(x=np.arange(3))
        with pytest.raises(ValueError):
            partition_dataset(ds, 0)
        with pytest.raises(ValueError):
            partition_dataset(ds, 5)
