"""Random search over a hyper-parameter space."""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.selection.experiment import ExperimentTracker, SelectionResult, TrialConfig
from repro.selection.grid_search import TrainFn
from repro.selection.search_space import SearchSpace


def random_search(
    search_space: SearchSpace,
    train_fn: TrainFn,
    num_trials: int = 16,
    num_epochs: int = 1,
    objective: str = "loss",
    mode: str = "min",
    seed: Optional[int] = 0,
) -> SelectionResult:
    """Sample ``num_trials`` configurations independently and rank them."""
    if num_trials <= 0:
        raise ValueError(f"num_trials must be positive, got {num_trials}")
    rng = np.random.default_rng(seed)
    tracker = ExperimentTracker(objective=objective, mode=mode)
    for index in range(num_trials):
        hyperparameters = search_space.sample(rng)
        trial = TrialConfig(trial_id=f"random-{index}", hyperparameters=hyperparameters)
        tracker.start_trial(trial.trial_id)
        metrics = train_fn(trial, num_epochs)
        tracker.record(trial.trial_id, hyperparameters, metrics, epochs_trained=num_epochs)
    return tracker.as_result("random_search")
