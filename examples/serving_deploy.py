"""From model selection to a load-tested inference server.

Run with:  python examples/serving_deploy.py

The script walks the full production path the serving subsystem adds (see
docs/serving.md):

1. really train three candidate MLPs with Hydra-style shard parallelism,
   publishing every trial's trained weights to a ModelRegistry;
2. deploy the winner behind a dynamically batched replica pool
   (SelectionResult.deploy);
3. drive closed-loop load through it and compare against a *spilled*
   deployment of the same winner serving from an arena that holds only its
   largest shard — responses are bit-identical, by construction and by
   assertion.
"""

import tempfile

import numpy as np

from repro import run_model_selection
from repro.api import serve
from repro.data import DataLoader, make_classification
from repro.models import FeedForwardConfig, FeedForwardNetwork
from repro.optim import Adam
from repro.serving import LoadGenerator, ModelRegistry, warm_up
from repro.utils import format_table, seed_everything

WIDTHS = (32, 48, 64)
NUM_FEATURES = 24
NUM_CLASSES = 4


def make_builder(width: int):
    def build():
        config = FeedForwardConfig(
            input_dim=NUM_FEATURES, hidden_dims=(width, width), num_classes=NUM_CLASSES,
            name=f"mlp-w{width}",
        )
        model = FeedForwardNetwork(config, seed=width)
        data = make_classification(
            num_samples=128, num_features=NUM_FEATURES, num_classes=NUM_CLASSES,
            rng=np.random.default_rng(5),
        )
        loader = DataLoader(data, batch_size=32, shuffle=True, seed=0)
        return model, Adam(model.parameters(), lr=5e-3), loader

    return build


def main() -> None:
    seed_everything(7)
    builders = {f"width-{width}": make_builder(width) for width in WIDTHS}

    print("=== 1. Select: train 3 candidates, publishing weights per trial ===")
    registry = ModelRegistry(tempfile.mkdtemp(prefix="repro-registry-"))
    result = run_model_selection(builders, num_devices=2, num_epochs=3,
                                 registry=registry)
    rows = [[t.trial_id, f"{t.metric('loss'):.4f}", t.epochs_trained]
            for t in result.ranked()]
    print(format_table(["trial", "final loss", "epochs"], rows))
    best = result.best()
    print(f"winner: {best.trial_id}  (published as version "
          f"{registry.latest_version(best.trial_id)})")

    print("\n=== 2. Deploy the winner and load-test it ===")
    inputs = np.random.default_rng(3).normal(
        size=(64, NUM_FEATURES)).astype(np.float32)

    def request(client, index):
        return inputs[(client + index) % len(inputs)][None, :]

    server = result.deploy(lambda trial: builders[trial.trial_id]()[0],
                           registry=registry,
                           max_batch_size=16, max_wait_ms=2.0, max_queue=128)
    warm_up(server, inputs[:1])
    report = LoadGenerator(server, request, clients=16,
                           requests_per_client=25).run()
    reference = server.request(inputs[:1])
    server.stop()

    print(format_table(
        ["metric", "value"],
        [["completed", report.completed],
         ["throughput", f"{report.throughput_rps:.0f} req/s"],
         ["p50 latency", f"{report.latency['latency_p50_ms']:.2f} ms"],
         ["p95 latency", f"{report.latency['latency_p95_ms']:.2f} ms"],
         ["p99 latency", f"{report.latency['latency_p99_ms']:.2f} ms"]],
    ))

    print("\n=== 3. Same winner, spilled: a budget of one shard at a time ===")
    winner = builders[best.trial_id]()[0]
    registry.load(best.trial_id, winner)
    total = sum(p.data.nbytes for p in winner.parameters())
    # The tightest feasible arena: exactly the largest block's bytes, so at
    # most one of the model's shards is ever device-resident.
    budget = max(
        sum(p.data.nbytes for p in winner.block_parameters(block))
        for block in range(winner.num_blocks())
    )
    print(f"model: {total} parameter bytes; serving arena: {budget} bytes "
          f"({budget / total:.0%})")
    spilled = serve(winner, memory_budget=budget,
                    max_batch_size=16, max_wait_ms=2.0, max_queue=128)
    warm_up(spilled, inputs[:1])
    spilled_report = LoadGenerator(spilled, request, clients=16,
                                   requests_per_client=25).run()
    spilled_reference = spilled.request(inputs[:1])
    stats = spilled.replicas[0].spill_stats()
    spilled.stop()

    assert np.array_equal(reference, spilled_reference), "spilled must be exact"
    print(f"arena budget: {budget} bytes; evictions: {stats['evictions']}; "
          f"bytes fetched: {stats['bytes_fetched']}")
    print(f"spilled throughput: {spilled_report.throughput_rps:.0f} req/s "
          f"(resident: {report.throughput_rps:.0f} req/s)")
    print("responses bit-identical to the resident deployment: OK")


if __name__ == "__main__":
    main()
