"""Tests for the HydraSession facade and run_model_selection."""

import numpy as np
import pytest

from repro import HydraConfig, HydraSession, run_model_selection
from repro.data import DataLoader, make_classification
from repro.exceptions import ConfigurationError
from repro.models import BertConfig, FeedForwardConfig, FeedForwardNetwork
from repro.optim import Adam

GIB = 1024 ** 3


class TestHydraConfig:
    def test_defaults_match_paper_testbed(self):
        config = HydraConfig()
        assert config.num_devices == 4
        assert config.gpu == "v100-16gb"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            HydraConfig(num_devices=0)
        with pytest.raises(ConfigurationError):
            HydraConfig(default_batch_size=0)


class TestHydraSessionPlanning:
    def test_auto_sharding_for_bert_large(self):
        session = HydraSession()
        plan = session.plan_model("bert", BertConfig.bert_large().profile(seq_len=384),
                                  batch_size=32)
        assert plan.num_shards >= 2
        assert plan.max_shard_working_bytes <= 16 * GIB

    def test_explicit_shard_count(self):
        session = HydraSession()
        plan = session.plan_model("bert", BertConfig.bert_large().profile(seq_len=384),
                                  batch_size=32, num_shards=4)
        assert plan.num_shards == 4

    def test_small_model_gets_single_shard(self):
        session = HydraSession()
        plan = session.plan_model("mlp", FeedForwardConfig.paper_1_2m().profile(), batch_size=32)
        assert plan.num_shards == 1

    def test_model_too_large_for_cluster_rejected(self):
        session = HydraSession(HydraConfig(num_devices=1, gpu="k80-12gb"))
        with pytest.raises(ConfigurationError):
            session.plan_model("bert", BertConfig.bert_large().profile(seq_len=512), batch_size=64)

    def test_make_job(self):
        session = HydraSession()
        job = session.make_job("bert", BertConfig.bert_large().profile(seq_len=384),
                               num_epochs=2, batches_per_epoch=5, batch_size=16)
        assert job.total_batches == 10
        assert job.samples_per_batch == 16


class TestHydraSessionSimulation:
    def _jobs(self, session, count=3):
        profile = BertConfig.bert_large().profile(seq_len=384)
        return [
            session.make_job(f"bert-{i}", profile, num_epochs=1, batches_per_epoch=2,
                             batch_size=16, num_shards=4)
            for i in range(count)
        ]

    def test_simulate_shard_parallel(self):
        session = HydraSession()
        result = session.simulate(self._jobs(session), strategy="shard-parallel")
        assert result.strategy == "shard-parallel"
        assert result.makespan > 0

    def test_unknown_strategy_rejected(self):
        session = HydraSession()
        with pytest.raises(ConfigurationError):
            session.simulate(self._jobs(session), strategy="quantum")

    def test_compare_strategies_marks_infeasible(self):
        session = HydraSession()
        profile = BertConfig.bert_large().profile(seq_len=384)
        jobs = [session.make_job(f"bert-{i}", profile, batches_per_epoch=2,
                                 batch_size=32, num_shards=4) for i in range(2)]
        results = session.compare_strategies(jobs)
        # Larger-than-memory model: task parallelism is skipped with a reason.
        assert not results["task-parallel"].feasible
        assert results["task-parallel"].skip_reason
        with pytest.raises(RuntimeError):
            results["task-parallel"].unwrap()
        assert results["model-parallel"].feasible
        assert results["shard-parallel"].feasible
        shard = results["shard-parallel"].unwrap()
        assert shard.makespan < results["model-parallel"].unwrap().makespan

    def test_available_strategies(self):
        assert "shard-parallel" in HydraSession().available_strategies()

    def test_policy_name_respected(self):
        session = HydraSession(HydraConfig(policy="fifo"))
        result = session.simulate(self._jobs(session), strategy="shard-parallel")
        assert result.makespan > 0


class TestRunModelSelection:
    def test_requires_builders(self):
        with pytest.raises(ConfigurationError):
            run_model_selection({})

    def test_trains_and_ranks_trials(self):
        data = make_classification(num_samples=96, num_features=16, num_classes=4,
                                   rng=np.random.default_rng(1))

        def builder(seed, lr):
            def build():
                model = FeedForwardNetwork(FeedForwardConfig.tiny(), seed=seed)
                return (model, Adam(model.parameters(), lr=lr),
                        DataLoader(data, batch_size=16, shuffle=True, seed=seed))
            return build

        builders = {
            "good-lr": builder(0, 1e-2),
            "tiny-lr": builder(1, 1e-5),
        }
        result = run_model_selection(builders, num_devices=2, num_epochs=3)
        assert len(result) == 2
        assert result.best().trial_id == "good-lr"
        assert result.best().metric("loss") < 1.0
        # Wall time is wired through the tracker on the real-training path.
        for trial in result.trials:
            assert trial.wall_seconds > 0.0
            assert trial.hyperparameters["model"] == "mlp-tiny"
            assert trial.hyperparameters["num_shards"] == 2
