"""Tests for the model zoo: feedforward network, BERT, and the registry."""

import numpy as np
import pytest

from repro.data import DataLoader
from repro.exceptions import ConfigurationError
from repro.models import (
    BertConfig,
    BertForSpanPrediction,
    FeedForwardConfig,
    FeedForwardNetwork,
    available_models,
    create_model,
    register_model,
)


class TestFeedForwardConfig:
    def test_paper_preset_has_roughly_1_2m_parameters(self):
        count = FeedForwardConfig.paper_1_2m().param_count()
        assert 1.1e6 < count < 1.3e6

    def test_layer_dims_chain(self):
        config = FeedForwardConfig(input_dim=8, hidden_dims=(16, 4), num_classes=2)
        assert config.layer_dims == [(8, 16), (16, 4), (4, 2)]

    def test_param_count_matches_instantiated_model(self):
        config = FeedForwardConfig.tiny()
        model = FeedForwardNetwork(config, seed=0)
        assert model.num_parameters() == config.param_count()

    def test_profile_block_count(self):
        config = FeedForwardConfig(input_dim=8, hidden_dims=(16, 4), num_classes=2)
        assert len(config.profile()) == 3

    def test_profile_total_params_matches(self):
        config = FeedForwardConfig.paper_1_2m()
        assert config.profile().total_params == config.param_count()


class TestFeedForwardNetwork:
    def test_forward_matches_block_execution(self, tiny_mlp, classification_batch):
        whole = tiny_mlp.forward(classification_batch)
        state = None
        for index in range(tiny_mlp.num_blocks()):
            state = tiny_mlp.run_block(index, state, classification_batch)
        assert np.allclose(whole.data, state.data)

    def test_same_seed_same_weights(self, tiny_mlp_config):
        a = FeedForwardNetwork(tiny_mlp_config, seed=9)
        b = FeedForwardNetwork(tiny_mlp_config, seed=9)
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            assert np.array_equal(pa.data, pb.data)

    def test_different_seed_different_weights(self, tiny_mlp_config):
        a = FeedForwardNetwork(tiny_mlp_config, seed=1)
        b = FeedForwardNetwork(tiny_mlp_config, seed=2)
        assert not np.array_equal(a.blocks[0].linear.weight.data, b.blocks[0].linear.weight.data)

    def test_loss_and_predictions(self, tiny_mlp, classification_batch):
        loss = tiny_mlp.loss_on_batch(classification_batch)
        assert np.isfinite(loss.item())
        outputs = tiny_mlp.forward(classification_batch)
        predictions = tiny_mlp.predict(outputs)
        assert predictions.shape == (classification_batch.size,)
        accuracy = tiny_mlp.accuracy_on_batch(classification_batch)
        assert 0.0 <= accuracy <= 1.0

    def test_block_parameters_partition_all_parameters(self, tiny_mlp):
        total = sum(len(tiny_mlp.block_parameters(i)) for i in range(tiny_mlp.num_blocks()))
        assert total == len(list(tiny_mlp.parameters()))

    def test_learns_separable_data(self, classification_data):
        from repro.optim import Adam

        model = FeedForwardNetwork(FeedForwardConfig.tiny(), seed=0)
        loader = DataLoader(classification_data, batch_size=16, shuffle=True, seed=0)
        optimizer = Adam(model.parameters(), lr=1e-2)
        first_loss, last_loss = None, None
        for epoch in range(5):
            for batch in loader:
                loss = model.loss_on_batch(batch)
                model.zero_grad()
                loss.backward()
                optimizer.step()
                if first_loss is None:
                    first_loss = loss.item()
                last_loss = loss.item()
        assert last_loss < 0.5 * first_loss


class TestBertConfig:
    def test_bert_large_parameter_count(self):
        # BERT-Large is ~340M parameters; the analytical count should land close.
        count = BertConfig.bert_large().param_count()
        assert 320e6 < count < 350e6

    def test_bert_base_parameter_count(self):
        count = BertConfig.bert_base().param_count()
        assert 100e6 < count < 120e6

    def test_block_costs_structure(self):
        config = BertConfig.bert_large()
        costs = config.block_costs(seq_len=384)
        assert len(costs) == config.num_layers + 2
        assert costs[0].name.endswith("embeddings")
        assert costs[-1].name.endswith("span_head")

    def test_profile_seq_len_changes_activations_not_params(self):
        config = BertConfig.bert_base()
        short = config.profile(seq_len=128)
        long = config.profile(seq_len=512)
        assert short.total_params == long.total_params
        assert short.blocks[1].activation_bytes_per_sample < long.blocks[1].activation_bytes_per_sample

    def test_tiny_preset_is_instantiable(self):
        config = BertConfig.tiny()
        model = BertForSpanPrediction(config, seed=0)
        assert model.num_parameters() < 1e6


class TestBertForSpanPrediction:
    def test_forward_output_structure(self, tiny_bert_config, span_batch):
        model = BertForSpanPrediction(tiny_bert_config, seed=0)
        start_logits, end_logits = model.forward(span_batch)
        assert start_logits.shape == (span_batch.size, tiny_bert_config.max_seq_len)
        assert end_logits.shape == (span_batch.size, tiny_bert_config.max_seq_len)

    def test_block_execution_matches_forward(self, tiny_bert_config, span_batch):
        model = BertForSpanPrediction(tiny_bert_config, seed=0)
        model.eval()
        whole = model.forward(span_batch)
        state = None
        for index in range(model.num_blocks()):
            state = model.run_block(index, state, span_batch)
        assert np.allclose(whole[0].data, state[0].data, atol=1e-6)
        assert np.allclose(whole[1].data, state[1].data, atol=1e-6)

    def test_num_blocks(self, tiny_bert_config):
        model = BertForSpanPrediction(tiny_bert_config, seed=0)
        assert model.num_blocks() == tiny_bert_config.num_layers + 2

    def test_loss_and_span_accuracy(self, tiny_bert_config, span_batch):
        model = BertForSpanPrediction(tiny_bert_config, seed=0)
        outputs = model.forward(span_batch)
        loss = model.compute_loss(outputs, span_batch)
        assert np.isfinite(loss.item()) and loss.item() > 0
        accuracy = model.span_accuracy(outputs, span_batch)
        assert 0.0 <= accuracy <= 1.0
        predictions = model.predict(outputs)
        assert predictions.shape == (span_batch.size, 2)

    def test_gradients_reach_embeddings_and_head(self, tiny_bert_config, span_batch):
        model = BertForSpanPrediction(tiny_bert_config, seed=0)
        loss = model.loss_on_batch(span_batch)
        loss.backward()
        assert model.embeddings.token_embeddings.weight.grad is not None
        assert model.span_head.projection.weight.grad is not None

    def test_profile_matches_real_parameter_count_closely(self, tiny_bert_config):
        model = BertForSpanPrediction(tiny_bert_config, seed=0)
        profile = model.profile()
        # The analytic profile counts the full position table; the real model
        # does too, so the counts must agree exactly.
        assert profile.total_params == model.num_parameters()


class TestRegistry:
    def test_builtin_models_registered(self):
        names = available_models()
        assert "mlp-1.2m" in names
        assert "bert-tiny" in names

    def test_create_model(self):
        model = create_model("mlp-tiny", seed=1)
        assert isinstance(model, FeedForwardNetwork)

    def test_unknown_model(self):
        with pytest.raises(ConfigurationError):
            create_model("resnet-9000")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError):
            register_model("mlp-tiny", lambda: None)

    def test_register_decorator(self):
        @register_model("unit-test-model")
        def _factory(seed=0):
            return FeedForwardNetwork(FeedForwardConfig.tiny(), seed=seed)

        assert "unit-test-model" in available_models()
        assert isinstance(create_model("unit-test-model"), FeedForwardNetwork)
