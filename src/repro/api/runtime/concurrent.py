"""``ConcurrentBackend``: concurrent trial execution for any backend.

This wrapper is how an :class:`~repro.api.experiment.Experiment` gains a
worker pool without touching searchers or backends: it *is* an
:class:`~repro.api.backend.ExecutionBackend`, so the
:class:`~repro.api.experiment.TrialRunner` drives it like any other, but
each cohort call fans out across a :class:`~repro.api.runtime.pool.WorkerPool`:

* ``prepare`` is **deferred**: the outer handle is created instantly and the
  inner backend's (potentially expensive) ``prepare`` runs inside the worker
  on first training contact — so a cohort's preparations overlap too;
* ``train_many`` dispatches one future per trial through an
  :class:`~repro.api.runtime.runner.AsyncTrialRunner`, with per-trial retry,
  backoff, and straggler timeout from a
  :class:`~repro.api.runtime.runner.RetryPolicy`;
* a trial that still fails is marked on its handle (``handle.failure``) and
  surfaces as a :class:`~repro.selection.experiment.FailedTrial` — the rest
  of the cohort and the experiment continue;
* results are collected in handle order, never completion order, so the
  :class:`~repro.selection.experiment.SelectionResult` ranking is identical
  at any worker count.

Semantics note: a cohort-engine backend (shard-parallel, Cerebro) normally
co-schedules the whole cohort inside one driver.  Wrapped, each trial trains
in its own single-model driver on its own worker instead.  Each model's own
update sequence is unchanged — cohort membership never leaks into a model's
numerics — so losses and rankings match the serial run exactly.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Optional, Sequence, Tuple

from repro.api.backend import ExecutionBackend, TrialHandle
from repro.api.runtime.pool import WorkerPool, make_pool
from repro.api.runtime.runner import AsyncTrialRunner, RetryPolicy, TrialFault
from repro.exceptions import ConfigurationError
from repro.selection.experiment import TrialConfig


class ConcurrentBackend(ExecutionBackend):
    """Wraps any :class:`ExecutionBackend` with pooled, fault-tolerant trials.

    ``workers`` sizes an owned thread pool; pass ``pool`` instead to share
    one across backends (the caller keeps ownership).  ``retry`` configures
    per-trial fault tolerance.  The wrapper is resumable exactly when the
    inner backend is, so searcher eligibility (e.g. successive halving) is
    unchanged.

    Example::

        from repro.api import ConcurrentBackend, FunctionBackend

        backend = ConcurrentBackend(
            FunctionBackend(lambda trial, epochs: {"loss": 0.0}), workers=4
        )
        try:
            ...  # Experiment(...).run(backend=backend)
        finally:
            backend.close()

    (``Experiment.run(..., workers=N)`` builds and closes one of these for
    you; constructing it by hand is only needed for custom pools/policies.)

    Raises:
        ConfigurationError: if ``workers`` is not positive, the retry policy
            is invalid, the inner backend declares
            ``concurrency_safe = False`` (its metrics depend on cohort
            co-scheduling — the cluster simulator), or the pool is
            process-based (trial handles live in shared memory; a child
            process could neither receive them nor send state back).
    """

    resumable = True  # overwritten per-instance from the inner backend

    def __init__(
        self,
        inner: ExecutionBackend,
        workers: int = 4,
        pool: Optional[WorkerPool] = None,
        retry: Optional[RetryPolicy] = None,
    ):
        if not inner.concurrency_safe:
            raise ConfigurationError(
                f"backend {inner.name!r} measures whole-cohort co-scheduling; "
                f"concurrent per-trial dispatch would change its metrics, not "
                f"accelerate it — run it without workers"
            )
        if pool is not None and pool.kind == "process":
            raise ConfigurationError(
                "ConcurrentBackend requires an in-process pool (serial/thread): "
                "trial handles and backend state cannot cross a process "
                "boundary; use ProcessWorkerPool with AsyncTrialRunner and "
                "self-contained tasks instead"
            )
        self.inner = inner
        self.name = f"concurrent({inner.name})"
        self.resumable = inner.resumable
        if pool is not None:
            self.pool = pool
            self._owned_pool: Optional[WorkerPool] = None
        else:
            self.pool = make_pool(workers)
            self._owned_pool = self.pool
        self.retry = retry if retry is not None else RetryPolicy()
        self._runner = AsyncTrialRunner(self.pool, self.retry)
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # Protocol
    # ------------------------------------------------------------------ #
    def prepare(self, trial: TrialConfig) -> TrialHandle:
        """Create a lightweight handle; the inner ``prepare`` is deferred.

        The expensive part (building models, plans, loaders) runs inside a
        worker at this trial's first ``train``/``train_many`` contact, so a
        whole cohort's preparations overlap instead of queueing on the
        caller's thread.
        """
        return TrialHandle(trial=trial)

    def train(self, handle: TrialHandle, epochs: int) -> Dict[str, float]:
        """Train one trial through the pool (a cohort of one)."""
        return self.train_many([handle], epochs)[handle.trial_id]

    def train_many(
        self, handles: Sequence[TrialHandle], epochs: int
    ) -> Dict[str, Dict[str, float]]:
        """Fan the cohort out across the pool; collect metrics in handle order.

        Each trial's task is ``prepare`` (first time only) + ``train`` on the
        inner backend, retried per the policy.  A trial that exhausts its
        retries or straggles past the cohort deadline gets ``handle.failure``
        set to a :class:`TrialFault`, its inner state torn down, and an empty
        metrics dict here — the :class:`TrialRunner` turns that into a
        :class:`FailedTrial` record.  Retries re-run the whole task, so a
        failing ``prepare`` is re-attempted from scratch (at-least-once
        execution: a trial that mutated state before raising resumes from
        that state).
        """
        live = [handle for handle in handles if handle.failure is None]
        outcomes = self._runner.run_cohort(
            lambda handle: self._train_one(handle, epochs), live
        )
        metrics: Dict[str, Dict[str, float]] = {}
        for handle in handles:
            outcome = outcomes.get(handle.trial_id)
            if isinstance(outcome, TrialFault) or outcome is None:
                if isinstance(outcome, TrialFault):
                    handle.failure = outcome
                    self._teardown_inner(handle)
                metrics[handle.trial_id] = {}
                continue
            trial_metrics, elapsed = outcome
            handle.wall_seconds += elapsed
            inner_handle = handle.state
            for key, value in inner_handle.annotations.items():
                handle.annotations.setdefault(key, value)
            handle.last_metrics = dict(trial_metrics)
            metrics[handle.trial_id] = dict(trial_metrics)
        return metrics

    def teardown(self, handle: TrialHandle) -> None:
        """Release the trial's inner state (inline — never through the pool,
        which abandoned stragglers may be saturating; ``_teardown_inner`` is
        thread-safe, so running it on the caller's thread is always safe)."""
        self._teardown_inner(handle)

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Shut down the owned pool (no-op when the pool was caller-supplied).

        Shutdown does not wait: an abandoned straggler keeps its thread until
        it finishes (threads cannot be killed), but its result is already
        discarded and it must not delay the experiment's return.
        """
        if self._owned_pool is not None:
            self._owned_pool.shutdown(wait=False)

    def __enter__(self) -> "ConcurrentBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC backstop for the owned pool
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------ #
    def _train_one(
        self, handle: TrialHandle, epochs: int
    ) -> Tuple[Dict[str, float], float]:
        """In-worker task: lazily prepare, then train, timing this trial only."""
        inner_handle = self._inner_handle(handle)
        started = time.monotonic()
        trial_metrics = self.inner.train(inner_handle, epochs)
        elapsed = time.monotonic() - started
        inner_handle.epochs_trained += epochs
        inner_handle.last_metrics = dict(trial_metrics)
        return dict(trial_metrics), elapsed

    def _inner_handle(self, handle: TrialHandle) -> TrialHandle:
        """Get or build the inner backend's handle for this outer handle.

        Only one worker task touches a given trial at a time (the runner
        submits at most one future per handle per cohort), but the lock keeps
        first-contact preparation safe if a straggler from an abandoned
        dispatch is still running.
        """
        with self._lock:
            inner_handle = handle.state
        if inner_handle is None:
            prepared = self.inner.prepare(handle.trial)
            with self._lock:
                if handle.state is None:
                    handle.state = prepared
                inner_handle = handle.state
        return inner_handle

    def _teardown_inner(self, handle: TrialHandle) -> None:
        """Best-effort inner teardown; never raises (used on failure paths)."""
        with self._lock:
            inner_handle = handle.state
            handle.state = None
        if inner_handle is None:
            return
        try:
            self.inner.teardown(inner_handle)
        except Exception:  # noqa: BLE001 - teardown must not mask the fault
            pass
