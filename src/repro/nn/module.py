"""The :class:`Module` base class: parameter registration and traversal."""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from repro.autograd.tensor import Tensor
from repro.nn.parameter import Parameter


class Module:
    """Base class for all neural-network layers and models.

    Assigning a :class:`Parameter` or another :class:`Module` as an attribute
    registers it, so :meth:`parameters`, :meth:`state_dict` and friends see
    the full tree without extra bookkeeping from subclasses.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "training", True)

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
            object.__setattr__(self, name, value)
        elif isinstance(value, Module):
            self._modules[name] = value
            object.__setattr__(self, name, value)
        else:
            object.__setattr__(self, name, value)

    def register_module(self, name: str, module: "Module") -> None:
        """Register a child module under a non-attribute-safe name."""
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # ------------------------------------------------------------------ #
    # Traversal
    # ------------------------------------------------------------------ #
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(qualified_name, parameter)`` for the whole subtree."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for child_name, child in self._modules.items():
            yield from child.named_parameters(prefix=f"{prefix}{child_name}.")

    def parameters(self) -> Iterator[Parameter]:
        for _, param in self.named_parameters():
            yield param

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield (prefix.rstrip("."), self)
        for child_name, child in self._modules.items():
            yield from child.named_modules(prefix=f"{prefix}{child_name}.")

    def children(self) -> Iterator["Module"]:
        yield from self._modules.values()

    def num_parameters(self) -> int:
        """Total number of scalar parameters in the subtree."""
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------ #
    # State management
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copy of every parameter's data keyed by qualified name."""
        return {name: param.data.copy() for name, param in self.named_parameters()}

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True) -> None:
        """Load parameter values produced by :meth:`state_dict`."""
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if strict and (missing or unexpected):
            raise KeyError(
                f"state_dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}"
            )
        for name, values in state.items():
            if name not in own:
                continue
            param = own[name]
            values = np.asarray(values)
            if values.shape != param.data.shape:
                raise ValueError(
                    f"parameter {name!r}: shape {values.shape} does not match {param.data.shape}"
                )
            param.data = values.astype(param.data.dtype).copy()

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively (affects dropout)."""
        object.__setattr__(self, "training", mode)
        for child in self._modules.values():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def forward(self, *args, **kwargs):  # pragma: no cover - interface
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:
        child_lines = []
        for name, child in self._modules.items():
            child_repr = repr(child).replace("\n", "\n  ")
            child_lines.append(f"  ({name}): {child_repr}")
        header = type(self).__name__
        if not child_lines:
            return f"{header}()"
        return f"{header}(\n" + "\n".join(child_lines) + "\n)"
