"""Event hooks for experiment runs.

The :class:`~repro.api.experiment.TrialRunner` fires these callbacks around
every trial it drives, whatever the searcher or backend.  A callback can
observe (logging, timing) or intervene: returning a truthy value from
:meth:`Callback.on_epoch_end` stops that trial early — the trial keeps the
metrics it has and is retired, while the rest of the cohort continues.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional

from repro.selection.experiment import SelectionResult, TrialConfig, TrialResult
from repro.utils.logging import get_logger


class Callback:
    """Base class; override any subset of the hooks.

    Hooks always fire on the experiment's driving thread — never inside a
    worker — so callbacks need no locking even at ``workers=N``, and the
    event order is deterministic at any worker count.

    Example::

        class PrintLoss(Callback):
            def on_epoch_end(self, trial, epoch, metrics):
                print(trial.trial_id, epoch, metrics.get("loss"))

        Experiment(space=space, searcher="grid", backend=backend,
                   callbacks=[PrintLoss()]).run()
    """

    def on_experiment_start(self, experiment) -> None:
        """Fired once before the searcher starts emitting trials."""

    def on_trial_start(self, trial: TrialConfig) -> None:
        """Fired when a trial is first prepared on the backend."""

    def on_epoch_end(
        self, trial: TrialConfig, epoch: int, metrics: Dict[str, float]
    ) -> Optional[bool]:
        """Fired after each trained epoch; return True to stop this trial."""
        return None

    def on_trial_end(self, result: TrialResult) -> None:
        """Fired when a trial is retired (finished, culled, or stopped early)."""

    def on_experiment_end(self, result: SelectionResult) -> None:
        """Fired once with the final ranked result."""


class CallbackList(Callback):
    """Fans events out to several callbacks, preserving order.

    Example::

        hooks = CallbackList([LoggingCallback(), TrialTimer()])
        hooks.on_trial_start(trial)  # both callbacks observe, in list order
    """

    def __init__(self, callbacks: Iterable[Callback] = ()):
        self.callbacks: List[Callback] = list(callbacks)

    def on_experiment_start(self, experiment) -> None:
        for callback in self.callbacks:
            callback.on_experiment_start(experiment)

    def on_trial_start(self, trial: TrialConfig) -> None:
        for callback in self.callbacks:
            callback.on_trial_start(trial)

    def on_epoch_end(
        self, trial: TrialConfig, epoch: int, metrics: Dict[str, float]
    ) -> bool:
        # Every callback sees the epoch even if an earlier one votes to stop.
        stop = False
        for callback in self.callbacks:
            if callback.on_epoch_end(trial, epoch, metrics):
                stop = True
        return stop

    def on_trial_end(self, result: TrialResult) -> None:
        for callback in self.callbacks:
            callback.on_trial_end(result)

    def on_experiment_end(self, result: SelectionResult) -> None:
        for callback in self.callbacks:
            callback.on_experiment_end(result)


class LoggingCallback(Callback):
    """Logs trial lifecycle events through :mod:`repro.utils.logging`.

    Example::

        Experiment(space=space, searcher="grid", backend=backend,
                   callbacks=[LoggingCallback(every_epoch=True)]).run()
    """

    def __init__(self, logger_name: str = "experiment", every_epoch: bool = False):
        self.logger = get_logger(logger_name)
        self.every_epoch = every_epoch

    def on_trial_start(self, trial: TrialConfig) -> None:
        self.logger.info("trial %s started: %s", trial.trial_id, trial.hyperparameters)

    def on_epoch_end(
        self, trial: TrialConfig, epoch: int, metrics: Dict[str, float]
    ) -> Optional[bool]:
        if self.every_epoch:
            self.logger.info("trial %s epoch %d: %s", trial.trial_id, epoch, metrics)
        return None

    def on_trial_end(self, result: TrialResult) -> None:
        self.logger.info(
            "trial %s finished after %d epochs: %s",
            result.trial_id, result.epochs_trained, result.metrics,
        )

    def on_experiment_end(self, result: SelectionResult) -> None:
        if result.trials:
            best = result.best()
            self.logger.info(
                "%s finished: %d trials, best %s (%s=%.6g)",
                result.method, len(result), best.trial_id,
                result.objective, best.metric(result.objective),
            )


class EarlyStopping(Callback):
    """Stops a trial when its monitored metric plateaus or crosses a threshold.

    ``threshold`` stops as soon as the metric is good enough (``<= threshold``
    in min mode, ``>= threshold`` in max mode).  ``patience`` stops after that
    many consecutive epochs without at least ``min_delta`` improvement.
    Either criterion may be used alone.

    Example::

        stopper = EarlyStopping(monitor="loss", mode="min",
                                threshold=0.1, patience=3)
        Experiment(space=space, searcher="grid", backend=backend,
                   callbacks=[stopper]).run()

    Raises:
        ValueError: if ``mode`` is not ``"min"``/``"max"`` or neither
            criterion is given.
    """

    def __init__(
        self,
        monitor: str = "loss",
        mode: str = "min",
        threshold: Optional[float] = None,
        patience: Optional[int] = None,
        min_delta: float = 0.0,
    ):
        if mode not in ("min", "max"):
            raise ValueError(f"mode must be 'min' or 'max', got {mode!r}")
        if threshold is None and patience is None:
            raise ValueError("EarlyStopping needs a threshold and/or a patience")
        self.monitor = monitor
        self.mode = mode
        self.threshold = threshold
        self.patience = patience
        self.min_delta = float(min_delta)
        self._best: Dict[str, float] = {}
        self._stale_epochs: Dict[str, int] = {}

    def _improved(self, trial_id: str, value: float) -> bool:
        best = self._best.get(trial_id)
        if best is None:
            return True
        if self.mode == "min":
            return value < best - self.min_delta
        return value > best + self.min_delta

    def on_epoch_end(
        self, trial: TrialConfig, epoch: int, metrics: Dict[str, float]
    ) -> Optional[bool]:
        if self.monitor not in metrics:
            return None
        value = metrics[self.monitor]
        if self.threshold is not None:
            reached = value <= self.threshold if self.mode == "min" else value >= self.threshold
            if reached:
                return True
        if self.patience is not None:
            if self._improved(trial.trial_id, value):
                self._best[trial.trial_id] = value
                self._stale_epochs[trial.trial_id] = 0
            else:
                stale = self._stale_epochs.get(trial.trial_id, 0) + 1
                self._stale_epochs[trial.trial_id] = stale
                if stale >= self.patience:
                    return True
        return None

    def on_trial_end(self, result: TrialResult) -> None:
        self._best.pop(result.trial_id, None)
        self._stale_epochs.pop(result.trial_id, None)


class TrialTimer(Callback):
    """Accumulates real wall-clock seconds per trial (prepare to retire).

    Example::

        timer = TrialTimer()
        Experiment(space=space, searcher="grid", backend=backend,
                   callbacks=[timer]).run()
        print(timer.wall_seconds)  # {"grid-0": 0.42, ...}
    """

    def __init__(self) -> None:
        self.wall_seconds: Dict[str, float] = {}
        self._started: Dict[str, float] = {}

    def on_trial_start(self, trial: TrialConfig) -> None:
        self._started[trial.trial_id] = time.monotonic()

    def on_trial_end(self, result: TrialResult) -> None:
        started = self._started.pop(result.trial_id, None)
        if started is not None:
            elapsed = time.monotonic() - started
            self.wall_seconds[result.trial_id] = (
                self.wall_seconds.get(result.trial_id, 0.0) + elapsed
            )
