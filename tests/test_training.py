"""Tests for the real training engines: Trainer, sharded executor, metrics, checkpoints."""

import numpy as np
import pytest

from repro.data import DataLoader, SyntheticSpanDataset, make_classification
from repro.data.dataloader import Batch
from repro.exceptions import CheckpointError, SchedulingError
from repro.models import BertConfig, BertForSpanPrediction, FeedForwardConfig, FeedForwardNetwork
from repro.optim import SGD, Adam
from repro.training import (
    MetricTracker,
    ShardedModelExecutor,
    ShardParallelTrainer,
    Trainer,
    accuracy_from_logits,
    load_checkpoint,
    save_checkpoint,
)


class TestMetrics:
    def test_accuracy_from_logits(self):
        logits = np.array([[2.0, 1.0], [0.0, 3.0], [5.0, 1.0]])
        labels = np.array([0, 1, 1])
        assert accuracy_from_logits(logits, labels) == pytest.approx(2 / 3)

    def test_accuracy_shape_mismatch(self):
        with pytest.raises(ValueError):
            accuracy_from_logits(np.zeros((2, 3)), np.zeros(3))

    def test_metric_tracker_epoch_means(self):
        tracker = MetricTracker()
        tracker.update(loss=1.0)
        tracker.update(loss=3.0, accuracy=0.5)
        snapshot = tracker.end_epoch()
        assert snapshot["loss"] == pytest.approx(2.0)
        assert snapshot["accuracy"] == pytest.approx(0.5)
        assert tracker.latest() == snapshot

    def test_metric_tracker_errors(self):
        tracker = MetricTracker()
        with pytest.raises(KeyError):
            tracker.mean("loss")
        with pytest.raises(ValueError):
            tracker.latest()


class TestTrainer:
    def _setup(self, lr=1e-2, seed=0):
        data = make_classification(num_samples=96, num_features=16, num_classes=4,
                                   rng=np.random.default_rng(3))
        model = FeedForwardNetwork(FeedForwardConfig.tiny(), seed=seed)
        loader = DataLoader(data, batch_size=16, shuffle=True, seed=seed)
        eval_loader = DataLoader(data, batch_size=32)
        return Trainer(model, Adam(model.parameters(), lr=lr), loader, eval_loader=eval_loader)

    def test_fit_reduces_loss(self):
        trainer = self._setup()
        report = trainer.fit(num_epochs=4)
        assert len(report.epochs) == 4
        assert report.final_loss < report.epochs[0]["loss"]
        assert report.metric_series("loss") == [e["loss"] for e in report.epochs]

    def test_evaluation_metrics_present(self):
        trainer = self._setup()
        report = trainer.fit(num_epochs=2)
        assert "eval_loss" in report.epochs[-1]
        assert "eval_accuracy" in report.epochs[-1]
        assert report.epochs[-1]["eval_accuracy"] > 0.5

    def test_evaluate_requires_a_loader(self):
        trainer = self._setup()
        trainer.eval_loader = None
        with pytest.raises(ValueError):
            trainer.evaluate()

    def test_evaluate_restores_training_mode(self):
        trainer = self._setup()
        trainer.evaluate(DataLoader(make_classification(num_samples=16, num_features=16,
                                                        num_classes=4,
                                                        rng=np.random.default_rng(0)),
                                    batch_size=8))
        assert trainer.model.training is True

    def test_scheduler_is_stepped(self):
        from repro.optim import StepDecay

        trainer = self._setup()
        trainer.scheduler = StepDecay(trainer.optimizer, step_size=1, gamma=0.5)
        initial_lr = trainer.optimizer.lr
        trainer.fit(num_epochs=1)
        assert trainer.optimizer.lr < initial_lr


class TestShardedModelExecutor:
    def test_boundary_validation(self, tiny_mlp):
        with pytest.raises(SchedulingError):
            ShardedModelExecutor(tiny_mlp, [(0, 1), (2, 3)])
        with pytest.raises(SchedulingError):
            ShardedModelExecutor(tiny_mlp, [(0, 2)])

    def test_forward_only_matches_whole_model(self, tiny_mlp, classification_batch):
        executor = ShardedModelExecutor(tiny_mlp, [(0, 1), (1, 3)])
        sharded = executor.forward_only(classification_batch)
        whole = tiny_mlp.forward(classification_batch)
        assert np.allclose(sharded.data, whole.data, atol=1e-6)

    def test_loss_before_backward_enforced(self, tiny_mlp, classification_batch):
        executor = ShardedModelExecutor(tiny_mlp, [(0, 3)])
        executor.begin_batch()
        executor.run_forward(0, classification_batch)
        with pytest.raises(SchedulingError):
            executor.run_backward(0)

    def test_shard_parameters_partition(self, tiny_mlp):
        executor = ShardedModelExecutor(tiny_mlp, [(0, 2), (2, 3)])
        counts = [len(executor.shard_parameters(i)) for i in range(2)]
        assert sum(counts) == len(list(tiny_mlp.parameters()))

    def test_train_step_reduces_loss_over_time(self, tiny_mlp, classification_data):
        executor = ShardedModelExecutor(tiny_mlp, [(0, 1), (1, 3)])
        optimizer = Adam(tiny_mlp.parameters(), lr=1e-2)
        loader = DataLoader(classification_data, batch_size=16, shuffle=True, seed=0)
        losses = []
        for _ in range(3):
            for batch in loader:
                losses.append(executor.train_step(batch, optimizer))
        assert losses[-1] < losses[0]


class TestGradientParity:
    """Paper desideratum D3: sharding must not change the training output."""

    def _mlp_pair(self, seed=11):
        config = FeedForwardConfig.tiny()
        return FeedForwardNetwork(config, seed=seed), FeedForwardNetwork(config, seed=seed)

    @pytest.mark.parametrize("boundaries", [[(0, 1), (1, 3)], [(0, 2), (2, 3)],
                                            [(0, 1), (1, 2), (2, 3)]])
    def test_mlp_gradients_identical_for_any_sharding(self, boundaries, classification_batch):
        reference, sharded = self._mlp_pair()
        loss_ref = reference.loss_on_batch(classification_batch)
        reference.zero_grad()
        loss_ref.backward()

        executor = ShardedModelExecutor(sharded, boundaries)
        executor.begin_batch()
        sharded.zero_grad()
        for index in range(executor.num_shards):
            executor.run_forward(index, classification_batch)
        loss_sharded = executor.compute_loss(classification_batch)
        for index in reversed(range(executor.num_shards)):
            executor.run_backward(index)

        assert loss_sharded.item() == pytest.approx(loss_ref.item(), abs=1e-7)
        for (name, p_ref), (_, p_sharded) in zip(
            reference.named_parameters(), sharded.named_parameters()
        ):
            assert np.allclose(p_ref.grad, p_sharded.grad, atol=1e-6), name

    def test_bert_gradients_match_under_sharding(self, span_batch):
        config = BertConfig.tiny(vocab_size=64, seq_len=32)
        reference = BertForSpanPrediction(config, seed=5)
        sharded = BertForSpanPrediction(config, seed=5)

        loss_ref = reference.loss_on_batch(span_batch)
        reference.zero_grad()
        loss_ref.backward()

        executor = ShardedModelExecutor(sharded, [(0, 1), (1, 3), (3, 4)])
        loss_sharded_value = None
        executor.begin_batch()
        sharded.zero_grad()
        for index in range(executor.num_shards):
            executor.run_forward(index, span_batch)
        loss_sharded_value = executor.compute_loss(span_batch).item()
        for index in reversed(range(executor.num_shards)):
            executor.run_backward(index)

        assert loss_sharded_value == pytest.approx(loss_ref.item(), abs=1e-6)
        for (name, p_ref), (_, p_sharded) in zip(
            reference.named_parameters(), sharded.named_parameters()
        ):
            assert np.allclose(p_ref.grad, p_sharded.grad, atol=1e-5), name

    def test_multi_step_training_trajectories_identical(self, classification_data):
        """Not just one gradient: whole optimisation trajectories must coincide."""
        reference, sharded = self._mlp_pair(seed=21)
        loader_ref = DataLoader(classification_data, batch_size=16, shuffle=True, seed=9)
        loader_sharded = DataLoader(classification_data, batch_size=16, shuffle=True, seed=9)
        opt_ref = SGD(reference.parameters(), lr=0.05, momentum=0.9)
        opt_sharded = SGD(sharded.parameters(), lr=0.05, momentum=0.9)
        executor = ShardedModelExecutor(sharded, [(0, 2), (2, 3)])

        for epoch in range(2):
            loader_ref.set_epoch(epoch)
            loader_sharded.set_epoch(epoch)
            for batch_ref, batch_sharded in zip(loader_ref, loader_sharded):
                loss = reference.loss_on_batch(batch_ref)
                reference.zero_grad()
                loss.backward()
                opt_ref.step()
                executor.train_step(batch_sharded, opt_sharded)

        for (name, p_ref), (_, p_sharded) in zip(
            reference.named_parameters(), sharded.named_parameters()
        ):
            assert np.allclose(p_ref.data, p_sharded.data, atol=1e-5), name


class TestShardParallelTrainer:
    def test_requires_positive_devices(self):
        with pytest.raises(ValueError):
            ShardParallelTrainer(num_devices=0)

    def test_requires_models(self):
        with pytest.raises(SchedulingError):
            ShardParallelTrainer(num_devices=2).train_epoch()

    def test_interleaved_training_matches_isolated_training(self, classification_data):
        """Interleaving shard tasks of several models must not change any model's result."""
        config = FeedForwardConfig.tiny()
        seeds = [31, 32]

        def make_loader(seed):
            return DataLoader(classification_data, batch_size=16, shuffle=True, seed=seed)

        # Isolated reference runs.
        reference_params = {}
        for seed in seeds:
            model = FeedForwardNetwork(config, seed=seed)
            optimizer = SGD(model.parameters(), lr=0.05)
            executor = ShardedModelExecutor(model, [(0, 2), (2, 3)])
            loader = make_loader(seed)
            for epoch in range(2):
                loader.set_epoch(epoch)
                for batch in loader:
                    executor.train_step(batch, optimizer)
            reference_params[seed] = model.state_dict()

        # Interleaved run.
        trainer = ShardParallelTrainer(num_devices=2)
        models = {}
        for seed in seeds:
            model = FeedForwardNetwork(config, seed=seed)
            models[seed] = model
            trainer.add_model(model, SGD(model.parameters(), lr=0.05), make_loader(seed),
                              [(0, 2), (2, 3)], model_id=f"seed{seed}")
        trainer.fit(num_epochs=2)

        for seed in seeds:
            for name, expected in reference_params[seed].items():
                actual = dict(models[seed].named_parameters())[name].data
                assert np.allclose(actual, expected, atol=1e-6), (seed, name)

    def test_device_assignment_staggers_models(self):
        trainer = ShardParallelTrainer(num_devices=2)
        data = make_classification(num_samples=32, num_features=16, num_classes=4,
                                   rng=np.random.default_rng(0))
        for seed in range(2):
            model = FeedForwardNetwork(FeedForwardConfig.tiny(), seed=seed)
            trainer.add_model(model, SGD(model.parameters(), lr=0.1),
                              DataLoader(data, batch_size=16), [(0, 1), (1, 3)])
        assert trainer.device_of(0, 0) != trainer.device_of(1, 0)
        assert trainer.num_models == 2

    def test_reports_per_model(self, classification_data):
        trainer = ShardParallelTrainer(num_devices=2)
        for seed in range(3):
            model = FeedForwardNetwork(FeedForwardConfig.tiny(), seed=seed)
            trainer.add_model(model, Adam(model.parameters(), lr=1e-2),
                              DataLoader(classification_data, batch_size=16, shuffle=True, seed=seed),
                              [(0, 1), (1, 2), (2, 3)], model_id=f"m{seed}")
        reports = trainer.fit(num_epochs=2)
        assert set(reports) == {"m0", "m1", "m2"}
        for report in reports.values():
            assert len(report.epochs) == 2
            assert report.epochs[1]["loss"] < report.epochs[0]["loss"]


class TestCheckpointing:
    def test_roundtrip(self, tmp_path, tiny_mlp):
        path = tmp_path / "model.npz"
        save_checkpoint(tiny_mlp, path, metadata={"epoch": 3})
        clone = FeedForwardNetwork(tiny_mlp.config, seed=99)
        assert not np.allclose(clone.blocks[0].linear.weight.data,
                               tiny_mlp.blocks[0].linear.weight.data)
        metadata = load_checkpoint(clone, path)
        assert np.allclose(clone.blocks[0].linear.weight.data,
                           tiny_mlp.blocks[0].linear.weight.data)
        assert int(metadata["epoch"]) == 3

    def test_missing_file(self, tmp_path, tiny_mlp):
        with pytest.raises(CheckpointError):
            load_checkpoint(tiny_mlp, tmp_path / "missing.npz")

    def test_suffix_added_when_needed(self, tmp_path, tiny_mlp):
        path = tmp_path / "checkpoint"
        save_checkpoint(tiny_mlp, path)
        load_checkpoint(FeedForwardNetwork(tiny_mlp.config, seed=1), path)


class TestMmapAlignment:
    """Uncompressed archives must mmap to BLAS-aligned parameter views.

    Misaligned operands steer BLAS onto different kernels, which changes
    low-order result bits — so zero-copy serving would silently break the
    ``mmap == eager`` exactness guarantee.  The writer therefore pads zip
    members so every array's file offset is 64-byte aligned, and the mapper
    falls back to a copy for any stray unaligned member.
    """

    @staticmethod
    def _memmap_backed(values: np.ndarray) -> bool:
        base = values
        while base is not None:
            if isinstance(base, np.memmap):
                return True
            base = getattr(base, "base", None)
        return False

    def test_uncompressed_archives_align_member_data(self, tmp_path, tiny_mlp):
        from repro.training.checkpoint import map_checkpoint_parameters

        path = tmp_path / "aligned.npz"
        save_checkpoint(tiny_mlp, path)
        clone = FeedForwardNetwork(tiny_mlp.config, seed=99)
        map_checkpoint_parameters(clone, path)
        for (name, expected), (_, mapped) in zip(
            tiny_mlp.named_parameters(), clone.named_parameters()
        ):
            assert np.array_equal(expected.data, mapped.data), name
            # Zero-copy (a true mmap view), at a BLAS-aligned address — the
            # aligned writer means the copy fallback never fires here.
            assert self._memmap_backed(mapped.data), name
            assert mapped.data.ctypes.data % 64 == 0, (
                f"{name} mapped at a misaligned address"
            )

    def test_aligned_archive_still_loads_with_numpy(self, tmp_path, tiny_mlp):
        # The alignment padding lives in zip extra fields: a plain np.load
        # (and therefore every existing consumer) reads the archive as-is.
        path = tmp_path / "aligned.npz"
        save_checkpoint(tiny_mlp, path)
        with np.load(path) as archive:
            for name, parameter in tiny_mlp.named_parameters():
                assert np.array_equal(archive[f"param::{name}"], parameter.data)

    def test_mmap_forward_equals_eager_forward(self, tmp_path, tiny_mlp):
        from repro.training.checkpoint import map_checkpoint_parameters

        path = tmp_path / "aligned.npz"
        save_checkpoint(tiny_mlp, path)
        mapped = FeedForwardNetwork(tiny_mlp.config, seed=99)
        map_checkpoint_parameters(mapped, path)
        rng = np.random.default_rng(17)
        for rows in (1, 3, 8):  # GEMV and GEMM shapes both stay exact
            features = rng.normal(
                size=(rows, tiny_mlp.config.input_dim)
            ).astype(np.float32)
            batch = {"features": features}
            expected = tiny_mlp.forward(Batch(arrays=batch))
            actual = mapped.forward(Batch(arrays=batch))
            assert np.array_equal(expected.data, actual.data), rows


class TestSchedulerCheckpointing:
    """Mid-trial resume with a warmup/decay schedule must be bit-identical."""

    def _trainer(self, seed=0):
        from repro.optim import LinearWarmupDecay

        data = make_classification(num_samples=64, num_features=16, num_classes=4,
                                   rng=np.random.default_rng(3))
        model = FeedForwardNetwork(FeedForwardConfig.tiny(), seed=seed)
        optimizer = Adam(model.parameters(), lr=1e-2)
        scheduler = LinearWarmupDecay(optimizer, warmup_steps=3, total_steps=12)
        loader = DataLoader(data, batch_size=16, shuffle=True, seed=seed)
        return Trainer(model, optimizer, loader, scheduler=scheduler)

    def test_resume_is_bit_identical(self, tmp_path):
        straight = self._trainer()
        straight.fit(num_epochs=2)

        resumed = self._trainer()
        resumed.fit(num_epochs=1)
        path = tmp_path / "mid.npz"
        save_checkpoint(resumed.model, path, optimizer=resumed.optimizer,
                        scheduler=resumed.scheduler)

        fresh = self._trainer()
        load_checkpoint(fresh.model, path, optimizer=fresh.optimizer,
                        scheduler=fresh.scheduler)
        assert fresh.scheduler.step_count == resumed.scheduler.step_count
        # Resume epoch numbering where the interrupted run stopped, so the
        # shuffle order matches the uninterrupted baseline.
        fresh.loader.set_epoch(1)
        for batch in fresh.loader:
            fresh.train_step(batch)

        for (name, expected), (_, actual) in zip(
            straight.model.named_parameters(), fresh.model.named_parameters()
        ):
            assert np.array_equal(expected.data, actual.data), name
        assert straight.optimizer.lr == fresh.optimizer.lr
        assert straight.scheduler.step_count == fresh.scheduler.step_count

    def test_scheduler_restore_requires_sched_section(self, tmp_path):
        trainer = self._trainer()
        path = tmp_path / "no_sched.npz"
        save_checkpoint(trainer.model, path, optimizer=trainer.optimizer)
        other = self._trainer()
        with pytest.raises(CheckpointError):
            load_checkpoint(other.model, path, optimizer=other.optimizer,
                            scheduler=other.scheduler)


class TestNoGradEvaluation:
    """Eval paths must skip the autograd graph without changing any value."""

    def _setup(self):
        data = make_classification(num_samples=48, num_features=16, num_classes=4,
                                   rng=np.random.default_rng(5))
        model = FeedForwardNetwork(FeedForwardConfig.tiny(), seed=2)
        return model, DataLoader(data, batch_size=16)

    def test_evaluate_matches_graph_building_loop(self):
        from repro.training import evaluate_model

        model, loader = self._setup()
        # The pre-no_grad behaviour, reproduced by hand: full graphs built.
        losses, accuracies = [], []
        model.eval()
        for batch in loader:
            outputs = model.forward(batch)
            losses.append(model.compute_loss(outputs, batch).item())
            accuracies.append(float((model.predict(outputs) == batch["label"]).mean()))
        model.train()
        expected = {"loss": float(np.mean(losses)), "accuracy": float(np.mean(accuracies))}

        metrics = evaluate_model(model, loader)
        assert metrics == expected  # bit-identical, not merely close

    def test_evaluate_builds_no_graph(self):
        from repro.autograd import is_grad_enabled

        model, loader = self._setup()
        seen = []
        original = model.compute_loss
        model.compute_loss = lambda outputs, batch: (
            seen.append((is_grad_enabled(), outputs._ctx)),
            original(outputs, batch),
        )[1]
        Trainer(model, Adam(model.parameters(), lr=1e-3), loader).evaluate(loader)
        assert seen and all(enabled is False for enabled, _ in seen)
        assert all(ctx is None for _, ctx in seen)

    def test_forward_only_builds_no_graph_and_matches(self, tiny_mlp, classification_batch):
        executor = ShardedModelExecutor(tiny_mlp, [(0, 1), (1, 3)])
        sharded = executor.forward_only(classification_batch)
        whole = tiny_mlp.forward(classification_batch)
        assert np.array_equal(sharded.data, whole.data)
        assert sharded._ctx is None and sharded.requires_grad is False

    def test_accuracy_on_batch_builds_no_graph(self, tiny_mlp, classification_batch):
        seen = []
        original = tiny_mlp.predict
        # The outputs handed to predict must carry no autograd context: the
        # forward ran under no_grad.
        tiny_mlp.predict = lambda outputs: (
            seen.append(outputs._ctx),
            original(outputs),
        )[1]
        accuracy = tiny_mlp.accuracy_on_batch(classification_batch)
        assert 0.0 <= accuracy <= 1.0
        assert seen == [None]
