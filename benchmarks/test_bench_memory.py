"""E12 — spilled execution: throughput and peak device bytes vs resident.

One model (uniform square MLP, 4 shards over 2 devices) trains full
optimisation steps through :class:`ShardedModelExecutor` /
:class:`ShardParallelTrainer`, once fully resident and once per *spill
fraction* — the per-device :class:`~repro.memory.DeviceArena` budget as a
fraction of the device's resident need (``1.0`` = everything fits, ``0.55``
= barely one shard at a time, maximum pressure).  For each configuration
the benchmark records steps/sec, the arena's peak bytes, and the spill
traffic, and asserts the subsystem's two contracts:

* **exactness** — the loss trajectory at every spill fraction is
  bit-identical (``array_equal``) to the resident baseline, always;
* **bounded memory** — peak device bytes never exceed the arena budget,
  and every spilled configuration peaks strictly below the resident need.

Results land in ``benchmarks/BENCH_memory.json``.  Like the hotpath
benchmark, the committed JSON is only rewritten by an explicit
``REPRO_PERF_LONG=1`` run, and the CI ``perf`` job (``REPRO_PERF_CHECK=1``)
fails when freshly measured steps/sec drop below ``REPRO_PERF_TOLERANCE``
of the committed numbers (label a PR ``skip-perf`` to opt out).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.data import DataLoader
from repro.data.dataset import ArrayDataset
from repro.memory import DeviceArena, Prefetcher, SpillManager
from repro.models import FeedForwardConfig, FeedForwardNetwork
from repro.optim import Adam
from repro.training import ShardedModelExecutor

from conftest import print_report

BENCH_PATH = Path(__file__).resolve().parent / "BENCH_memory.json"

WIDTH = 128
BATCH = 32
NUM_SHARDS = 4
NUM_DEVICES = 2
BOUNDARIES = [(0, 1), (1, 2), (2, 3), (3, 4)]
#: arena budget as a fraction of the per-device resident need; 1.0 spills
#: nothing, 0.55 holds barely one of a device's two (uniform) shards
FRACTIONS = (1.0, 0.75, 0.55)

_PERF_CHECK = os.environ.get("REPRO_PERF_CHECK", "") not in ("", "0")
_PERF_LONG = os.environ.get("REPRO_PERF_LONG", "") not in ("", "0")
_STRICT = (
    _PERF_CHECK or _PERF_LONG
    or os.environ.get("REPRO_PERF_STRICT", "") not in ("", "0")
)

#: fraction of the committed steps/sec the perf job requires
PERF_TOLERANCE = float(os.environ.get("REPRO_PERF_TOLERANCE", "0.5"))

#: floor on spilled throughput relative to resident, asserted in strict mode
#: (host "transfers" are in-process memcpys here, so the overhead is copy +
#: bookkeeping, not PCIe)
MIN_SPILL_THROUGHPUT = 0.10


# --------------------------------------------------------------------------- #
# Workload
# --------------------------------------------------------------------------- #
def _model() -> FeedForwardNetwork:
    config = FeedForwardConfig(
        input_dim=WIDTH, hidden_dims=(WIDTH,) * 3, num_classes=WIDTH
    )
    return FeedForwardNetwork(config, seed=7)


def _batches(count: int = 4):
    rng = np.random.default_rng(13)
    data = ArrayDataset(
        features=rng.normal(size=(BATCH * count, WIDTH)).astype(np.float32),
        label=rng.integers(0, WIDTH, size=(BATCH * count,)).astype(np.int64),
    )
    return list(DataLoader(data, batch_size=BATCH))


def _shard_nbytes(executor: ShardedModelExecutor, optimizer: Adam) -> list:
    sizes = []
    for shard in range(executor.num_shards):
        params = executor.shard_parameters(shard)
        sizes.append(
            sum(p.data.nbytes for p in params)
            + sum(p.data.size for p in params) * optimizer.state_bytes_per_parameter
        )
    return sizes


def _device_resident_need(sizes: list) -> int:
    """Max over devices of the resident bytes its round-robin shards need."""
    per_device = [0] * NUM_DEVICES
    for shard, nbytes in enumerate(sizes):
        per_device[shard % NUM_DEVICES] += nbytes
    return max(per_device)


def _run_config(fraction, steps: int, measure_seconds: float):
    """Train ``steps`` fixed batches; then measure steps/sec over a window.

    Returns ``(steps_per_sec, peak_device_bytes, losses, spill_counters)``.
    ``fraction=None`` is the fully resident baseline (no manager); its peak
    is the per-device resident need itself.
    """
    model = _model()
    optimizer = Adam(model.parameters(), lr=1e-3)
    executor = ShardedModelExecutor(model, BOUNDARIES)
    sizes = _shard_nbytes(executor, optimizer)
    need = _device_resident_need(sizes)
    manager = None
    if fraction is not None:
        budget = int(need * fraction)
        manager = SpillManager(
            [DeviceArena(f"dev{i}", budget) for i in range(NUM_DEVICES)],
            policy="schedule-aware",
            prefetcher=Prefetcher(),
        )
        executor.bind_memory(
            manager, optimizer,
            device_of=lambda shard: f"dev{shard % NUM_DEVICES}",
        )
    batches = _batches()

    losses = [
        executor.train_step(batches[step % len(batches)], optimizer)
        for step in range(steps)
    ]

    count = 0
    started = time.perf_counter()
    while True:
        executor.train_step(batches[count % len(batches)], optimizer)
        count += 1
        elapsed = time.perf_counter() - started
        if elapsed >= measure_seconds and count >= 3:
            break
    steps_per_sec = count / elapsed

    if manager is None:
        peak = need
        counters = {"evictions": 0, "bytes_fetched": 0, "bytes_evicted": 0}
    else:
        peak = max(arena.peak_bytes for arena in manager.arenas.values())
        stats = manager.stats.as_dict()
        counters = {
            "evictions": stats["evictions"],
            "bytes_fetched": stats["bytes_fetched"],
            "bytes_evicted": stats["bytes_evicted"],
        }
        if manager.prefetcher is not None:
            manager.prefetcher.close()
    return steps_per_sec, int(peak), np.asarray(losses), counters


def _run_benchmark() -> dict:
    if _PERF_CHECK or _PERF_LONG:
        steps, measure_seconds = 8, 2.0
    else:
        steps, measure_seconds = 8, 0.4
    results = {}
    resident_sps, resident_peak, resident_losses, _ = _run_config(
        None, steps, measure_seconds
    )
    results["resident"] = {
        "steps_per_sec": round(resident_sps, 2),
        "peak_device_bytes": resident_peak,
        "throughput_vs_resident": 1.0,
        "evictions": 0,
        "bytes_fetched": 0,
        "bytes_evicted": 0,
        "losses": resident_losses,
    }
    for fraction in FRACTIONS:
        sps, peak, losses, counters = _run_config(fraction, steps, measure_seconds)
        results[f"budget_{fraction:.2f}"] = {
            "steps_per_sec": round(sps, 2),
            "peak_device_bytes": peak,
            "throughput_vs_resident": round(sps / resident_sps, 3),
            "losses": losses,
            **counters,
        }
    return results


# --------------------------------------------------------------------------- #
# Tests
# --------------------------------------------------------------------------- #
def test_memory_throughput_and_peak_bytes():
    """E12: emits BENCH_memory.json; asserts exactness + bounded memory."""
    results = _run_benchmark()
    resident = results["resident"]

    rows, payload = [], {}
    for name, record in results.items():
        payload[name] = {k: v for k, v in record.items() if k != "losses"}
        rows.append([
            name,
            f"{record['steps_per_sec']:.1f}",
            f"{record['throughput_vs_resident']:.2f}x",
            f"{record['peak_device_bytes'] / 1024:.0f}",
            str(record["evictions"]),
            f"{record['bytes_fetched'] / 1024:.0f}",
        ])
    print_report(
        "E12 · spilled execution: throughput and peak device bytes vs resident",
        ["config", "steps/s", "vs resident", "peak KiB", "evictions", "fetched KiB"],
        rows,
    )

    # Exactness: every spill fraction reproduces the resident trajectory
    # bit for bit — the subsystem's core contract, asserted on any machine.
    for name, record in results.items():
        assert np.array_equal(record["losses"], resident["losses"]), (
            f"{name}: spilled losses diverged from the resident baseline"
        )

    # Bounded memory: budgets are respected and spilling buys real headroom.
    need = resident["peak_device_bytes"]
    for fraction in FRACTIONS:
        record = results[f"budget_{fraction:.2f}"]
        assert record["peak_device_bytes"] <= int(need * fraction)
        if fraction < 1.0:
            assert record["peak_device_bytes"] < need
            assert record["evictions"] > 0, (
                f"budget fraction {fraction} should force evictions"
            )
    # Full budget spills nothing.
    assert results["budget_1.00"]["evictions"] == 0

    if _STRICT:
        for fraction in FRACTIONS:
            record = results[f"budget_{fraction:.2f}"]
            assert record["throughput_vs_resident"] >= MIN_SPILL_THROUGHPUT

    if _PERF_LONG or not BENCH_PATH.exists():
        BENCH_PATH.write_text(
            json.dumps(
                {
                    "experiment": "E12-memory",
                    "configs": payload,
                    "note": (
                        "One step = forward + backward + Adam update of a "
                        f"4-shard uniform MLP (width {WIDTH}, batch {BATCH}) on "
                        f"{NUM_DEVICES} arenas; budget_F caps each arena at F x "
                        "the device's resident need.  Loss trajectories are "
                        "bit-identical across all configs by assertion.  "
                        "Regenerate with REPRO_PERF_LONG=1."
                    ),
                },
                indent=2,
            )
            + "\n"
        )


@pytest.mark.skipif(not _PERF_CHECK, reason="perf gate runs with REPRO_PERF_CHECK=1")
def test_no_regression_versus_committed_json():
    """CI perf gate: fresh steps/sec must stay within tolerance of the JSON."""
    committed = json.loads(BENCH_PATH.read_text())["configs"]
    fresh = _run_benchmark()
    failures = []
    for name, record in committed.items():
        floor = record["steps_per_sec"] * PERF_TOLERANCE
        measured = fresh[name]["steps_per_sec"]
        if measured < floor:
            failures.append(
                f"{name}: {measured:.2f} steps/s < {floor:.2f} "
                f"({PERF_TOLERANCE:.0%} of committed {record['steps_per_sec']:.2f})"
            )
    assert not failures, "performance regressions: " + "; ".join(failures)
