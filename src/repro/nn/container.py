"""Container modules: :class:`Sequential` and :class:`ModuleList`."""

from __future__ import annotations

from typing import Iterable, Iterator, List

from repro.autograd.tensor import Tensor
from repro.nn.module import Module


class Sequential(Module):
    """Chains child modules, feeding each one's output to the next.

    Models built as a ``Sequential`` of blocks are directly consumable by the
    sharding layer: a shard is simply a contiguous slice of the chain.
    """

    def __init__(self, *layers: Module):
        super().__init__()
        self._layer_list: List[Module] = []
        for layer in layers:
            self.append(layer)

    def append(self, layer: Module) -> "Sequential":
        index = len(self._layer_list)
        self._layer_list.append(layer)
        self.register_module(str(index), layer)
        return self

    def forward(self, x: Tensor) -> Tensor:
        for layer in self._layer_list:
            x = layer(x)
        return x

    def __len__(self) -> int:
        return len(self._layer_list)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._layer_list)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return Sequential(*self._layer_list[index])
        return self._layer_list[index]


class ModuleList(Module):
    """Holds an ordered list of sub-modules without defining ``forward``."""

    def __init__(self, modules: Iterable[Module] = ()):
        super().__init__()
        self._module_list: List[Module] = []
        for module in modules:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        index = len(self._module_list)
        self._module_list.append(module)
        self.register_module(str(index), module)
        return self

    def __len__(self) -> int:
        return len(self._module_list)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._module_list)

    def __getitem__(self, index: int) -> Module:
        return self._module_list[index]

    def forward(self, *args, **kwargs):  # pragma: no cover - containers have no forward
        raise NotImplementedError("ModuleList does not define forward; iterate over it instead")
