"""Per-device byte arenas: the memory ledgers spilled execution runs against.

A :class:`DeviceArena` is the real-engine counterpart of the simulator's
:class:`~repro.cluster.device.Device` ledger: a named byte budget with keyed
allocations, peak tracking, and (optionally) a bridge that mirrors every
charge into a ``cluster.Device`` so simulated and real accounting agree.
The :class:`~repro.memory.spill.SpillManager` charges shard residency here;
nothing in this module knows about shards or tensors.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

from repro.cluster.device import Device
from repro.exceptions import ConfigurationError, MemoryBudgetError


class DeviceArena:
    """A thread-safe byte ledger for one device's memory budget.

    Allocations are keyed so the same logical object cannot be
    double-charged and releases name exactly what they free — the same
    discipline as the simulator's :class:`~repro.cluster.device.Device`.
    When ``device`` is given, every allocate/release is mirrored into that
    device's ledger, bridging the real engine's residency accounting onto
    the simulated cluster (peak memory reported by either side matches).
    """

    def __init__(self, name: str, capacity_bytes: int, device: Optional[Device] = None):
        if capacity_bytes <= 0:
            raise ConfigurationError(
                f"arena {name!r}: capacity must be positive, got {capacity_bytes}"
            )
        if device is not None and capacity_bytes > device.spec.memory_bytes:
            raise ConfigurationError(
                f"arena {name!r}: budget {capacity_bytes} exceeds the bridged "
                f"device's {device.spec.memory_bytes}-byte capacity"
            )
        self.name = name
        self.capacity_bytes = int(capacity_bytes)
        self.device = device
        self.peak_bytes = 0
        self._allocations: Dict[str, int] = {}
        self._lock = threading.RLock()

    @classmethod
    def for_device(cls, device: Device, budget_bytes: Optional[int] = None) -> "DeviceArena":
        """Build an arena bridged to a simulated device.

        ``budget_bytes`` defaults to the device's full capacity; a smaller
        budget models reserving part of the device for activations or other
        frameworks.
        """
        budget = device.spec.memory_bytes if budget_bytes is None else budget_bytes
        return cls(device.name, budget, device=device)

    # ------------------------------------------------------------------ #
    @property
    def used_bytes(self) -> int:
        """Bytes currently charged to the arena."""
        with self._lock:
            return sum(self._allocations.values())

    @property
    def free_bytes(self) -> int:
        """Bytes still available under the budget."""
        return self.capacity_bytes - self.used_bytes

    def holds(self, key: str) -> bool:
        """Whether an allocation named ``key`` is currently charged."""
        with self._lock:
            return key in self._allocations

    def allocate(self, key: str, num_bytes: int) -> None:
        """Charge ``num_bytes`` under ``key``; raises when over budget.

        Raises :class:`~repro.exceptions.MemoryBudgetError` when the arena
        cannot fit the allocation, and :class:`ConfigurationError` on a
        duplicate key or negative size.
        """
        if num_bytes < 0:
            raise ConfigurationError(f"allocation size must be non-negative, got {num_bytes}")
        with self._lock:
            if key in self._allocations:
                raise ConfigurationError(f"allocation key {key!r} already present on {self.name}")
            if num_bytes > self.free_bytes:
                raise MemoryBudgetError(
                    f"arena {self.name!r}: requested {num_bytes} bytes but only "
                    f"{self.free_bytes} of {self.capacity_bytes} are free"
                )
            if self.device is not None:
                self.device.allocate(key, num_bytes)
            self._allocations[key] = int(num_bytes)
            used = sum(self._allocations.values())
            if used > self.peak_bytes:
                self.peak_bytes = used

    def release(self, key: str) -> int:
        """Free the allocation under ``key`` and return its size."""
        with self._lock:
            if key not in self._allocations:
                raise ConfigurationError(f"no allocation named {key!r} on arena {self.name}")
            if self.device is not None and self.device.holds(key):
                self.device.release(key)
            return self._allocations.pop(key)

    def fits(self, num_bytes: int) -> bool:
        """Whether ``num_bytes`` would fit right now (advisory — not a reservation)."""
        return num_bytes <= self.free_bytes

    def reset(self) -> None:
        """Clear all allocations and peak tracking (between experiments)."""
        with self._lock:
            if self.device is not None:
                for key in list(self._allocations):
                    if self.device.holds(key):
                        self.device.release(key)
            self._allocations.clear()
            self.peak_bytes = 0

    def __repr__(self) -> str:
        return (
            f"DeviceArena({self.name}, {self.used_bytes}/{self.capacity_bytes} bytes"
            f"{', bridged' if self.device is not None else ''})"
        )
