"""Simulated multi-GPU cluster: devices, interconnect, and event-driven execution."""

from repro.cluster.device import DeviceSpec, Device, GPU_PRESETS
from repro.cluster.interconnect import LinkSpec, Interconnect, INTERCONNECT_PRESETS
from repro.cluster.cluster import Cluster
from repro.cluster.simulator import SimTask, ClusterSimulator
from repro.cluster.trace import TaskRecord, ExecutionTrace

__all__ = [
    "DeviceSpec",
    "Device",
    "GPU_PRESETS",
    "LinkSpec",
    "Interconnect",
    "INTERCONNECT_PRESETS",
    "Cluster",
    "SimTask",
    "ClusterSimulator",
    "TaskRecord",
    "ExecutionTrace",
]
