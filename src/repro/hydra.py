"""Top-level facade: the API a Hydra user would program against.

This module is a thin veneer over the layered API described in ``DESIGN.md``
(facade → searcher → backend → engine):

* **Simulation** (:meth:`HydraSession.simulate`, :meth:`HydraSession.compare_strategies`)
  — cost-model-driven execution of BERT-Large-scale multi-model workloads on
  a simulated GPU cluster; produces makespan/utilization/memory numbers.
* **Real training** (:func:`run_model_selection`) — actually trains a set of
  candidate models on the numpy engine with Hydra-style shard-parallel
  interleaving, and returns the ranked trial results.

For anything richer — grid/random/ASHA searchers, callbacks, early stopping,
swapping execution engines — declare a :class:`repro.api.Experiment` and
pick a backend; ``run_model_selection`` itself is implemented that way.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.cluster.cluster import Cluster
from repro.data.dataloader import DataLoader
from repro.exceptions import ConfigurationError, SchedulingError
from repro.models.base import ShardableModel
from repro.optim.optimizer import Optimizer
from repro.profiling.cost_model import ModelProfile
from repro.scheduler.base import ScheduleResult, Strategy, StrategyOutcome
from repro.scheduler.hybrid import HybridShardDataParallelStrategy
from repro.scheduler.model_parallel import ModelParallelStrategy
from repro.scheduler.policies import get_policy
from repro.scheduler.shard_parallel import ShardParallelStrategy
from repro.scheduler.single_device import SingleDeviceStrategy
from repro.scheduler.spill import SpilledShardParallelStrategy
from repro.scheduler.task import TrainingJob
from repro.scheduler.task_parallel import TaskParallelStrategy
from repro.selection.experiment import SelectionResult, TrialConfig
from repro.sharding.partitioner import make_plan
from repro.sharding.plan import ShardingPlan

#: fraction of device memory the planner leaves free for workspace/fragmentation
_MEMORY_HEADROOM = 0.9

_STRATEGIES: Dict[str, Callable[..., Strategy]] = {
    "single-device": SingleDeviceStrategy,
    "task-parallel": TaskParallelStrategy,
    "model-parallel": ModelParallelStrategy,
    "shard-parallel": ShardParallelStrategy,
    "hybrid": HybridShardDataParallelStrategy,
    "spilled-shard-parallel": SpilledShardParallelStrategy,
}


@dataclass(frozen=True)
class HydraConfig:
    """Cluster and scheduling configuration for a Hydra session."""

    num_devices: int = 4
    gpu: str = "v100-16gb"
    link: str = "pcie-gen3"
    policy: str = "critical_path"
    default_batch_size: int = 32

    def __post_init__(self) -> None:
        if self.num_devices <= 0:
            raise ConfigurationError("num_devices must be positive")
        if self.default_batch_size <= 0:
            raise ConfigurationError("default_batch_size must be positive")


class HydraSession:
    """Holds a simulated cluster and provides planning / scheduling entry points."""

    def __init__(self, config: Optional[HydraConfig] = None):
        self.config = config if config is not None else HydraConfig()
        self.cluster = Cluster.single_server(
            num_devices=self.config.num_devices, gpu=self.config.gpu, link=self.config.link
        )

    # ------------------------------------------------------------------ #
    # Planning
    # ------------------------------------------------------------------ #
    def plan_model(
        self,
        model_id: str,
        profile: ModelProfile,
        batch_size: Optional[int] = None,
        num_shards: Optional[int] = None,
        strategy: str = "min_max",
    ) -> ShardingPlan:
        """Shard a model for this session's devices.

        With ``num_shards=None`` the planner picks the smallest shard count
        that fits the per-device memory budget (90 % of capacity).
        """
        batch = batch_size if batch_size is not None else self.config.default_batch_size
        if num_shards is not None:
            return make_plan(model_id, profile, batch_size=batch, num_shards=num_shards,
                             strategy=strategy)
        # Find the minimal shard count that fits the budget, then rebalance the
        # boundaries with the min-max partitioner so shards are evenly sized
        # (greedy bin-packing alone can leave one huge shard and one sliver).
        device_budget = int(self.cluster.devices[0].spec.memory_bytes * _MEMORY_HEADROOM)
        minimal = make_plan(model_id, profile, batch_size=batch,
                            memory_limit_bytes=device_budget)
        shard_count = minimal.num_shards
        while True:
            plan = make_plan(model_id, profile, batch_size=batch, num_shards=shard_count,
                             strategy=strategy)
            if plan.max_shard_working_bytes <= device_budget:
                break
            shard_count += 1
            if shard_count > len(profile):
                raise ConfigurationError(
                    f"model {model_id!r} cannot be partitioned to fit a "
                    f"{device_budget}-byte device budget"
                )
        if plan.num_shards > len(self.cluster):
            raise ConfigurationError(
                f"model {model_id!r} needs {plan.num_shards} shards but the cluster has "
                f"{len(self.cluster)} devices"
            )
        return plan

    def make_job(
        self,
        model_id: str,
        profile: ModelProfile,
        num_epochs: int = 1,
        batches_per_epoch: int = 1,
        batch_size: Optional[int] = None,
        num_shards: Optional[int] = None,
    ) -> TrainingJob:
        """Plan a model and wrap it into a :class:`TrainingJob`."""
        batch = batch_size if batch_size is not None else self.config.default_batch_size
        plan = self.plan_model(model_id, profile, batch_size=batch, num_shards=num_shards)
        return TrainingJob(
            model_id=model_id,
            plan=plan,
            num_epochs=num_epochs,
            batches_per_epoch=batches_per_epoch,
            samples_per_batch=batch,
        )

    # ------------------------------------------------------------------ #
    # Simulation
    # ------------------------------------------------------------------ #
    def make_strategy(self, name: str, **kwargs) -> Strategy:
        if name not in _STRATEGIES:
            raise ConfigurationError(
                f"unknown strategy {name!r}; available: {sorted(_STRATEGIES)}"
            )
        factory = _STRATEGIES[name]
        if name in ("shard-parallel", "hybrid", "spilled-shard-parallel") and "policy" not in kwargs:
            kwargs["policy"] = get_policy(self.config.policy)
        return factory(**kwargs)

    def simulate(self, jobs: Sequence[TrainingJob], strategy: str = "shard-parallel",
                 **strategy_kwargs) -> ScheduleResult:
        """Simulate running ``jobs`` under one strategy on a fresh cluster."""
        self.cluster.reset()
        return self.make_strategy(strategy, **strategy_kwargs).schedule(jobs, self.cluster)

    def compare_strategies(
        self,
        jobs: Sequence[TrainingJob],
        strategies: Sequence[str] = ("task-parallel", "model-parallel", "shard-parallel"),
    ) -> Dict[str, StrategyOutcome]:
        """Simulate the same jobs under several strategies.

        Infeasibility (e.g. classic task parallelism confronted with a
        larger-than-device model) is a *result* of the comparison, not an
        error: such strategies come back as a skipped
        :class:`StrategyOutcome` carrying the reason.
        """
        outcomes: Dict[str, StrategyOutcome] = {}
        for name in strategies:
            self.cluster.reset()
            try:
                result = self.make_strategy(name).schedule(jobs, self.cluster)
            except SchedulingError as error:
                outcomes[name] = StrategyOutcome(strategy=name, skip_reason=str(error))
            else:
                outcomes[name] = StrategyOutcome(strategy=name, result=result)
        return outcomes

    def available_strategies(self) -> List[str]:
        return sorted(_STRATEGIES)


#: a model builder returns (model, optimizer, dataloader) for one trial
ModelBuilder = Callable[[], Tuple[ShardableModel, Optimizer, DataLoader]]


def run_model_selection(
    builders: Dict[str, ModelBuilder],
    num_devices: int = 2,
    num_epochs: int = 1,
    num_shards: Optional[int] = None,
    objective: str = "loss",
    mode: str = "min",
    workers: Optional[int] = None,
    registry=None,
) -> SelectionResult:
    """Really train a set of candidate models with shard-parallel interleaving.

    ``builders`` maps trial ids to zero-argument callables producing the
    model, its optimizer, and its data loader.  Every model is split into
    ``num_shards`` shards (default: one shard per block, capped at the device
    count) and trained for ``num_epochs`` epochs; the returned
    :class:`SelectionResult` ranks trials by their final-epoch ``objective``.

    ``workers`` > 1 trains the candidates concurrently on a worker pool (each
    in its own single-model trainer) instead of interleaving them in one
    shared trainer; rankings are identical either way.  A trial that raises
    becomes a :class:`~repro.selection.experiment.FailedTrial` in the result
    rather than aborting the run.

    ``registry`` (a :class:`~repro.serving.ModelRegistry`) publishes every
    candidate's trained parameters under its trial id, so the winner can be
    deployed afterwards::

        result = run_model_selection(builders, registry=registry)
        server = result.deploy(lambda t: builders[t.trial_id]()[0],
                               registry=registry)

    This is a facade over :class:`repro.api.Experiment` with a
    :class:`repro.api.ShardParallelBackend` and a fixed trial list.
    """
    from repro.api import Budget, Experiment, FixedSearcher, ShardParallelBackend

    if not builders:
        raise ConfigurationError("run_model_selection needs at least one model builder")
    trials = [
        TrialConfig(trial_id=trial_id, hyperparameters={}) for trial_id in builders
    ]
    backend = ShardParallelBackend(
        builder=lambda trial: builders[trial.trial_id](),
        num_devices=num_devices,
        num_shards=num_shards,
        registry=registry,
    )
    experiment = Experiment(
        searcher=FixedSearcher(trials, method="hydra_shard_parallel"),
        backend=backend,
        objective=objective,
        mode=mode,
        budget=Budget(epochs_per_trial=num_epochs),
        name="run_model_selection",
    )
    return experiment.run(workers=workers)
