"""JSON (de)serialisation helpers tolerant of numpy scalar types."""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any

import numpy as np


class _NumpyJSONEncoder(json.JSONEncoder):
    """JSON encoder that understands numpy scalars/arrays and dataclasses."""

    def default(self, o: Any) -> Any:
        if isinstance(o, (np.integer,)):
            return int(o)
        if isinstance(o, (np.floating,)):
            return float(o)
        if isinstance(o, (np.bool_,)):
            return bool(o)
        if isinstance(o, np.ndarray):
            return o.tolist()
        if dataclasses.is_dataclass(o) and not isinstance(o, type):
            return dataclasses.asdict(o)
        return super().default(o)


def to_json(obj: Any, path: str | Path | None = None, indent: int = 2) -> str:
    """Serialise ``obj`` to a JSON string, optionally writing it to ``path``."""
    text = json.dumps(obj, cls=_NumpyJSONEncoder, indent=indent, sort_keys=True)
    if path is not None:
        Path(path).write_text(text)
    return text


def from_json(source: str | Path) -> Any:
    """Parse JSON from a string or a file path."""
    if isinstance(source, Path) or (isinstance(source, str) and "\n" not in source and source.endswith(".json")):
        return json.loads(Path(source).read_text())
    return json.loads(source)
