"""End-to-end integration tests crossing module boundaries.

These tests exercise the complete pipelines the paper describes: profiling a
model, sharding it for the cluster, scheduling a multi-model selection run,
and really training candidate models with shard-parallel interleaving.
"""

import numpy as np
import pytest

from repro import HydraConfig, HydraSession
from repro.cluster import Cluster
from repro.data import DataLoader, SyntheticSpanDataset, make_classification
from repro.models import BertConfig, BertForSpanPrediction, FeedForwardConfig, FeedForwardNetwork
from repro.optim import Adam, AdamW, LinearWarmupDecay
from repro.scheduler import (
    ModelParallelStrategy,
    ShardParallelStrategy,
    TaskParallelStrategy,
    TrainingJob,
)
from repro.selection import SearchSpace, grid_search
from repro.sharding import make_plan, validate_plan
from repro.cluster import GPU_PRESETS
from repro.training import ShardParallelTrainer, Trainer

GIB = 1024 ** 3


class TestSimulationPipeline:
    """Profile -> shard -> place -> simulate, at the paper's BERT-Large scale."""

    def test_full_bert_large_selection_simulation(self):
        session = HydraSession(HydraConfig(num_devices=4))
        profile = BertConfig.bert_large().profile(seq_len=384)

        # The paper's premise: the model cannot train on one 16 GB device.
        assert profile.total_memory_bytes(batch_size=32) > 16 * GIB

        jobs = [
            session.make_job(f"bert-config-{i}", profile, num_epochs=1,
                             batches_per_epoch=3, batch_size=32)
            for i in range(4)
        ]
        for job in jobs:
            validate_plan(job.plan, GPU_PRESETS["v100-16gb"])

        comparison = session.compare_strategies(jobs)
        shard = comparison["shard-parallel"].unwrap()
        model = comparison["model-parallel"].unwrap()
        assert not comparison["task-parallel"].feasible
        assert shard.makespan < model.makespan
        assert shard.cluster_utilization > model.cluster_utilization
        assert shard.throughput_samples_per_second > model.throughput_samples_per_second
        # Memory stays within the devices in both feasible strategies.
        for result in (shard, model):
            assert max(result.trace.peak_memory_bytes.values()) <= 16 * GIB

    def test_scaling_with_model_count_improves_hydra_advantage(self):
        """More candidate models -> more independent shards -> bigger win for Hydra."""
        cluster = Cluster.single_server(4, "v100-16gb")
        profile = BertConfig.bert_large().profile(seq_len=384)

        def speedup(num_models):
            jobs = [
                TrainingJob(
                    model_id=f"m{i}",
                    plan=make_plan(f"m{i}", profile, batch_size=16, num_shards=4),
                    num_epochs=1,
                    batches_per_epoch=2,
                    samples_per_batch=16,
                )
                for i in range(num_models)
            ]
            cluster.reset()
            mp = ModelParallelStrategy().schedule(jobs, cluster)
            cluster.reset()
            sp = ShardParallelStrategy().schedule(jobs, cluster)
            return sp.speedup_over(mp)

        assert speedup(4) > speedup(1)
        assert speedup(4) > 1.5


class TestRealTrainingPipeline:
    def test_grid_search_over_really_trained_mlps(self):
        """The radiologist scenario: a small grid of configs, each really trained."""
        data = make_classification(num_samples=128, num_features=16, num_classes=4,
                                   class_separation=3.0, rng=np.random.default_rng(0))

        def train_fn(trial, num_epochs):
            config = FeedForwardConfig(
                input_dim=16,
                hidden_dims=(trial.get("width"), trial.get("width") // 2),
                num_classes=4,
            )
            model = FeedForwardNetwork(config, seed=0)
            loader = DataLoader(data, batch_size=16, shuffle=True, seed=0)
            trainer = Trainer(model, Adam(model.parameters(), lr=trial.get("lr")), loader,
                              eval_loader=DataLoader(data, batch_size=32))
            report = trainer.fit(num_epochs)
            metrics = trainer.evaluate()
            return {"loss": report.final_loss, "accuracy": metrics["accuracy"]}

        space = SearchSpace({"lr": [1e-2, 1e-3], "width": [16, 32]})
        result = grid_search(space, train_fn, num_epochs=2, objective="accuracy", mode="max")
        assert len(result) == 4
        assert result.best().metric("accuracy") > 0.6

    def test_bert_finetuning_with_warmup_and_sharding(self):
        """Mini version of the paper's BERT/SQuAD fine-tuning workload."""
        config = BertConfig.tiny(vocab_size=64, seq_len=32)
        dataset = SyntheticSpanDataset(num_samples=48, seq_len=32, vocab_size=64,
                                       rng=np.random.default_rng(0))
        model = BertForSpanPrediction(config, seed=0)
        loader = DataLoader(dataset, batch_size=8, shuffle=True, seed=0)
        optimizer = AdamW(model.parameters(), lr=5e-3, weight_decay=0.01)
        scheduler = LinearWarmupDecay(optimizer, warmup_steps=5, total_steps=40)
        trainer = Trainer(model, optimizer, loader, scheduler=scheduler)
        report = trainer.fit(num_epochs=3)
        assert report.epochs[-1]["loss"] < report.epochs[0]["loss"]

    def test_multi_model_shard_parallel_training_converges(self):
        data = make_classification(num_samples=96, num_features=16, num_classes=4,
                                   class_separation=3.0, rng=np.random.default_rng(2))
        trainer = ShardParallelTrainer(num_devices=2)
        for index, lr in enumerate([3e-3, 1e-2, 3e-2]):
            model = FeedForwardNetwork(FeedForwardConfig.tiny(), seed=index)
            trainer.add_model(
                model,
                Adam(model.parameters(), lr=lr),
                DataLoader(data, batch_size=16, shuffle=True, seed=index),
                [(0, 1), (1, 3)],
                model_id=f"lr-{lr}",
            )
        reports = trainer.fit(num_epochs=4)
        assert all(r.epochs[-1]["loss"] < r.epochs[0]["loss"] for r in reports.values())


class TestPaperClaimsEndToEnd:
    def test_memory_reduction_headline(self):
        """§4.2: model parallelism gives ~3x per-device memory reduction for BERT-Large."""
        profile = BertConfig.bert_large().profile(seq_len=384)
        plan = make_plan("bert-large", profile, batch_size=32, num_shards=4)
        unsharded = profile.total_memory_bytes(batch_size=32)
        largest_shard = plan.max_shard_working_bytes
        reduction = unsharded / largest_shard
        assert reduction >= 3.0

    def test_desiderata_d1_d2_hold_on_default_testbed(self):
        session = HydraSession()
        profile = BertConfig.bert_large().profile(seq_len=384)
        jobs = [session.make_job(f"m{i}", profile, batches_per_epoch=2, batch_size=16,
                                 num_shards=4) for i in range(4)]
        shard = session.simulate(jobs, strategy="shard-parallel")
        model = session.simulate(jobs, strategy="model-parallel")
        # D1: utilization improves substantially; D2: throughput improves.
        assert shard.cluster_utilization > 2 * model.cluster_utilization
        assert shard.throughput_samples_per_second > 2 * model.throughput_samples_per_second
