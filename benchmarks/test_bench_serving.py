"""E13 — online serving: dynamic batching throughput at exact correctness.

One trained-shape MLP serves closed-loop traffic through a
:class:`~repro.serving.ModelServer` under three configurations sharing one
compute geometry (``COMPUTE_BATCH`` rows per forward):

* ``unbatched`` — ``max_batch_size=1``: every request pays a full
  geometry-sized forward alone (the no-batching baseline);
* ``batched`` — ``max_batch_size=COMPUTE_BATCH``: the dynamic batcher
  coalesces the closed-loop clients' requests into full micro-batches;
* ``batched_spilled`` — the batched configuration served by a spilled
  replica whose arena holds ~60 % of the model's parameter bytes.

Because the geometry is fixed, all three answer **bit-identically** — the
benchmark asserts ``array_equal`` between batched and unbatched responses
and between spilled and resident ones, then measures closed-loop
throughput and p50/p95/p99 latency per configuration.  The headline
number, policed by the CI ``perf`` job, is batched throughput ≥ 3× the
unbatched baseline (in practice it is far higher: batching amortises the
fixed-geometry forward across ``COMPUTE_BATCH`` requests).

Results land in ``benchmarks/BENCH_serving.json``; the committed JSON is
only rewritten by an explicit ``REPRO_PERF_LONG=1`` run, and the CI perf
job (``REPRO_PERF_CHECK=1``) fails when fresh throughput drops below
``REPRO_PERF_TOLERANCE`` of the committed numbers (label a PR
``skip-perf`` to opt out).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro.models import FeedForwardConfig, FeedForwardNetwork
from repro.serving import LoadGenerator, ModelServer, Replica, warm_up

from conftest import print_report

BENCH_PATH = Path(__file__).resolve().parent / "BENCH_serving.json"

WIDTH = 256
CLASSES = 64
COMPUTE_BATCH = 32
CLIENTS = 32
#: spilled arena budget as a fraction of the model's parameter bytes
SPILL_FRACTION = 0.6
#: the contract the CI perf job additionally gates on
MIN_BATCHED_SPEEDUP = 3.0

_PERF_CHECK = os.environ.get("REPRO_PERF_CHECK", "") not in ("", "0")
_PERF_LONG = os.environ.get("REPRO_PERF_LONG", "") not in ("", "0")

#: fraction of the committed throughput the perf job requires
PERF_TOLERANCE = float(os.environ.get("REPRO_PERF_TOLERANCE", "0.5"))


# --------------------------------------------------------------------------- #
# Workload
# --------------------------------------------------------------------------- #
def _model() -> FeedForwardNetwork:
    config = FeedForwardConfig(
        input_dim=WIDTH, hidden_dims=(WIDTH, WIDTH), num_classes=CLASSES
    )
    return FeedForwardNetwork(config, seed=17)


def _inputs(count: int = 64) -> np.ndarray:
    rng = np.random.default_rng(23)
    return rng.normal(size=(count, WIDTH)).astype(np.float32)


def _spill_budget(model: FeedForwardNetwork) -> int:
    return int(sum(p.data.nbytes for p in model.parameters()) * SPILL_FRACTION)


def _make_server(config: str) -> ModelServer:
    if config == "unbatched":
        return ModelServer(
            [Replica.resident(_model())],
            max_batch_size=1,
            compute_batch_size=COMPUTE_BATCH,
            max_wait_ms=0.0,
            max_queue=4 * CLIENTS,
        )
    if config == "batched":
        replica = Replica.resident(_model())
    elif config == "batched_spilled":
        model = _model()
        replica = Replica.spilled(
            model, memory_budget=_spill_budget(model), name="bench-spilled"
        )
    else:  # pragma: no cover - defensive
        raise ValueError(config)
    return ModelServer(
        [replica],
        max_batch_size=COMPUTE_BATCH,
        max_wait_ms=2.0,
        max_queue=4 * CLIENTS,
    )


def _measure(config: str, requests_per_client: int) -> dict:
    inputs = _inputs()
    with _make_server(config) as server:
        warm_up(server, inputs[:1], requests=4)
        report = LoadGenerator(
            server,
            lambda client, index: inputs[(client + index) % len(inputs)][None, :],
            clients=CLIENTS,
            requests_per_client=requests_per_client,
        ).run()
        server_metrics = server.metrics()
    record = report.as_dict()
    record["mean_batch_rows"] = server_metrics["mean_batch_rows"]
    return record


def _exactness_responses(config: str, inputs: np.ndarray) -> list:
    with _make_server(config) as server:
        handles = [server.submit(x[None, :]) for x in inputs]
        return [handle.result(timeout=30.0) for handle in handles]


def _run_benchmark() -> dict:
    requests_per_client = 40 if (_PERF_CHECK or _PERF_LONG) else 15
    results = {}
    for config in ("unbatched", "batched", "batched_spilled"):
        results[config] = _measure(config, requests_per_client)
    results["batched"]["speedup_vs_unbatched"] = round(
        results["batched"]["throughput_rps"] / results["unbatched"]["throughput_rps"], 2
    )
    results["batched_spilled"]["speedup_vs_unbatched"] = round(
        results["batched_spilled"]["throughput_rps"]
        / results["unbatched"]["throughput_rps"],
        2,
    )
    return results


# --------------------------------------------------------------------------- #
# Tests
# --------------------------------------------------------------------------- #
def test_serving_exactness_batched_vs_unbatched_vs_spilled():
    """E13 correctness bar: one geometry, bit-identical responses everywhere."""
    inputs = _inputs(count=48)
    unbatched = _exactness_responses("unbatched", inputs)
    batched = _exactness_responses("batched", inputs)
    spilled = _exactness_responses("batched_spilled", inputs)

    reference = Replica.resident(_model())
    for index, x in enumerate(inputs):
        expected = reference.infer({"features": x[None, :]}, pad_to=COMPUTE_BATCH)
        assert np.array_equal(batched[index], expected), "batched response diverged"
        assert np.array_equal(unbatched[index], expected), "unbatched response diverged"
        assert np.array_equal(spilled[index], expected), "spilled response diverged"


def test_serving_throughput_and_latency():
    """E13: emits BENCH_serving.json; asserts the ≥3x batching speedup."""
    results = _run_benchmark()

    rows = []
    for name, record in results.items():
        rows.append([
            name,
            f"{record['throughput_rps']:.0f}",
            f"{record.get('speedup_vs_unbatched', 1.0):.1f}x",
            f"{record['latency_p50_ms']:.2f}",
            f"{record['latency_p95_ms']:.2f}",
            f"{record['latency_p99_ms']:.2f}",
            f"{record['mean_batch_rows']:.1f}",
        ])
    print_report(
        "E13 · online serving: closed-loop throughput and latency by batching config",
        ["config", "req/s", "vs unbatched", "p50 ms", "p95 ms", "p99 ms", "rows/batch"],
        rows,
    )

    for name, record in results.items():
        assert record["rejected"] == 0 and record["timed_out"] == 0, (
            f"{name}: load run saw rejections/timeouts; queue sizing is off"
        )
        assert record["latency_p99_ms"] >= record["latency_p50_ms"]

    # The headline contract: dynamic batching buys >= 3x throughput at
    # bit-identical correctness (asserted by the exactness test above).
    assert results["batched"]["speedup_vs_unbatched"] >= MIN_BATCHED_SPEEDUP, (
        f"batched serving is only "
        f"{results['batched']['speedup_vs_unbatched']:.2f}x the unbatched "
        f"baseline (need >= {MIN_BATCHED_SPEEDUP}x)"
    )
    # Batching must actually be happening, not just winning by accident.
    assert results["batched"]["mean_batch_rows"] > 2.0

    if _PERF_LONG or not BENCH_PATH.exists():
        payload = {
            name: {key: round(float(value), 4) for key, value in record.items()}
            for name, record in results.items()
        }
        BENCH_PATH.write_text(
            json.dumps(
                {
                    "experiment": "E13-serving",
                    "configs": payload,
                    "note": (
                        f"Closed-loop load ({CLIENTS} clients) against one "
                        f"replica of a {WIDTH}-wide 3-layer MLP; every config "
                        f"runs forwards at the fixed {COMPUTE_BATCH}-row "
                        "geometry, so responses are bit-identical across "
                        "configs by assertion.  batched_spilled serves through "
                        f"a spill manager holding {SPILL_FRACTION:.0%} of the "
                        "parameter bytes.  Regenerate with REPRO_PERF_LONG=1."
                    ),
                },
                indent=2,
            )
            + "\n"
        )


@pytest.mark.skipif(not _PERF_CHECK, reason="perf gate runs with REPRO_PERF_CHECK=1")
def test_no_regression_versus_committed_json():
    """CI perf gate: fresh throughput must stay within tolerance of the JSON."""
    committed = json.loads(BENCH_PATH.read_text())["configs"]
    fresh = _run_benchmark()
    failures = []
    for name, record in committed.items():
        floor = record["throughput_rps"] * PERF_TOLERANCE
        measured = fresh[name]["throughput_rps"]
        if measured < floor:
            failures.append(
                f"{name}: {measured:.0f} req/s < {floor:.0f} "
                f"({PERF_TOLERANCE:.0%} of committed {record['throughput_rps']:.0f})"
            )
    if fresh["batched"]["speedup_vs_unbatched"] < MIN_BATCHED_SPEEDUP:
        failures.append(
            f"batched speedup {fresh['batched']['speedup_vs_unbatched']:.2f}x "
            f"fell below the {MIN_BATCHED_SPEEDUP}x contract"
        )
    assert not failures, "performance regressions: " + "; ".join(failures)
