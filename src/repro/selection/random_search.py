"""Random search over a hyper-parameter space (legacy function shim).

The implementation now lives in :class:`repro.api.searchers.RandomSearcher`.
"""

from __future__ import annotations

from typing import Optional

from repro.selection.experiment import SelectionResult
from repro.selection.grid_search import TrainFn
from repro.selection.search_space import SearchSpace


def random_search(
    search_space: SearchSpace,
    train_fn: TrainFn,
    num_trials: int = 16,
    num_epochs: int = 1,
    objective: str = "loss",
    mode: str = "min",
    seed: Optional[int] = 0,
) -> SelectionResult:
    """Sample ``num_trials`` configurations independently and rank them."""
    from repro.api import Budget, Experiment, FunctionBackend, RandomSearcher

    experiment = Experiment(
        space=search_space,
        searcher=RandomSearcher(num_trials=num_trials, seed=seed),
        backend=FunctionBackend(train_fn),
        objective=objective,
        mode=mode,
        budget=Budget(epochs_per_trial=num_epochs),
        name="random_search",
    )
    return experiment.run()
