"""Critical-path (upward-rank) priorities for shard tasks.

The shard-parallel scheduler prioritises, among the tasks ready on an idle
device, the one with the longest chain of dependent work still ahead of it
(the classic HEFT "upward rank").  This keeps the cross-device pipelines of
all models moving instead of greedily draining whichever model happens to be
furthest along, which matters exactly in the multi-model setting the paper
targets.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Sequence

from repro.exceptions import SchedulingError
from repro.scheduler.task import ShardTask


def compute_upward_ranks(tasks: Sequence[ShardTask]) -> Dict[str, float]:
    """Longest downstream work (in FLOPs) starting at each task, inclusive.

    ``rank(t) = flops(t) + max(rank(child) for children of t)``, computed over
    the dependency graph formed by the tasks' ``deps`` lists.  FLOPs are used
    as the duration proxy, which is exact for homogeneous clusters.
    """
    by_id = {task.task_id: task for task in tasks}
    children: Dict[str, List[str]] = defaultdict(list)
    indegree_out: Dict[str, int] = {task.task_id: 0 for task in tasks}
    for task in tasks:
        for dep in task.deps:
            if dep in by_id:
                children[dep].append(task.task_id)
                indegree_out[dep] += 1

    # Reverse topological order: start from sinks (tasks nothing depends on).
    ranks: Dict[str, float] = {}
    remaining_children = dict(indegree_out)
    stack = [task_id for task_id, count in remaining_children.items() if count == 0]
    processed = 0
    while stack:
        task_id = stack.pop()
        task = by_id[task_id]
        best_child = max((ranks[child] for child in children[task_id]), default=0.0)
        ranks[task_id] = task.flops + best_child
        processed += 1
        for dep in task.deps:
            if dep not in by_id:
                continue
            remaining_children[dep] -= 1
            if remaining_children[dep] == 0:
                stack.append(dep)
    if processed != len(tasks):
        raise SchedulingError("cannot rank tasks: the dependency graph contains a cycle")
    return ranks
