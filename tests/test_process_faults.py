"""Fault injection across the process boundary: SIGKILL, retries, recovery.

The process runtime's whole value proposition is that a dead child is a
*contained* fault, never a wedged experiment or a corrupted artifact.  The
contracts under test:

* a pool child SIGKILLed mid-task fails **only that task**, with the typed
  :class:`~repro.exceptions.WorkerCrashedError`; the slot respawns and the
  pool keeps serving;
* parent-side retry (:meth:`ProcessWorkerPool.submit_retrying`) survives
  the death of the child that ran the previous attempt — the retried
  attempt lands on a fresh child;
* through the Experiment API, a killed trial either recovers (with a
  :class:`RetryPolicy`) or surfaces as a single ``FailedTrial`` while the
  rest of the cohort completes — the run never hangs;
* registry publishes stay atomic under kills: after a fault-injected run
  every published archive loads cleanly and no staging litter remains;
* a serving replica child SIGKILLed with a request in flight fails only
  that request, with :class:`~repro.exceptions.ReplicaCrashedError`, and
  respawns on the next one — standalone and behind a ``ModelServer``.

Every kill helper is a module-level class instance (pickles into spawn
children) and self-terminates via ``os.kill(os.getpid(), SIGKILL)`` gated
on a marker file, so the injection is deterministic, not timing-based.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.api import (
    Budget,
    Experiment,
    FunctionBackend,
    ModelSpec,
    ProcessReplica,
    ProcessWorkerPool,
    RetryPolicy,
    ShardParallelBackend,
    serve,
)
from repro.data import DataLoader, make_classification
from repro.exceptions import ReplicaCrashedError, ServingError, WorkerCrashedError
from repro.models import FeedForwardConfig, FeedForwardNetwork
from repro.optim import Adam
from repro.selection import SearchSpace
from repro.serving import ModelRegistry

DATASET = make_classification(
    num_samples=64, num_features=8, num_classes=3, class_separation=2.0,
    rng=np.random.default_rng(0),
)


def _sigkill_self():
    os.kill(os.getpid(), signal.SIGKILL)


def _pid_after_sleep(seconds: float = 0.0) -> int:
    time.sleep(seconds)
    return os.getpid()


class _DieOnce:
    """Task that SIGKILLs its own worker the first time it runs."""

    def __init__(self, marker: Path):
        self.marker = str(marker)

    def __call__(self) -> str:
        marker = Path(self.marker)
        if not marker.exists():
            marker.touch()
            _sigkill_self()
        return "survived"


class _KillFirstAttempt:
    """Trial function that SIGKILLs its worker on one trial's first attempt."""

    def __init__(self, marker_dir: Path, victim: str):
        self.marker_dir = str(marker_dir)
        self.victim = victim

    def __call__(self, trial, epochs):
        if trial.trial_id == self.victim:
            marker = Path(self.marker_dir) / f"{trial.trial_id}.attempted"
            if not marker.exists():
                marker.touch()
                _sigkill_self()
        return {"loss": float(trial.get("x", 0))}


class _KillingBuilder:
    """Trial builder that SIGKILLs the worker building one trial, once.

    The marker file gates the kill, so the retried child — and the parent's
    own rebuild at publish time — build normally.
    """

    def __init__(self, marker_dir: Path, victim: str):
        self.marker_dir = str(marker_dir)
        self.victim = victim

    def __call__(self, trial):
        if trial.trial_id == self.victim:
            marker = Path(self.marker_dir) / f"{trial.trial_id}.attempted"
            if not marker.exists():
                marker.touch()
                _sigkill_self()
        width = int(trial.get("width", 16))
        config = FeedForwardConfig(input_dim=8, hidden_dims=(width,), num_classes=3)
        model = FeedForwardNetwork(config, seed=0)
        optimizer = Adam(model.parameters(), lr=float(trial.get("lr", 1e-2)))
        loader = DataLoader(DATASET, batch_size=16, shuffle=True, seed=0)
        return model, optimizer, loader


class _SleepyNetwork(FeedForwardNetwork):
    """A network whose forward dawdles — a window to kill its process in."""

    def forward(self, batch):
        time.sleep(0.4)
        return super().forward(batch)


def _build_sleepy():
    config = FeedForwardConfig(input_dim=8, hidden_dims=(16,), num_classes=3)
    return _SleepyNetwork(config, seed=0)


def _build_plain():
    config = FeedForwardConfig(input_dim=8, hidden_dims=(16,), num_classes=3)
    return FeedForwardNetwork(config, seed=0)


# --------------------------------------------------------------------- #
# Pool-level containment
# --------------------------------------------------------------------- #
class TestProcessPoolFaults:
    def test_killed_child_fails_only_its_task(self):
        with ProcessWorkerPool(2) as pool:
            doomed = pool.submit(_sigkill_self)
            healthy = [pool.submit(abs, -value) for value in range(1, 4)]
            with pytest.raises(WorkerCrashedError):
                doomed.result(timeout=60)
            assert [future.result(timeout=60) for future in healthy] == [1, 2, 3]
            # The slot respawned: the pool still accepts and runs work.
            assert pool.submit(abs, -7).result(timeout=60) == 7

    def test_retry_survives_child_death(self, tmp_path):
        task = _DieOnce(tmp_path / "attempted")
        with ProcessWorkerPool(2) as pool:
            future = pool.submit_retrying(
                RetryPolicy(max_retries=1, backoff_seconds=0.0), task
            )
            assert future.result(timeout=60) == "survived"
        assert (tmp_path / "attempted").exists()

    def test_exhausted_retries_raise_the_crash(self):
        with ProcessWorkerPool(2) as pool:
            future = pool.submit_retrying(
                RetryPolicy(max_retries=1, backoff_seconds=0.0), _sigkill_self
            )
            with pytest.raises(WorkerCrashedError):
                future.result(timeout=60)


# --------------------------------------------------------------------- #
# Experiment-level containment
# --------------------------------------------------------------------- #
class TestProcessTrialFaults:
    def _experiment(self):
        return Experiment(
            space=SearchSpace({"x": [0, 1, 2]}), searcher="grid", objective="loss",
        )

    def test_killed_trial_recovers_under_retry(self, tmp_path):
        result = self._experiment().run(
            backend=FunctionBackend(_KillFirstAttempt(tmp_path, victim="grid-1")),
            workers=2,
            pool="process",
            retry=RetryPolicy(max_retries=1, backoff_seconds=0.0),
        )
        assert not result.failures
        assert {t.trial_id: t.metric("loss") for t in result.trials} == {
            "grid-0": 0.0, "grid-1": 1.0, "grid-2": 2.0,
        }
        assert (tmp_path / "grid-1.attempted").exists()  # the kill really fired

    def test_killed_trial_without_retry_is_one_fault_not_a_hang(self, tmp_path):
        started = time.monotonic()
        result = self._experiment().run(
            backend=FunctionBackend(_KillFirstAttempt(tmp_path, victim="grid-1")),
            workers=2,
            pool="process",
            retry=RetryPolicy(max_retries=0),
        )
        assert time.monotonic() - started < 60  # bounded, not wedged
        assert [t.trial_id for t in result.failures] == ["grid-1"]
        assert "worker process" in result.failures[0].error  # the typed crash
        assert [t.trial_id for t in result.ranked()] == ["grid-0", "grid-2"]

    def test_registry_stays_atomic_under_kills(self, tmp_path):
        registry = ModelRegistry(tmp_path / "registry")
        builder = _KillingBuilder(tmp_path, victim="grid-2")
        experiment = Experiment(
            space=SearchSpace({"width": [16, 32], "lr": [1e-2, 1e-3]}),
            searcher="grid",
            objective="loss",
            budget=Budget(epochs_per_trial=2),
        )
        result = experiment.run(
            backend=ShardParallelBackend(
                builder=builder, num_devices=2, registry=registry
            ),
            workers=2,
            pool="process",
            retry=RetryPolicy(max_retries=1, backoff_seconds=0.0),
        )
        assert not result.failures
        # Every trial published exactly once, and every archive is whole.
        assert sorted(registry.names()) == sorted(t.trial_id for t in result.trials)
        for name in registry.names():
            with np.load(registry.archive_path(name)) as archive:
                assert len(archive.files) > 0
        # Atomic staged writes leave no litter behind, killed children or not.
        assert not list(Path(registry.root).rglob("*staging*"))


# --------------------------------------------------------------------- #
# Serving-replica containment
# --------------------------------------------------------------------- #
class TestProcessReplicaFaults:
    def _arrays(self):
        rng = np.random.default_rng(3)
        return {"features": rng.normal(size=(2, 8)).astype(np.float32)}

    def test_kill_mid_request_fails_only_inflight_then_respawns(self):
        replica = ProcessReplica(ModelSpec(builder=_build_sleepy), name="victim")
        try:
            replica.start()
            pid = replica.pid
            assert pid is not None
            killer = threading.Timer(0.15, os.kill, args=(pid, signal.SIGKILL))
            killer.start()
            try:
                with pytest.raises(ReplicaCrashedError):
                    replica.infer(self._arrays(), pad_to=4)
            finally:
                killer.cancel()
            # The next request respawns a fresh child and succeeds.
            output = replica.infer(self._arrays(), pad_to=4)
            assert output.shape == (2, 3)
            assert replica.restarts == 1
            assert replica.pid not in (None, pid)
        finally:
            replica.close()

    def test_kill_while_idle_respawns_transparently(self):
        replica = ProcessReplica(ModelSpec(builder=_build_plain), name="idle")
        try:
            first = replica.infer(self._arrays(), pad_to=4)
            os.kill(replica.pid, signal.SIGKILL)
            deadline = time.monotonic() + 30
            while replica.pid is not None and time.monotonic() < deadline:
                time.sleep(0.01)
            # Death detected before the next send: no error, just a respawn —
            # and the rebuilt model answers bit-identically.
            second = replica.infer(self._arrays(), pad_to=4)
            assert np.array_equal(first, second)
            assert replica.restarts == 1
        finally:
            replica.close()

    def test_server_survives_replica_kill(self):
        server = serve(
            ModelSpec(builder=_build_sleepy),
            replicas=1,
            replica_mode="process",
            max_batch_size=2,
            max_wait_ms=0.5,
            name="fault-server",
        )
        try:
            replica = server.replicas[0]
            replica.start()
            pid = replica.pid
            future = server.submit(self._arrays())
            killer = threading.Timer(0.25, os.kill, args=(pid, signal.SIGKILL))
            killer.start()
            try:
                with pytest.raises(ServingError):
                    future.result(timeout=60)
            finally:
                killer.cancel()
            # The serve loop and the replica both survived the crash.
            output = server.request(self._arrays(), timeout_ms=60_000)
            assert output.shape == (2, 3)
        finally:
            server.stop()
