"""Dynamic micro-batching: coalesce queued requests without reordering them.

Online traffic arrives one small request at a time, but the engine is far
more efficient per row on a full micro-batch.  The :class:`DynamicBatcher`
sits between the two: requests enter a bounded FIFO queue (admission
control — a full queue *rejects* instead of growing without bound), and
replica threads pull *micro-batches*: up to ``max_batch_size`` rows,
collected for at most ``max_wait_ms`` after the first request of the batch
arrived.  An idle server therefore answers a lone request after at most
``max_wait_ms`` of batching delay, while a loaded server fills whole
batches instantly: a *saturated* batch — one that already holds
``max_batch_size`` rows, or whose next queued request would not fit —
dispatches the moment it saturates instead of waiting out the window.

Requests are never split across batches and never reordered: collection
walks the queue front-to-back and stops at the first request that does not
fit, so responses complete in submission order per batch.  Requests whose
deadline passes while queued are failed with
:class:`~repro.exceptions.RequestTimeoutError` *before* inference runs —
a dead client's work is dropped, not computed.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from repro.exceptions import (
    ConfigurationError,
    RequestTimeoutError,
    ServerOverloadedError,
    ServingError,
)
from repro.serving.stats import LatencyStats


class PendingResponse:
    """The caller-side handle of one in-flight request.

    Completed exactly once by the serving machinery, either with the
    request's output rows or with an exception (timeout, overload at drain,
    replica failure).  ``result`` blocks the calling thread — the closed-loop
    client model — with an optional wait bound of its own.
    """

    def __init__(self) -> None:
        self._event = threading.Event()
        self._value: Any = None
        self._error: Optional[BaseException] = None
        #: ``time.monotonic()`` at completion — what open-loop load
        #: generation measures latency against (the caller may collect
        #: results long after they landed)
        self.completed_at: Optional[float] = None

    def done(self) -> bool:
        """Whether a result or error has landed."""
        return self._event.is_set()

    def set_result(self, value: Any) -> None:
        """Complete the response with the request's output rows."""
        self._value = value
        self.completed_at = time.monotonic()
        self._event.set()

    def set_exception(self, error: BaseException) -> None:
        """Complete the response with a failure."""
        self._error = error
        self.completed_at = time.monotonic()
        self._event.set()

    def result(self, timeout: Optional[float] = None) -> Any:
        """The request's output rows; raises what the request failed with.

        ``timeout`` (seconds) bounds the wait; running out raises
        :class:`~repro.exceptions.RequestTimeoutError`.
        """
        if not self._event.wait(timeout):
            raise RequestTimeoutError(
                f"no response within {timeout:.3f}s wait"
            )
        if self._error is not None:
            raise self._error
        return self._value


@dataclass
class InferenceRequest:
    """One queued inference request (internal to the serving machinery)."""

    arrays: Dict[str, np.ndarray]
    rows: int
    submitted: float
    deadline: Optional[float] = None
    response: PendingResponse = field(default_factory=PendingResponse)

    def expired(self, now: float) -> bool:
        """Whether the request's deadline has passed."""
        return self.deadline is not None and now >= self.deadline


class DynamicBatcher:
    """Bounded request queue with micro-batch collection (see module docstring).

    Example::

        batcher = DynamicBatcher(max_batch_size=8, max_wait_ms=2.0, max_queue=64)
        batcher.submit(request)              # raises ServerOverloadedError when full
        batch = batcher.next_batch()         # [InferenceRequest, ...] or None (closed)

    Raises:
        ConfigurationError: for non-positive limits, or a request larger
            than ``max_batch_size`` rows (it could never be scheduled).
        ServerOverloadedError: from :meth:`submit` when the queue is full.
        ServingError: from :meth:`submit` after :meth:`close`.
    """

    def __init__(
        self,
        max_batch_size: int = 8,
        max_wait_ms: float = 2.0,
        max_queue: int = 64,
        stats: Optional[LatencyStats] = None,
    ):
        if max_batch_size <= 0:
            raise ConfigurationError(
                f"max_batch_size must be positive, got {max_batch_size}"
            )
        if max_wait_ms < 0:
            raise ConfigurationError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        if max_queue <= 0:
            raise ConfigurationError(f"max_queue must be positive, got {max_queue}")
        self.max_batch_size = int(max_batch_size)
        self.max_wait_seconds = float(max_wait_ms) / 1e3
        self.max_queue = int(max_queue)
        self.stats = stats
        self._queue: List[InferenceRequest] = []
        self._cond = threading.Condition()
        self._closed = False

    # ------------------------------------------------------------------ #
    @property
    def pending(self) -> int:
        """Number of requests currently queued."""
        with self._cond:
            return len(self._queue)

    def submit(self, request: InferenceRequest) -> None:
        """Enqueue one request; reject when the queue is at capacity."""
        if request.rows <= 0:
            raise ConfigurationError("a request must carry at least one row")
        if request.rows > self.max_batch_size:
            raise ConfigurationError(
                f"request carries {request.rows} rows but max_batch_size is "
                f"{self.max_batch_size}; split it client-side"
            )
        with self._cond:
            if self._closed:
                raise ServingError("server is stopped; no new requests accepted")
            if len(self._queue) >= self.max_queue:
                if self.stats is not None:
                    self.stats.count(rejected=1)
                raise ServerOverloadedError(
                    f"request queue is full ({self.max_queue} pending); retry later"
                )
            self._queue.append(request)
            self._cond.notify_all()

    # ------------------------------------------------------------------ #
    def next_batch(self) -> Optional[List[InferenceRequest]]:
        """Block until a micro-batch is ready; ``None`` once closed and drained.

        The batch holds 1..``max_batch_size`` rows of whole requests in FIFO
        order.  Collection waits up to ``max_wait_ms`` after the batch's
        first request for more work, returning early when the batch is full
        or the queue closes.
        """
        with self._cond:
            while True:
                # Phase 1: wait for the batch's first request (or closure).
                self._expire_locked()
                if not self._queue:
                    if self._closed:
                        return None
                    self._cond.wait(timeout=self._poll_interval_locked())
                    continue
                # Phase 2: fill the batch for up to max_wait_ms, measured
                # from when the batch's *head request arrived* — a request
                # that already waited for a free replica is not made to wait
                # the full window again.  Recomputed per iteration: another
                # replica may take the head while we wait.  A *saturated*
                # batch — full, or blocked by a next request that does not
                # fit — cannot grow, so it dispatches immediately instead of
                # sleeping out the rest of the window.
                while self._queue:
                    fill_deadline = self._queue[0].submitted + self.max_wait_seconds
                    saturated = self._saturated_locked()
                    remaining = fill_deadline - time.monotonic()
                    if saturated or remaining <= 0 or self._closed:
                        return self._take_locked()
                    self._cond.wait(timeout=min(remaining, self._poll_interval_locked()))
                    self._expire_locked()
                # Everything expired (or another replica drained the queue)
                # while we waited for fill; start over from phase 1.

    def close(self) -> None:
        """Stop accepting requests; queued work remains drainable."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def cancel_pending(self, error: Optional[BaseException] = None) -> int:
        """Fail every queued request (used when a server stops without draining)."""
        error = error if error is not None else ServingError("server stopped")
        with self._cond:
            cancelled = self._queue
            self._queue = []
            self._cond.notify_all()
        for request in cancelled:
            request.response.set_exception(error)
        if cancelled and self.stats is not None:
            self.stats.count(failed=len(cancelled))
        return len(cancelled)

    # ------------------------------------------------------------------ #
    # Internals (call with the condition's lock held)
    # ------------------------------------------------------------------ #
    def _expire_locked(self) -> None:
        now = time.monotonic()
        overdue = [request for request in self._queue if request.expired(now)]
        if not overdue:
            return
        self._queue = [request for request in self._queue if not request.expired(now)]
        for request in overdue:
            request.response.set_exception(
                RequestTimeoutError(
                    "request expired after "
                    f"{now - request.submitted:.3f}s in the queue"
                )
            )
        if self.stats is not None:
            self.stats.count(timed_out=len(overdue))

    def _poll_interval_locked(self) -> float:
        """Wait granularity: wake early enough to expire the nearest deadline."""
        now = time.monotonic()
        deadlines = [
            request.deadline - now
            for request in self._queue
            if request.deadline is not None
        ]
        nearest = min(deadlines) if deadlines else 0.05
        return max(min(nearest, 0.05), 1e-4)

    def _saturated_locked(self) -> bool:
        """Whether the collectable batch can no longer grow.

        True when the queued prefix already fills ``max_batch_size`` rows, or
        when the first uncollectable request would overflow the batch (it is
        never split, so waiting longer cannot add it).  Either way the wait
        window buys nothing and the batch should dispatch now.
        """
        rows = 0
        for request in self._queue:
            if rows + request.rows > self.max_batch_size:
                return True
            rows += request.rows
        return rows >= self.max_batch_size

    def _take_locked(self) -> List[InferenceRequest]:
        taken: List[InferenceRequest] = []
        rows = 0
        while self._queue and rows + self._queue[0].rows <= self.max_batch_size:
            request = self._queue.pop(0)
            taken.append(request)
            rows += request.rows
        self._cond.notify_all()
        return taken
