"""Shared helpers for the benchmark harness.

Each benchmark module regenerates one table/figure of the paper (see the
experiment index in DESIGN.md) and prints the corresponding rows with
:func:`repro.utils.format_table` so the output can be compared side by side
with the paper.  Timing is collected with pytest-benchmark; the scientific
quantities (makespan, utilization, memory, speedups) are simulated values and
are printed and asserted on directly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.models import BertConfig, FeedForwardConfig
from repro.scheduler import TrainingJob
from repro.sharding import make_plan
from repro.utils import seed_everything
from repro.utils.tabulate import format_table

GIB = 1024 ** 3

#: the paper's testbed: one server with 4 x 16 GB Tesla V100
PAPER_NUM_DEVICES = 4
PAPER_GPU = "v100-16gb"
#: SQuAD fine-tuning shape used throughout: sequence length 384, batch 32
PAPER_SEQ_LEN = 384
PAPER_BATCH = 32


@pytest.fixture(autouse=True)
def _seed():
    seed_everything(2021)
    yield


@pytest.fixture
def paper_cluster() -> Cluster:
    return Cluster.single_server(PAPER_NUM_DEVICES, PAPER_GPU)


def bert_large_profile(seq_len: int = PAPER_SEQ_LEN):
    return BertConfig.bert_large().profile(seq_len=seq_len)


def bert_large_jobs(num_models: int, batches: int = 2, batch_size: int = 16,
                    num_shards: int = 4, epochs: int = 1):
    """BERT-Large fine-tuning jobs (one per candidate configuration)."""
    profile = bert_large_profile()
    jobs = []
    for index in range(num_models):
        plan = make_plan(f"bert-large-{index}", profile, batch_size=batch_size,
                         num_shards=num_shards)
        jobs.append(
            TrainingJob(model_id=f"bert-large-{index}", plan=plan, num_epochs=epochs,
                        batches_per_epoch=batches, samples_per_batch=batch_size)
        )
    return jobs


def print_report(title: str, headers, rows) -> None:
    """Print one experiment's table under a separating banner."""
    banner = "=" * 72
    print(f"\n{banner}\n{title}\n{banner}")
    print(format_table(headers, rows))
