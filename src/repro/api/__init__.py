"""Declarative experiment API: searchers × execution backends.

This package is the single front door for model selection (see
``DESIGN.md``).  Declare an :class:`Experiment` — search space, objective,
budget, searcher — and run it on any :class:`ExecutionBackend`:

* :class:`~repro.api.backends.SimulationBackend` — cost-model execution on
  the simulated GPU cluster under any scheduling strategy;
* :class:`~repro.api.backends.ShardParallelBackend` — real numpy-engine
  training with Hydra-style shard-parallel interleaving;
* :class:`~repro.api.backends.CerebroBackend` — real training with
  Cerebro-style model hopping over data partitions;
* :class:`~repro.api.backends.FunctionBackend` /
  :class:`~repro.api.backends.ResumableFunctionBackend` — plain callables
  (surrogate objectives, tests, legacy ``TrainFn`` shims).

Any searcher composes with any backend; callbacks observe every trial and
can stop trials early.
"""

from repro.api.backend import CohortEngineBackend, ExecutionBackend, TrialHandle
from repro.api.backends import (
    CerebroBackend,
    FunctionBackend,
    ResumableFunctionBackend,
    ShardParallelBackend,
    SimulationBackend,
)
from repro.api.callbacks import (
    Callback,
    CallbackList,
    EarlyStopping,
    LoggingCallback,
    TrialTimer,
)
from repro.api.experiment import Budget, Experiment, TrialRunner
from repro.api.searchers import (
    FixedSearcher,
    GridSearcher,
    RandomSearcher,
    Searcher,
    SuccessiveHalvingSearcher,
    make_searcher,
)

__all__ = [
    "Budget",
    "Callback",
    "CallbackList",
    "CerebroBackend",
    "CohortEngineBackend",
    "EarlyStopping",
    "ExecutionBackend",
    "Experiment",
    "FixedSearcher",
    "FunctionBackend",
    "GridSearcher",
    "LoggingCallback",
    "RandomSearcher",
    "ResumableFunctionBackend",
    "Searcher",
    "ShardParallelBackend",
    "SimulationBackend",
    "SuccessiveHalvingSearcher",
    "TrialHandle",
    "TrialRunner",
    "TrialTimer",
    "make_searcher",
]
