"""The :class:`ModelShard` value object."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple


@dataclass(frozen=True)
class ModelShard:
    """A contiguous slice of a model's block sequence.

    All byte/FLOP figures are already scaled to the training batch size used
    by the owning :class:`~repro.sharding.plan.ShardingPlan`.

    Attributes
    ----------
    model_id:
        Identifier of the model this shard belongs to.
    index:
        Position of the shard in the model's pipeline (0-based).
    block_range:
        Half-open ``(start, stop)`` range of block indices covered.
    param_count / param_bytes / optimizer_bytes:
        Static storage owned by the shard while it is resident on a device.
    activation_bytes:
        Peak intermediate activations held between forward and backward.
    input_bytes / output_bytes:
        Size of the activation tensors crossing the shard's boundaries —
        what must move over the interconnect when neighbouring shards live
        on different devices.
    forward_flops / backward_flops:
        Work per mini-batch for each pass direction.
    """

    model_id: str
    index: int
    block_range: Tuple[int, int]
    block_names: Tuple[str, ...]
    param_count: int
    param_bytes: int
    optimizer_bytes: int
    activation_bytes: int
    input_bytes: int
    output_bytes: int
    forward_flops: float
    backward_flops: float

    @property
    def num_blocks(self) -> int:
        start, stop = self.block_range
        return stop - start

    @property
    def resident_bytes(self) -> int:
        """Memory the shard occupies just by being placed on a device."""
        return self.param_bytes + self.optimizer_bytes

    @property
    def working_bytes(self) -> int:
        """Memory needed while the shard is actively training a batch."""
        return self.resident_bytes + self.activation_bytes

    @property
    def shard_id(self) -> str:
        return f"{self.model_id}/shard{self.index}"

    def __str__(self) -> str:
        start, stop = self.block_range
        return (
            f"{self.shard_id}[blocks {start}:{stop}, "
            f"{self.param_count / 1e6:.1f}M params, "
            f"{self.working_bytes / 2**30:.2f} GiB working]"
        )
