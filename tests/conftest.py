"""Shared fixtures for the test suite."""

from __future__ import annotations

import multiprocessing
import time
from pathlib import Path

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.data import DataLoader, SyntheticSpanDataset, make_classification
from repro.models import BertConfig, FeedForwardConfig, FeedForwardNetwork
from repro.utils.rng import seed_everything

_SHM_DIR = Path("/dev/shm")


def _live_shm_segments() -> set:
    """Names of live POSIX shared-memory segments (Linux-visible ones)."""
    if not _SHM_DIR.is_dir():  # pragma: no cover - non-Linux fallback
        return set()
    return {entry.name for entry in _SHM_DIR.glob("psm_*")}


@pytest.fixture(scope="session", autouse=True)
def _spawn_start_method():
    """Pin the default start method to ``spawn``.

    The runtime always builds its children from an explicit spawn context;
    pinning the *default* as well means a test that accidentally reaches the
    default context cannot fork a live test process (inheriting locks and
    threads mid-flight) and behaves the same on every platform.
    """
    multiprocessing.set_start_method("spawn", force=True)
    yield


@pytest.fixture(autouse=True)
def _no_process_or_shm_leaks():
    """Fail any test that leaks live child processes or shm segments.

    Every child the runtime spawns (pool workers, serving replicas) and
    every shared-memory segment it creates is owned by some parent object
    with a ``close``/``shutdown``; a test that returns while children are
    still alive or segments still linked has dropped one of those owners.
    A short grace window absorbs children that are mid-exit.
    """
    children_before = {child.pid for child in multiprocessing.active_children()}
    shm_before = _live_shm_segments()
    yield
    deadline = time.monotonic() + 5.0
    while True:
        leaked_children = [
            child for child in multiprocessing.active_children()
            if child.pid not in children_before and child.is_alive()
        ]
        leaked_shm = _live_shm_segments() - shm_before
        if not leaked_children and not leaked_shm:
            return
        if time.monotonic() > deadline:
            break
        time.sleep(0.05)
    assert not leaked_children, (
        f"test leaked live child processes: {leaked_children}"
    )
    assert not leaked_shm, (
        f"test leaked shared-memory segments: {sorted(leaked_shm)}"
    )


@pytest.fixture(autouse=True)
def _seed_global_rng():
    """Every test starts from the same global RNG state."""
    seed_everything(1234)
    yield


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(7)


@pytest.fixture
def tiny_mlp_config() -> FeedForwardConfig:
    return FeedForwardConfig.tiny(input_dim=16, num_classes=4)


@pytest.fixture
def tiny_mlp(tiny_mlp_config) -> FeedForwardNetwork:
    return FeedForwardNetwork(tiny_mlp_config, seed=3)


@pytest.fixture
def classification_data():
    return make_classification(
        num_samples=96, num_features=16, num_classes=4, rng=np.random.default_rng(11)
    )


@pytest.fixture
def classification_loader(classification_data) -> DataLoader:
    return DataLoader(classification_data, batch_size=16, shuffle=False)


@pytest.fixture
def classification_batch(classification_loader):
    return next(iter(classification_loader))


@pytest.fixture
def tiny_bert_config() -> BertConfig:
    return BertConfig.tiny(vocab_size=64, seq_len=32)


@pytest.fixture
def span_dataset() -> SyntheticSpanDataset:
    return SyntheticSpanDataset(
        num_samples=24, seq_len=32, vocab_size=64, rng=np.random.default_rng(5)
    )


@pytest.fixture
def span_batch(span_dataset):
    return next(iter(DataLoader(span_dataset, batch_size=8)))


@pytest.fixture
def four_gpu_cluster() -> Cluster:
    return Cluster.single_server(4, "v100-16gb")


@pytest.fixture
def two_gpu_cluster() -> Cluster:
    return Cluster.single_server(2, "v100-16gb")


@pytest.fixture
def bert_large_profile():
    return BertConfig.bert_large().profile(seq_len=384)


@pytest.fixture
def mlp_profile():
    return FeedForwardConfig.paper_1_2m().profile()
