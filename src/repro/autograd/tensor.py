"""The :class:`Tensor` class: a numpy array plus an autograd graph node."""

from __future__ import annotations

import contextlib
from typing import Iterator, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.exceptions import AutogradError

_grad_enabled = True


def is_grad_enabled() -> bool:
    """Whether new operations are currently recorded onto the autograd graph."""
    return _grad_enabled


@contextlib.contextmanager
def no_grad() -> Iterator[None]:
    """Context manager that disables graph recording (e.g. for evaluation)."""
    global _grad_enabled
    previous = _grad_enabled
    _grad_enabled = False
    try:
        yield
    finally:
        _grad_enabled = previous


def _ops():
    """Late import of the op library to avoid a circular module dependency."""
    from repro.autograd import ops
    return ops


ArrayLike = Union["Tensor", np.ndarray, float, int, list, tuple]

#: Sentinel left in ``_ctx`` when backward() releases a node's context, so a
#: second backward through the freed graph raises instead of silently
#: producing wrong (missing) gradients.
_FREED = object()


class Tensor:
    """A multi-dimensional array that supports reverse-mode differentiation.

    Parameters
    ----------
    data:
        Anything ``np.asarray`` accepts.  Floating-point data defaults to
        ``float32`` (matching typical GPU training precision) unless the
        input array is already ``float64``.
    requires_grad:
        If ``True``, gradients with respect to this tensor are accumulated
        into :attr:`grad` during :meth:`backward`.
    name:
        Optional identifier used in error messages and debugging output.
    """

    __slots__ = ("data", "grad", "requires_grad", "name", "_ctx")

    def __init__(self, data, requires_grad: bool = False, name: Optional[str] = None):
        if isinstance(data, Tensor):
            data = data.data
        came_from_ndarray = isinstance(data, (np.ndarray, np.generic))
        array = np.asarray(data)
        if not came_from_ndarray and array.dtype == np.float64:
            # Python lists / scalars default to float32 (GPU training precision);
            # explicit float64 numpy arrays are preserved for high-precision checks.
            array = array.astype(np.float32)
        if array.dtype == np.float16:
            array = array.astype(np.float32)
        elif array.dtype not in (np.float32, np.float64):
            if np.issubdtype(array.dtype, np.floating):
                array = array.astype(np.float32)
            elif np.issubdtype(array.dtype, np.integer) or array.dtype == np.bool_:
                # Integer tensors (e.g. token ids, labels) are kept as int64.
                array = array.astype(np.int64)
            else:
                raise TypeError(f"unsupported tensor dtype: {array.dtype}")
        self.data: np.ndarray = array
        self.grad: Optional[np.ndarray] = None
        self.requires_grad: bool = bool(requires_grad)
        self.name = name
        self._ctx = None
        if self.requires_grad and not np.issubdtype(self.data.dtype, np.floating):
            raise AutogradError("only floating-point tensors can require gradients")

    @staticmethod
    def _wrap(data: np.ndarray, requires_grad: bool = False,
              name: Optional[str] = None) -> "Tensor":
        """Fast-path constructor for arrays our own ops already produced.

        Skips the dtype-coercion rules of ``__init__`` (the array is known to
        carry a supported dtype) and always builds a plain :class:`Tensor`,
        never a subclass.  This is what every op output, ``detach()``,
        ``copy()`` and shard-boundary hand-off goes through on the hot path.
        """
        tensor = Tensor.__new__(Tensor)
        tensor.data = data
        tensor.grad = None
        tensor.requires_grad = requires_grad
        tensor.name = name
        tensor._ctx = None
        return tensor

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def numpy(self) -> np.ndarray:
        """Return the underlying numpy array (not a copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but cut off from the autograd graph."""
        return Tensor._wrap(self.data, requires_grad=False, name=self.name)

    def copy(self) -> "Tensor":
        """Return a deep copy (data copied, graph not carried over)."""
        return Tensor._wrap(self.data.copy(), requires_grad=self.requires_grad, name=self.name)

    def astype(self, dtype) -> "Tensor":
        array = self.data.astype(dtype)
        if array.dtype == self.data.dtype or array.dtype in (np.float32, np.float64):
            return Tensor._wrap(array, requires_grad=False, name=self.name)
        # Unusual target dtypes keep the full coercion rules (f16 -> f32, ...).
        return Tensor(array, requires_grad=False, name=self.name)

    def zero_grad(self) -> None:
        """Clear the accumulated gradient."""
        self.grad = None

    # ------------------------------------------------------------------ #
    # Autograd
    # ------------------------------------------------------------------ #
    def backward(self, grad: Optional[np.ndarray] = None, retain_graph: bool = False) -> None:
        """Backpropagate from this tensor through the recorded graph.

        ``grad`` defaults to 1.0 and may only be omitted for scalar outputs
        (e.g. a loss value).

        Unless ``retain_graph`` is true, each node's recorded context (its
        saved forward activations and parent links) is released as soon as
        the backward pass has consumed it, so activation memory is freed
        eagerly instead of living until the whole graph is garbage-collected.
        Pass ``retain_graph=True`` to keep the graph intact (e.g. for
        gradient checking or when backpropagating twice through shared
        subgraphs).
        """
        if not self.requires_grad:
            raise AutogradError("backward() called on a tensor that does not require grad")
        if self._ctx is _FREED:
            raise AutogradError(
                "backward through a graph whose saved state was already freed; "
                "pass retain_graph=True to the first backward() call to "
                "backpropagate through it again"
            )
        if grad is None:
            if self.data.size != 1:
                raise AutogradError(
                    "backward() without an explicit gradient is only valid for scalar tensors"
                )
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=self.data.dtype)
            if grad.shape != self.data.shape:
                raise AutogradError(
                    f"gradient shape {grad.shape} does not match tensor shape {self.data.shape}"
                )

        ordering = self._topological_order()
        # In-flight gradient per graph node, plus the ids of buffers this
        # backward pass allocated itself.  Owned buffers can be accumulated
        # into in place; everything else (op outputs, views, caller-supplied
        # arrays) may be aliased elsewhere and must never be mutated.
        grads: dict[int, np.ndarray] = {id(self): grad}
        owned: Set[int] = set()
        self.grad = _accumulate_grad(self.grad, grad, id(self), owned)

        for node in ordering:
            ctx = node._ctx
            if ctx is None:
                continue
            node_grad = grads.pop(id(node), None)
            if ctx is _FREED:
                if node_grad is None:
                    continue
                raise AutogradError(
                    "backward through a graph whose saved state was already freed; "
                    "pass retain_graph=True to the first backward() call to "
                    "backpropagate through it again"
                )
            if node_grad is not None:
                parent_grads = ctx.propagate(node_grad)
                for parent, parent_grad in zip(ctx.parents, parent_grads):
                    if parent is None or parent_grad is None:
                        continue
                    if not parent.requires_grad:
                        continue
                    parent_grad = np.asarray(parent_grad)
                    if parent_grad.shape != parent.data.shape:
                        raise AutogradError(
                            f"{type(ctx).__name__} produced gradient of shape "
                            f"{parent_grad.shape} for input of shape {parent.data.shape}"
                        )
                    if parent._ctx is not None:
                        key = id(parent)
                        grads[key] = _accumulate_grad(
                            grads.get(key), parent_grad, key, owned
                        )
                    else:
                        # Leaf tensor: accumulate into .grad
                        parent.grad = _accumulate_grad(
                            parent.grad, parent_grad, id(parent), owned
                        )
            if not retain_graph:
                # Release saved activations and parent links eagerly
                # (PyTorch's retain_graph=False behaviour).
                node._ctx = _FREED

    def _topological_order(self) -> List["Tensor"]:
        """Return graph nodes reachable from ``self`` in reverse topological order."""
        visited: Set[int] = set()
        order: List[Tensor] = []

        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            ctx = node._ctx
            if ctx is not None and ctx is not _FREED:
                for parent in ctx.parents:
                    if parent is not None and id(parent) not in visited:
                        stack.append((parent, False))
        order.reverse()
        return order

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def zeros(*shape: int, requires_grad: bool = False, dtype=np.float32) -> "Tensor":
        return Tensor(np.zeros(shape, dtype=dtype), requires_grad=requires_grad)

    @staticmethod
    def ones(*shape: int, requires_grad: bool = False, dtype=np.float32) -> "Tensor":
        return Tensor(np.ones(shape, dtype=dtype), requires_grad=requires_grad)

    @staticmethod
    def full(shape: Sequence[int], value: float, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.full(shape, value, dtype=np.float32), requires_grad=requires_grad)

    @staticmethod
    def randn(*shape: int, rng: Optional[np.random.Generator] = None,
              scale: float = 1.0, requires_grad: bool = False) -> "Tensor":
        from repro.utils.rng import get_rng
        generator = rng if rng is not None else get_rng()
        data = generator.normal(0.0, scale, size=shape).astype(np.float32)
        return Tensor(data, requires_grad=requires_grad)

    @staticmethod
    def arange(n: int, dtype=np.int64) -> "Tensor":
        return Tensor(np.arange(n, dtype=dtype))

    # ------------------------------------------------------------------ #
    # Arithmetic operators (delegate to the op library)
    # ------------------------------------------------------------------ #
    def __add__(self, other: ArrayLike) -> "Tensor":
        return _ops().add(self, other)

    def __radd__(self, other: ArrayLike) -> "Tensor":
        return _ops().add(other, self)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return _ops().sub(self, other)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return _ops().sub(other, self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        return _ops().mul(self, other)

    def __rmul__(self, other: ArrayLike) -> "Tensor":
        return _ops().mul(other, self)

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        return _ops().div(self, other)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return _ops().div(other, self)

    def __neg__(self) -> "Tensor":
        return _ops().neg(self)

    def __pow__(self, exponent: float) -> "Tensor":
        return _ops().pow(self, exponent)

    def __matmul__(self, other: "Tensor") -> "Tensor":
        return _ops().matmul(self, other)

    def __getitem__(self, index) -> "Tensor":
        return _ops().getitem(self, index)

    # ------------------------------------------------------------------ #
    # Math / shape methods
    # ------------------------------------------------------------------ #
    def matmul(self, other: "Tensor") -> "Tensor":
        return _ops().matmul(self, other)

    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        return _ops().sum(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        return _ops().mean(self, axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        return _ops().max(self, axis=axis, keepdims=keepdims)

    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return _ops().reshape(self, shape)

    def transpose(self, *axes: int) -> "Tensor":
        return _ops().transpose(self, axes if axes else None)

    def exp(self) -> "Tensor":
        return _ops().exp(self)

    def log(self) -> "Tensor":
        return _ops().log(self)

    def sqrt(self) -> "Tensor":
        return _ops().sqrt(self)

    def tanh(self) -> "Tensor":
        return _ops().tanh(self)

    def relu(self) -> "Tensor":
        return _ops().relu(self)

    def sigmoid(self) -> "Tensor":
        return _ops().sigmoid(self)

    def softmax(self, axis: int = -1) -> "Tensor":
        return _ops().softmax(self, axis=axis)

    def log_softmax(self, axis: int = -1) -> "Tensor":
        return _ops().log_softmax(self, axis=axis)

    def argmax(self, axis=None) -> np.ndarray:
        return self.data.argmax(axis=axis)

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        label = f", name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}, dtype={self.data.dtype}{grad_flag}{label})"


def _accumulate_grad(
    existing: Optional[np.ndarray],
    update: np.ndarray,
    slot: int,
    owned: Set[int],
) -> np.ndarray:
    """Sum gradients into an accumulation slot, in place when we own the buffer.

    The first contribution is stored as-is (the array may be an op output
    that is also handed to another parent, so it must not be mutated).  The
    second contribution allocates a fresh sum — from then on the slot's
    buffer is exclusively ours and further contributions are added with
    ``np.add(..., out=...)`` without allocating.  The grouping
    ``((g1 + g2) + g3) + ...`` is identical to the allocating path, so
    accumulated gradients are bit-for-bit unchanged.
    """
    if existing is None:
        return update
    if slot in owned:
        np.add(existing, update, out=existing)
        return existing
    owned.add(slot)
    return existing + update
