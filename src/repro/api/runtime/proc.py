"""Process-based serving replicas: handle-free model specs + shared-memory IPC.

This module is the serving half of the process runtime (the trial half —
:class:`~repro.api.runtime.pool.ProcessWorkerPool` plus the snapshot
protocol — lives in :mod:`~repro.api.runtime.pool` and
:mod:`~repro.api.runtime.concurrent`).  Three pieces:

* :class:`ModelSpec` — a **handle-free** description of a servable model: a
  builder (a :mod:`repro.models.registry` name or a picklable callable) plus
  an optional registry address for the weights.  Specs pickle, so they are
  what crosses the process boundary instead of live models;
* weight transport is the registry's immutable ``.npz`` version itself:
  each child process ``mmap``\\ s the published archive read-only
  (:func:`~repro.training.checkpoint.map_checkpoint_parameters`), so N
  replicas of one model share **one** physical copy of the parameter bytes
  through the page cache — zero copies, zero pickled weights;
* :class:`ProcessReplica` — the parent-side client that looks exactly like
  a :class:`~repro.serving.replica.Replica` (``infer(arrays, pad_to)``,
  ``close()``, ``name``, ``is_spilled``) but executes every forward in a
  persistent ``spawn``-ed child process.  Request and response arrays ship
  through two parent-owned :class:`multiprocessing.shared_memory` segments
  (grown on demand, reused across requests); only tiny metadata tuples
  travel over the control pipe.

Fault containment mirrors the process pool: a child killed mid-request
fails **only the in-flight micro-batch**, with the typed
:class:`~repro.exceptions.ReplicaCrashedError`; the replica respawns its
child lazily on the next request.  Because the parent owns both shared
segments and unlinks them in ``close()``, a dead child can never leak
shared memory.
"""

from __future__ import annotations

import multiprocessing
import threading
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.exceptions import ConfigurationError, ReplicaCrashedError, ServingError
from repro.telemetry import NULL_TELEMETRY, Telemetry
from repro.utils.serialization import probe_picklable

#: shared-memory layout: leaf arrays are aligned to cache-line multiples
_ALIGN = 64
#: initial size of each parent-owned segment (grown on demand, never shrunk)
_INITIAL_SEGMENT = 1 << 16


def spawn_context():
    """The ``spawn`` multiprocessing context every runtime child uses.

    ``fork`` would duplicate live threads' locks (spill managers, serve
    loops) into the child mid-flight; ``spawn`` starts from a clean
    interpreter, which is the only start method whose children are
    deterministic about what they inherit.
    """
    return multiprocessing.get_context("spawn")


# --------------------------------------------------------------------------- #
# Handle-free model specs
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class ModelSpec:
    """A picklable recipe for building one servable model in any process.

    ``builder`` is either a model name registered with
    :mod:`repro.models.registry` (the preferred, always-picklable spelling)
    or a picklable callable (a module-level function or
    ``functools.partial`` over one); ``kwargs`` are passed to it.  With
    ``registry_root``/``registry_name`` set, the built model's parameters
    come from that registry version — ``mmap_weights=True`` (default) maps
    the published archive read-only instead of copying it, so every process
    serving the same version shares one physical copy of the bytes.

    Example::

        spec = ModelSpec(builder="mlp-tiny",
                         registry_root=str(registry.root),
                         registry_name="winner", version=3)
        model = spec.build()   # in any process

    Raises:
        ConfigurationError: for a spec that cannot round-trip a process
            boundary or names a registry root without a model name.
    """

    builder: Union[str, Callable[..., Any]]
    kwargs: Dict[str, Any] = field(default_factory=dict)
    registry_root: Optional[str] = None
    registry_name: Optional[str] = None
    version: Optional[int] = None
    mmap_weights: bool = True

    def __post_init__(self) -> None:
        if not isinstance(self.builder, str) and not callable(self.builder):
            raise ConfigurationError(
                f"ModelSpec.builder must be a registered model name or a "
                f"callable, got {type(self.builder).__name__}"
            )
        if self.registry_root is not None and self.registry_name is None:
            raise ConfigurationError(
                "ModelSpec names a registry_root but no registry_name to load"
            )
        problem = probe_picklable(self)
        if problem is not None:
            raise ConfigurationError(
                f"ModelSpec cannot cross a process boundary ({problem}); use a "
                "registered model name or a module-level builder function "
                "instead of a closure/lambda"
            )

    def build(self):
        """Construct the model (and attach its weights) in *this* process."""
        if isinstance(self.builder, str):
            from repro.models.registry import create_model

            model = create_model(self.builder, **dict(self.kwargs))
        else:
            model = self.builder(**dict(self.kwargs))
        if self.registry_root is not None:
            from repro.serving.registry import ModelRegistry

            registry = ModelRegistry(self.registry_root)
            if self.mmap_weights:
                from repro.training.checkpoint import map_checkpoint_parameters

                map_checkpoint_parameters(
                    model, registry.archive_path(self.registry_name, self.version)
                )
            else:
                registry.load(self.registry_name, model, version=self.version)
        model.eval()
        return model


# --------------------------------------------------------------------------- #
# Shared-memory array transport
# --------------------------------------------------------------------------- #
def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to a parent-owned segment without adopting its lifecycle.

    ``spawn`` children inherit the parent's resource-tracker process, so the
    attach's duplicate registration is a set-level no-op there — the parent
    remains the sole owner and unlinks in ``close()``.  (Deliberately *no*
    ``resource_tracker.unregister`` here: with a shared tracker that would
    remove the parent's own registration and break leak cleanup.)
    """
    return shared_memory.SharedMemory(name=name)


def _layout(leaves: List[Tuple[str, np.ndarray]]) -> Tuple[list, int]:
    """Assign aligned offsets to leaf arrays; return (fields, total_bytes)."""
    fields = []
    offset = 0
    for key, values in leaves:
        offset = -(-offset // _ALIGN) * _ALIGN
        fields.append((key, values.dtype.str, tuple(values.shape), offset))
        offset += values.nbytes
    return fields, max(offset, 1)

def _write_leaves(
    segment: shared_memory.SharedMemory,
    leaves: List[Tuple[str, np.ndarray]],
    fields: list,
) -> None:
    """Copy each leaf array into the segment at its assigned offset."""
    for (key, dtype, shape, offset), (_, values) in zip(fields, leaves):
        if values.nbytes == 0:
            continue
        view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=segment.buf, offset=offset)
        view[...] = values


def _read_leaves(
    segment: shared_memory.SharedMemory, fields: list, copy: bool
) -> List[np.ndarray]:
    """Materialise leaf arrays back out of the segment.

    ``copy=False`` returns views (valid only while the segment is mapped
    and the writer does not reuse it — the child reads requests this way,
    under the one-request-in-flight protocol); ``copy=True`` detaches
    (the parent copies responses out before the next request reuses the
    segment).
    """
    leaves = []
    for _, dtype, shape, offset in fields:
        view = np.ndarray(shape, dtype=np.dtype(dtype), buffer=segment.buf, offset=offset)
        leaves.append(view.copy() if copy else view)
    return leaves


class _OwnedSegment:
    """A parent-owned, grow-on-demand shared-memory segment."""

    def __init__(self):
        self.shm: Optional[shared_memory.SharedMemory] = None

    def ensure(self, nbytes: int) -> shared_memory.SharedMemory:
        """Return a segment of at least ``nbytes`` (recreating if needed)."""
        if self.shm is None or self.shm.size < nbytes:
            self.destroy()
            size = _INITIAL_SEGMENT
            while size < nbytes:
                size *= 2
            self.shm = shared_memory.SharedMemory(create=True, size=size)
        return self.shm

    def destroy(self) -> None:
        """Close and unlink the segment (the parent is the sole owner)."""
        if self.shm is None:
            return
        try:
            self.shm.close()
            self.shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass
        self.shm = None


def _flatten_output(payload: Any, leaves: List[Tuple[str, np.ndarray]]) -> Any:
    """Flatten a model output (array/tensor/nested tuple-or-list) to leaves.

    Returns a structure descriptor — ``"a"`` for a leaf, ``["t", [...]]`` /
    ``["l", [...]]`` for tuples/lists — that :func:`_rebuild_output`
    inverts on the parent side.
    """
    from repro.autograd.tensor import Tensor

    if isinstance(payload, Tensor):
        payload = payload.data
    if isinstance(payload, np.ndarray):
        leaves.append((f"leaf{len(leaves)}", np.ascontiguousarray(payload)))
        return "a"
    if isinstance(payload, (tuple, list)):
        tag = "t" if isinstance(payload, tuple) else "l"
        return [tag, [_flatten_output(item, leaves) for item in payload]]
    raise ServingError(
        f"model produced an unsupported output type {type(payload).__name__}; "
        "serving supports tensors, arrays, and tuples/lists of them"
    )


def _rebuild_output(structure: Any, leaves: List[np.ndarray]) -> Any:
    """Invert :func:`_flatten_output` (consumes ``leaves`` left to right)."""
    if structure == "a":
        return leaves.pop(0)
    tag, children = structure
    rebuilt = [_rebuild_output(child, leaves) for child in children]
    return tuple(rebuilt) if tag == "t" else rebuilt


# --------------------------------------------------------------------------- #
# The replica child
# --------------------------------------------------------------------------- #
def _safe_send(conn, message) -> bool:
    """Send, downgrading unpicklable payloads to a portable error."""
    try:
        conn.send(message)
        return True
    except (BrokenPipeError, OSError, EOFError):
        return False
    except Exception as error:  # noqa: BLE001 - unpicklable payload
        try:
            conn.send(
                (
                    "err",
                    ServingError(
                        f"reply could not cross the process boundary: "
                        f"{type(error).__name__}: {error}"
                    ),
                )
            )
            return True
        except Exception:  # pragma: no cover - pipe gone mid-downgrade
            return False


def _replica_child_main(spec: ModelSpec, conn, telemetry_enabled: bool = False) -> None:
    """A replica child's whole life: build once, then serve micro-batches.

    Protocol (parent → child): ``("infer", request_meta, pad_to,
    response_segment)`` per micro-batch, ``("write", new_segment)`` after
    granting a grow request, ``("stop",)``/``None``/EOF to exit.  Child →
    parent: ``("ready", None)`` after the build, then per batch one of
    ``("ok", response_meta)``, ``("need", nbytes)`` (response segment too
    small), or ``("err", exception)``.

    With ``telemetry_enabled`` the child keeps its own recorder and drains
    it into every ``"ok"`` reply's metadata (``meta["events"]``) — events
    ride the existing result channel, so a child killed mid-request ships
    nothing partial and the parent trace is never torn.
    """
    tel = Telemetry() if telemetry_enabled else NULL_TELEMETRY
    try:
        if tel.enabled:
            with tel.span("replica.build", cat="serving"):
                model = spec.build()
        else:
            model = spec.build()
    except BaseException as error:  # noqa: BLE001 - mirrored to the parent
        _safe_send(conn, ("err", error))
        conn.close()
        return
    _safe_send(conn, ("ready", None))

    from repro.autograd.tensor import no_grad
    from repro.data.dataloader import Batch
    from repro.serving.replica import pad_rows, request_rows, slice_rows

    segments: Dict[str, shared_memory.SharedMemory] = {}

    def attach(name: str) -> shared_memory.SharedMemory:
        segment = segments.get(name)
        if segment is None:
            segment = segments[name] = _attach_segment(name)
        return segment

    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message is None or message[0] == "stop":
            break
        if message[0] != "infer":  # pragma: no cover - protocol hygiene
            continue
        _, meta, pad_to, response_name = message
        try:
            request = attach(meta["segment"])
            leaves_in = _read_leaves(request, meta["fields"], copy=False)
            arrays = {
                key: values
                for (key, _, _, _), values in zip(meta["fields"], leaves_in)
            }
            rows = request_rows(arrays)
            padded = arrays if pad_to is None else pad_rows(arrays, rows, pad_to)
            if tel.enabled:
                with tel.span("replica.forward", cat="serving", rows=rows):
                    with no_grad():
                        output = model.forward(
                            Batch(arrays={k: np.asarray(v) for k, v in padded.items()})
                        )
            else:
                with no_grad():
                    output = model.forward(
                        Batch(arrays={k: np.asarray(v) for k, v in padded.items()})
                    )
            output = slice_rows(output, 0, rows)
            leaves_out: List[Tuple[str, np.ndarray]] = []
            structure = _flatten_output(output, leaves_out)
            fields, total = _layout(leaves_out)
        except BaseException as error:  # noqa: BLE001 - mirrored to the parent
            _safe_send(conn, ("err", error))
            continue
        granted = True
        while True:
            response = attach(response_name)
            if response.size < total:
                if not _safe_send(conn, ("need", total)):
                    granted = False
                    break
                try:
                    grant = conn.recv()
                except (EOFError, OSError):
                    granted = False
                    break
                if not (isinstance(grant, tuple) and grant[0] == "write"):
                    granted = False
                    break
                response_name = grant[1]
                continue
            _write_leaves(response, leaves_out, fields)
            break
        if granted:
            reply_meta = {
                "segment": response_name,
                "structure": structure,
                "fields": fields,
            }
            if tel.enabled:
                reply_meta["events"] = tel.drain()
            _safe_send(conn, ("ok", reply_meta))
    for segment in segments.values():
        try:
            segment.close()
        except Exception:  # pragma: no cover - exit-path hygiene
            pass
    conn.close()


# --------------------------------------------------------------------------- #
# The parent-side client
# --------------------------------------------------------------------------- #
class ProcessReplica:
    """A replica whose forwards run in a persistent child process.

    Drop-in for :class:`~repro.serving.replica.Replica` wherever a server
    or router calls ``infer(arrays, pad_to)`` / ``close()``: the child is
    spawned lazily (or eagerly via :meth:`start`), builds its model from
    the :class:`ModelSpec` — mmapping registry weights read-only — and then
    answers micro-batches shipped through two reused shared-memory
    segments.

    One request is in flight per replica at a time (the internal lock
    serialises callers — matching how a thread replica occupies its serve
    loop).  If the child dies mid-request the caller gets
    :class:`~repro.exceptions.ReplicaCrashedError` and the *next* request
    respawns a fresh child; :attr:`restarts` counts those respawns.

    Raises:
        ConfigurationError: at construction, for a spec that cannot pickle.
        ReplicaCrashedError: from :meth:`infer`, when the child died with
            this request in flight.
        ServingError: from :meth:`infer`/:meth:`start`, when the child
            failed to build its model.
    """

    #: API parity with Replica: process replicas are never spill-managed —
    #: their memory story is the page cache, not a SpillManager
    manager = None

    def __init__(
        self,
        spec: ModelSpec,
        name: str = "replica",
        start: bool = False,
        telemetry=None,
    ):
        if not isinstance(spec, ModelSpec):
            raise ConfigurationError(
                f"ProcessReplica needs a ModelSpec, got {type(spec).__name__}; "
                "live models cannot cross a process boundary"
            )
        self.spec = spec
        self.name = name
        self._telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.restarts = -1  # first start is not a restart
        self._lock = threading.Lock()
        self._proc = None
        self._conn = None
        self._request = _OwnedSegment()
        self._response = _OwnedSegment()
        self._closed = False
        if start:
            self.start()

    # ------------------------------------------------------------------ #
    @property
    def is_spilled(self) -> bool:
        """API parity with :class:`Replica`; process replicas never spill."""
        return False

    @property
    def pid(self) -> Optional[int]:
        """The live child's pid (``None`` before first use / after death)."""
        process = self._proc
        if process is not None and process.is_alive():
            return process.pid
        return None

    def start(self) -> "ProcessReplica":
        """Spawn the child and wait for its model build (idempotent)."""
        with self._lock:
            self._ensure_child()
        return self

    def spill_stats(self) -> Dict[str, int]:
        """API parity with :class:`Replica`: no spill manager, no counters."""
        return {}

    # ------------------------------------------------------------------ #
    def infer(self, arrays: Dict[str, np.ndarray], pad_to: Optional[int] = None) -> Any:
        """Run one micro-batch in the child; same contract as ``Replica.infer``.

        The request's field arrays are copied into the request segment, the
        child pads/forwards/slices exactly like an in-process replica, and
        the response arrays are copied back out of the response segment —
        so the returned arrays are ordinary heap arrays owned by the
        caller.
        """
        with self._lock:
            self._ensure_child()
            leaves = [
                (key, np.ascontiguousarray(values))
                for key, values in sorted(arrays.items())
            ]
            fields, total = _layout(leaves)
            request = self._request.ensure(total)
            _write_leaves(request, leaves, fields)
            response = self._response.ensure(_INITIAL_SEGMENT)
            meta = {"segment": request.name, "fields": fields}
            try:
                self._conn.send(("infer", meta, pad_to, response.name))
                reply = self._recv()
                if reply[0] == "need":
                    response = self._response.ensure(reply[1])
                    self._conn.send(("write", response.name))
                    reply = self._recv()
            except (BrokenPipeError, EOFError, OSError):
                raise self._crashed()
            if reply[0] == "err":
                raise reply[1]
            meta = reply[1]
            events = meta.get("events")
            if events:
                self._telemetry.ingest(events)
            leaves_out = _read_leaves(self._response.shm, meta["fields"], copy=True)
            return _rebuild_output(meta["structure"], leaves_out)

    def close(self) -> None:
        """Stop the child and unlink both shared segments (idempotent)."""
        with self._lock:
            self._closed = True
            self._stop_child_locked()
            self._request.destroy()
            self._response.destroy()

    def __enter__(self) -> "ProcessReplica":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC backstop
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "live" if self.pid is not None else "cold"
        return f"ProcessReplica({self.name!r}, {state}, restarts={max(self.restarts, 0)})"

    # ------------------------------------------------------------------ #
    def _ensure_child(self) -> None:
        if self._closed:
            raise ServingError(f"replica {self.name!r} is closed")
        if self._proc is not None and self._proc.is_alive():
            return
        self._stop_child_locked()
        context = spawn_context()
        self._conn, child_conn = context.Pipe(duplex=True)
        self._proc = context.Process(
            target=_replica_child_main,
            args=(self.spec, child_conn, self._telemetry.enabled),
            name=f"repro-replica-{self.name}",
            daemon=True,
        )
        self._proc.start()
        child_conn.close()
        self.restarts += 1
        try:
            reply = self._recv(timeout=120.0)
        except (EOFError, OSError):
            raise self._crashed()
        if reply[0] == "err":
            error = reply[1]
            raise error if isinstance(error, ServingError) else ServingError(
                f"replica {self.name!r} failed to build its model: "
                f"{type(error).__name__}: {error}"
            )

    def _recv(self, timeout: Optional[float] = None):
        """Receive one message, raising ``ReplicaCrashedError`` on child death."""
        waited = 0.0
        while not self._conn.poll(0.05):
            waited += 0.05
            if timeout is not None and waited >= timeout:
                raise self._crashed()
            if not self._proc.is_alive() and not self._conn.poll(0.05):
                raise self._crashed()
        return self._conn.recv()

    def _crashed(self) -> ReplicaCrashedError:
        process, self._proc = self._proc, None
        exitcode = process.exitcode if process is not None else None
        return ReplicaCrashedError(
            f"replica {self.name!r} child process died with a request in "
            f"flight (exitcode={exitcode}); the replica will respawn on the "
            "next request"
        )

    def _stop_child_locked(self) -> None:
        process, self._proc = self._proc, None
        conn, self._conn = self._conn, None
        if conn is not None:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        if process is not None:
            process.join(timeout=2.0)
            if process.is_alive():
                process.terminate()
                process.join(timeout=1.0)
            if process.is_alive():  # pragma: no cover - SIGKILL backstop
                process.kill()
                process.join(timeout=1.0)
        if conn is not None:
            conn.close()
