"""Exactness tests for the fused hot-path kernels and in-place updates.

The performance overhaul (fused linear/layernorm/attention kernels, in-place
optimizers, in-place gradient accumulation) is only admissible because it
keeps the arithmetic of the unfused, allocating formulations — the paper's
exact-replication desideratum D3.  These tests pin that contract down to the
bit level: every fused kernel must produce byte-identical outputs *and*
gradients to the composition of primitive ops it replaced, and the in-place
optimizers must match their allocating reference updates exactly.

The one documented exception is softmax-cross-entropy's backward: the fused
op computes ``(probs - onehot) / n`` where the composition computes
``probs/n - onehot/n`` — algebraically identical, one final-ulp rounding
apart — so its forward is compared bitwise and its backward to float64-tight
tolerance.
"""

import numpy as np
import pytest

from repro.autograd import Tensor, check_gradients, ops
from repro.data import DataLoader
from repro.models import BertConfig, BertForSpanPrediction, FeedForwardConfig, FeedForwardNetwork
from repro.nn import LayerNorm, Linear
from repro.optim import SGD, Adam, AdamW
from repro.training import ShardedModelExecutor


def _tensors(*arrays):
    return tuple(Tensor(a, requires_grad=True) for a in arrays)


def _assert_identical(label, a, b):
    a, b = np.asarray(a), np.asarray(b)
    assert a.dtype == b.dtype, (label, a.dtype, b.dtype)
    assert np.array_equal(a, b), (
        f"{label}: max abs diff {np.abs(a.astype(np.float64) - b.astype(np.float64)).max():.3e}"
    )


class TestFusedLinearParity:
    """ops.linear == matmul(x, W.T) + b, bit for bit, values and gradients."""

    @pytest.mark.parametrize("shape", [(5, 7), (4, 6, 7), (2, 3, 4, 7)])
    @pytest.mark.parametrize("bias", [True, False])
    def test_bitwise_parity_with_composition(self, shape, bias):
        rng = np.random.default_rng(hash((shape, bias)) % 2**32)
        x_data = rng.normal(size=shape).astype(np.float32)
        w_data = rng.normal(size=(9, shape[-1])).astype(np.float32)
        b_data = rng.normal(size=(9,)).astype(np.float32)
        grad = rng.normal(size=shape[:-1] + (9,)).astype(np.float32)

        x1, w1, b1 = _tensors(x_data, w_data, b_data)
        composed = x1.matmul(w1.T) + b1 if bias else x1.matmul(w1.T)
        composed.backward(grad)

        x2, w2, b2 = _tensors(x_data, w_data, b_data)
        fused = ops.linear(x2, w2, b2 if bias else None)
        fused.backward(grad)

        _assert_identical("output", composed.data, fused.data)
        _assert_identical("grad_x", x1.grad, x2.grad)
        _assert_identical("grad_w", w1.grad, w2.grad)
        if bias:
            _assert_identical("grad_b", b1.grad, b2.grad)

    def test_gradcheck(self):
        rng = np.random.default_rng(0)
        x, w, b = _tensors(
            rng.normal(size=(3, 4)), rng.normal(size=(5, 4)), rng.normal(size=(5,))
        )
        check_gradients(lambda *t: ops.linear(*t).sum(), [x, w, b])

    def test_linear_module_uses_fused_kernel(self):
        layer = Linear(4, 3, rng=np.random.default_rng(0))
        out = layer(Tensor(np.ones((2, 4), dtype=np.float32)))
        assert type(out._ctx).__name__ == "LinearFunction"


class TestFusedLayerNormParity:
    """ops.layer_norm == (x-mean)/sqrt(var+eps)*w + b, bit for bit."""

    @staticmethod
    def _composed(x, weight, bias, eps):
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        variance = (centered * centered).mean(axis=-1, keepdims=True)
        normalised = centered / (variance + eps).sqrt()
        return normalised * weight + bias

    @pytest.mark.parametrize("shape", [(4, 8), (2, 5, 8), (2, 3, 4, 8)])
    def test_bitwise_parity_with_composition(self, shape):
        rng = np.random.default_rng(hash(shape) % 2**32)
        x_data = (rng.normal(size=shape) * 3.0).astype(np.float32)
        w_data = rng.normal(size=(8,)).astype(np.float32)
        b_data = rng.normal(size=(8,)).astype(np.float32)
        grad = rng.normal(size=shape).astype(np.float32)

        x1, w1, b1 = _tensors(x_data, w_data, b_data)
        composed = self._composed(x1, w1, b1, 1e-5)
        composed.backward(grad)

        x2, w2, b2 = _tensors(x_data, w_data, b_data)
        fused = ops.layer_norm(x2, w2, b2, eps=1e-5)
        fused.backward(grad)

        _assert_identical("output", composed.data, fused.data)
        _assert_identical("grad_x", x1.grad, x2.grad)
        _assert_identical("grad_w", w1.grad, w2.grad)
        _assert_identical("grad_b", b1.grad, b2.grad)

    def test_gradcheck(self):
        rng = np.random.default_rng(1)
        x, w, b = _tensors(
            rng.normal(size=(3, 6)), rng.normal(size=(6,)), rng.normal(size=(6,))
        )
        check_gradients(lambda *t: ops.layer_norm(*t).sum(), [x, w, b])

    def test_layernorm_module_uses_fused_kernel(self):
        layer = LayerNorm(6)
        out = layer(Tensor(np.random.default_rng(0).normal(size=(2, 6)).astype(np.float32)))
        assert type(out._ctx).__name__ == "LayerNormFunction"


class TestAttentionCoreParity:
    """ops.attention_core == softmax(q @ k^T * scale) @ v, bit for bit."""

    def test_bitwise_parity_with_composition(self):
        rng = np.random.default_rng(7)
        shape = (3, 2, 16, 8)
        q_data, k_data, v_data = (rng.normal(size=shape).astype(np.float32) for _ in range(3))
        grad = rng.normal(size=shape).astype(np.float32)
        # A python float, as in MultiHeadSelfAttention (a numpy float64
        # scalar would upcast the composed path's arithmetic to float64).
        scale = 1.0 / float(np.sqrt(8.0))

        q1, k1, v1 = _tensors(q_data, k_data, v_data)
        composed = ops.softmax(q1.matmul(k1.transpose(0, 1, 3, 2)) * scale, axis=-1).matmul(v1)
        composed.backward(grad)

        q2, k2, v2 = _tensors(q_data, k_data, v_data)
        fused = ops.attention_core(q2, k2, v2, scale=scale)
        fused.backward(grad)

        _assert_identical("output", composed.data, fused.data)
        _assert_identical("grad_q", q1.grad, q2.grad)
        _assert_identical("grad_k", k1.grad, k2.grad)
        _assert_identical("grad_v", v1.grad, v2.grad)

    def test_gradcheck(self):
        rng = np.random.default_rng(2)
        q, k, v = _tensors(*(rng.normal(size=(2, 3, 4)) for _ in range(3)))
        check_gradients(lambda *t: ops.attention_core(*t, scale=0.5).sum(), [q, k, v])

    def test_all_valid_mask_matches_no_mask(self):
        """An all-True attention mask must be a bitwise no-op."""
        from repro.nn import MultiHeadSelfAttention

        x_data = np.random.default_rng(3).normal(size=(2, 5, 8)).astype(np.float32)
        layer = MultiHeadSelfAttention(8, 2, dropout=0.0, rng=np.random.default_rng(4))
        out_none = layer(Tensor(x_data))
        out_mask = layer(Tensor(x_data), attention_mask=np.ones((2, 5), dtype=bool))
        _assert_identical("masked output", out_none.data, out_mask.data)


class TestSoftmaxCrossEntropyParity:
    """The fused CE op versus log_softmax + gather + mean."""

    def _case(self, n=6, c=5, seed=11):
        rng = np.random.default_rng(seed)
        logits = rng.normal(size=(n, c)).astype(np.float32)
        targets = rng.integers(0, c, size=(n,))
        return logits, targets

    def test_forward_bitwise_parity(self):
        logits_data, targets = self._case()
        fused = ops.cross_entropy(Tensor(logits_data), targets)

        picked = ops.log_softmax(Tensor(logits_data), axis=-1)[
            np.arange(len(targets)), targets
        ]
        composed = -picked.mean()
        _assert_identical("loss", composed.data, fused.data)

    def test_backward_matches_composition_tightly(self):
        # (probs - onehot)/n vs probs/n - onehot/n: algebraically equal,
        # different final rounding — compared at float64-tight tolerance.
        logits_data, targets = self._case()
        t1 = Tensor(logits_data.astype(np.float64), requires_grad=True)
        ops.cross_entropy(t1, targets).backward()
        t2 = Tensor(logits_data.astype(np.float64), requires_grad=True)
        (-ops.log_softmax(t2, axis=-1)[np.arange(len(targets)), targets].mean()).backward()
        np.testing.assert_allclose(t1.grad, t2.grad, rtol=0, atol=1e-15)

    def test_gradcheck(self):
        logits_data, targets = self._case(4, 3, seed=12)
        (logits,) = _tensors(logits_data)
        check_gradients(lambda t: ops.cross_entropy(t, targets), [logits])


class TestShardedParityAfterOverhaul:
    """Sharded execution still replicates whole-model training exactly."""

    def test_mlp_gradients_bitwise_identical(self):
        config = FeedForwardConfig.tiny()
        rng = np.random.default_rng(0)
        batch = _make_batch(
            features=rng.normal(size=(16, config.input_dim)).astype(np.float32),
            label=rng.integers(0, config.num_classes, size=(16,)).astype(np.int64),
        )
        whole = FeedForwardNetwork(config, seed=3)
        sharded = FeedForwardNetwork(config, seed=3)

        loss = whole.loss_on_batch(batch)
        whole.zero_grad()
        loss.backward()

        executor = ShardedModelExecutor(sharded, [(0, 1), (1, 3)])
        executor.begin_batch()
        sharded.zero_grad()
        for index in range(executor.num_shards):
            executor.run_forward(index, batch)
        sharded_loss = executor.compute_loss(batch)
        for index in reversed(range(executor.num_shards)):
            executor.run_backward(index)

        _assert_identical("loss", loss.data, sharded_loss.data)
        for (name, p_whole), (_, p_sharded) in zip(
            whole.named_parameters(), sharded.named_parameters()
        ):
            _assert_identical(name, p_whole.grad, p_sharded.grad)

    def test_transformer_gradients_bitwise_identical(self):
        config = BertConfig.tiny(vocab_size=32, seq_len=12)
        rng = np.random.default_rng(1)
        batch = _make_batch(
            input_ids=rng.integers(0, 32, size=(4, 12)).astype(np.int64),
            attention_mask=np.ones((4, 12), dtype=bool),
            start_position=rng.integers(0, 12, size=(4,)).astype(np.int64),
            end_position=rng.integers(0, 12, size=(4,)).astype(np.int64),
        )
        whole = BertForSpanPrediction(config, seed=5)
        sharded = BertForSpanPrediction(config, seed=5)

        loss = whole.loss_on_batch(batch)
        whole.zero_grad()
        loss.backward()

        executor = ShardedModelExecutor(sharded, [(0, 2), (2, 4)])
        executor.begin_batch()
        sharded.zero_grad()
        for index in range(executor.num_shards):
            executor.run_forward(index, batch)
        executor.compute_loss(batch)
        for index in reversed(range(executor.num_shards)):
            executor.run_backward(index)

        for (name, p_whole), (_, p_sharded) in zip(
            whole.named_parameters(), sharded.named_parameters()
        ):
            _assert_identical(name, p_whole.grad, p_sharded.grad)


class TestGraphFreeing:
    """Eager context freeing must fail loudly, never corrupt gradients."""

    def test_second_backward_through_freed_graph_raises(self):
        from repro.exceptions import AutogradError

        x = Tensor([1.0, 2.0], requires_grad=True)
        y = (x * x).sum()
        y.backward()
        with pytest.raises(AutogradError, match="retain_graph"):
            y.backward()
        assert np.allclose(x.grad, [2.0, 4.0])  # first pass untouched

    def test_retain_graph_allows_repeated_backward(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = (x * x).sum()
        y.backward(retain_graph=True)
        y.backward()
        assert np.allclose(x.grad, [4.0, 8.0])

    def test_partially_freed_shared_subgraph_raises(self):
        from repro.exceptions import AutogradError

        x = Tensor([1.0, 2.0], requires_grad=True)
        shared = x * 3.0
        a = shared.sum()
        b = (shared * 2.0).sum()
        a.backward()  # frees shared's context
        with pytest.raises(AutogradError, match="freed"):
            b.backward()


class TestInPlaceOptimizerParity:
    """The in-place/scratch-buffer updates match the allocating formulas."""

    @staticmethod
    def _reference_adam(params, grads, lr, betas, eps, weight_decay, decoupled, steps):
        beta1, beta2 = betas
        m = [np.zeros_like(p) for p in params]
        v = [np.zeros_like(p) for p in params]
        params = [p.copy() for p in params]
        for step in range(1, steps + 1):
            for i, grad in enumerate(grads):
                if weight_decay and not decoupled:
                    grad = grad + weight_decay * params[i]
                m[i] = beta1 * m[i] + (1.0 - beta1) * grad
                v[i] = beta2 * v[i] + (1.0 - beta2) * (grad * grad)
                m_hat = m[i] / (1.0 - beta1 ** step)
                v_hat = v[i] / (1.0 - beta2 ** step)
                update = m_hat / (np.sqrt(v_hat) + eps)
                if weight_decay and decoupled:
                    update = update + weight_decay * params[i]
                params[i] = params[i] - lr * update
        return params

    @pytest.mark.parametrize("decoupled", [False, True])
    @pytest.mark.parametrize("weight_decay", [0.0, 0.01])
    def test_adam_matches_allocating_reference(self, decoupled, weight_decay):
        from repro.nn import Parameter

        rng = np.random.default_rng(8)
        datas = [rng.normal(size=s).astype(np.float32) for s in [(6, 4), (4,), (2, 3)]]
        grads = [rng.normal(size=d.shape).astype(np.float32) for d in datas]
        params = [Parameter(d.copy()) for d in datas]
        cls = AdamW if decoupled else Adam
        optimizer = cls(params, lr=1e-2, weight_decay=weight_decay)
        for _ in range(5):
            for param, grad in zip(params, grads):
                param.grad = grad.copy()
            optimizer.step()
        expected = self._reference_adam(
            datas, grads, 1e-2, (0.9, 0.999), 1e-8, weight_decay, decoupled, steps=5
        )
        for param, exp in zip(params, expected):
            _assert_identical("param", param.data, exp)

    def test_sgd_momentum_matches_allocating_reference(self):
        from repro.nn import Parameter

        rng = np.random.default_rng(9)
        data = rng.normal(size=(5, 3)).astype(np.float32)
        grad = rng.normal(size=(5, 3)).astype(np.float32)
        param = Parameter(data.copy())
        optimizer = SGD([param], lr=0.1, momentum=0.9, weight_decay=0.01)
        expected = data.copy()
        velocity = np.zeros_like(expected)
        for _ in range(4):
            param.grad = grad.copy()
            optimizer.step()
            g = grad + 0.01 * expected
            velocity = 0.9 * velocity + g
            expected = expected - 0.1 * velocity
        _assert_identical("param", param.data, expected)

    def test_step_leaves_param_grad_untouched(self):
        from repro.nn import Parameter

        param = Parameter(np.ones((3,), dtype=np.float32))
        grad = np.full((3,), 0.25, dtype=np.float32)
        param.grad = grad
        Adam([param], lr=1e-3).step()
        assert param.grad is grad
        _assert_identical("grad", grad, np.full((3,), 0.25, dtype=np.float32))


def _make_batch(**arrays):
    from repro.data.dataloader import Batch

    return Batch({name: np.asarray(values) for name, values in arrays.items()})


class TestCompressedCheckpoint:
    def test_compressed_roundtrip_and_smaller(self, tmp_path):
        from repro.training import load_checkpoint, save_checkpoint

        model = FeedForwardNetwork(FeedForwardConfig.tiny(), seed=2)
        plain = save_checkpoint(model, tmp_path / "plain.npz", metadata={"epoch": 1})
        compressed = save_checkpoint(
            model, tmp_path / "small.npz", metadata={"epoch": 1}, compressed=True
        )
        assert compressed.stat().st_size < plain.stat().st_size

        clone = FeedForwardNetwork(FeedForwardConfig.tiny(), seed=9)
        metadata = load_checkpoint(clone, compressed)
        assert int(metadata["epoch"]) == 1
        for (name, p_model), (_, p_clone) in zip(
            model.named_parameters(), clone.named_parameters()
        ):
            _assert_identical(name, p_model.data, p_clone.data)
