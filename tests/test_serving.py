"""The serving subsystem: exactness, faults, and the deploy path.

The contracts under test, in order of importance:

* **batched == unbatched** — responses coalesced into micro-batches are
  ``array_equal`` to single-request forwards at the same compute geometry;
* **spilled == resident** — a replica serving through a spill manager
  answers bit-identically to a fully resident one;
* **registry round-trip** — published parameters load back bit-exactly,
  versions are immutable and monotonically assigned;
* **faults are values** — a full queue rejects at admission, an expired
  request times out without running inference, a replica failure reaches
  the caller as a ``ServingError``; the server survives all three.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.data.dataloader import Batch
from repro.exceptions import (
    CheckpointError,
    ConfigurationError,
    RequestTimeoutError,
    ServerOverloadedError,
    ServingError,
)
from repro.models import FeedForwardConfig, FeedForwardNetwork
from repro.serving import (
    DynamicBatcher,
    InferenceRequest,
    LoadGenerator,
    ModelRegistry,
    ModelServer,
    Replica,
    warm_up,
)

CONFIG = FeedForwardConfig(input_dim=16, hidden_dims=(24, 16), num_classes=4)
GEOMETRY = 8  # compute geometry shared by every exactness comparison


def make_model(seed: int = 5) -> FeedForwardNetwork:
    return FeedForwardNetwork(CONFIG, seed=seed)


def model_bytes(model) -> int:
    return sum(p.data.nbytes for p in model.parameters())


@pytest.fixture
def requests_48():
    rng = np.random.default_rng(11)
    return [rng.normal(size=(1, 16)).astype(np.float32) for _ in range(48)]


@pytest.fixture
def reference_outputs(requests_48):
    replica = Replica.resident(make_model())
    return [replica.infer({"features": x}, pad_to=GEOMETRY) for x in requests_48]


class _SleepyModel(FeedForwardNetwork):
    """A model whose forward takes a configurable wall-clock time."""

    def __init__(self, delay_seconds: float):
        super().__init__(CONFIG, seed=5)
        self.delay_seconds = delay_seconds

    def forward(self, batch: Batch):
        time.sleep(self.delay_seconds)
        return super().forward(batch)


# --------------------------------------------------------------------------- #
# Exactness
# --------------------------------------------------------------------------- #
class TestExactness:
    def test_batched_equals_unbatched_single_request_forwards(
        self, requests_48, reference_outputs
    ):
        server = ModelServer(
            [Replica.resident(make_model())],
            max_batch_size=GEOMETRY,
            max_wait_ms=5.0,
            max_queue=64,
        )
        with server:
            handles = [server.submit(x) for x in requests_48]
            responses = [handle.result(timeout=10.0) for handle in handles]
        metrics = server.metrics()
        # Batching actually happened (48 requests in far fewer forwards)...
        assert metrics["batches"] < len(requests_48)
        assert metrics["mean_batch_rows"] > 1.0
        # ...and every coalesced response is bit-identical to the unbatched
        # single-request forward at the same geometry.
        for response, expected in zip(responses, reference_outputs):
            assert np.array_equal(response, expected)

    def test_multi_row_requests_are_not_split_and_stay_exact(self, requests_48):
        whole = np.concatenate(requests_48[:6], axis=0)  # one 6-row request
        replica = Replica.resident(make_model())
        expected = replica.infer({"features": whole}, pad_to=GEOMETRY)
        server = ModelServer(
            [Replica.resident(make_model())], max_batch_size=GEOMETRY, max_wait_ms=1.0
        )
        with server:
            response = server.request({"features": whole})
        assert np.array_equal(response, expected)

    def test_spilled_replica_equals_resident(self, requests_48, reference_outputs):
        model = make_model()
        replica = Replica.spilled(
            model,
            memory_budget=int(model_bytes(model) * 0.6),
            scrub_evicted=True,  # any missed restore would poison the output
            name="spilled",
        )
        try:
            responses = [
                replica.infer({"features": x}, pad_to=GEOMETRY)
                for x in requests_48[:16]
            ]
        finally:
            stats = replica.spill_stats()
            replica.close()
        assert stats["evictions"] > 0  # the budget actually forced spilling
        for response, expected in zip(responses, reference_outputs):
            assert np.array_equal(response, expected)

    def test_spilled_server_equals_resident_server(self, requests_48, reference_outputs):
        model = make_model()
        server = ModelServer(
            [
                Replica.spilled(
                    model,
                    memory_budget=int(model_bytes(model) * 0.6),
                    scrub_evicted=True,
                    name="spilled-served",
                )
            ],
            max_batch_size=GEOMETRY,
            max_wait_ms=2.0,
        )
        with server:
            handles = [server.submit(x) for x in requests_48[:24]]
            responses = [handle.result(timeout=10.0) for handle in handles]
        for response, expected in zip(responses, reference_outputs):
            assert np.array_equal(response, expected)
        # close() restored evicted shards: the model is NaN-free again.
        assert all(np.isfinite(p.data).all() for p in model.parameters())

    def test_replica_pool_with_factory_stays_exact(self, requests_48, reference_outputs):
        from repro.api import serve

        server = serve(
            lambda: make_model(),
            replicas=2,
            max_batch_size=GEOMETRY,
            max_wait_ms=1.0,
        )
        try:
            handles = [server.submit(x) for x in requests_48]
            responses = [handle.result(timeout=10.0) for handle in handles]
        finally:
            server.stop()
        for response, expected in zip(responses, reference_outputs):
            assert np.array_equal(response, expected)

    def test_compute_geometry_is_independent_of_max_batch_size(
        self, requests_48, reference_outputs
    ):
        # An unbatched server (max_batch_size=1) at the shared geometry
        # answers bit-identically to the batched one — the property the
        # E13 benchmark's throughput comparison rests on.
        server = ModelServer(
            [Replica.resident(make_model())],
            max_batch_size=1,
            compute_batch_size=GEOMETRY,
            max_wait_ms=0.0,
        )
        with server:
            responses = [server.request(x) for x in requests_48[:12]]
        for response, expected in zip(responses, reference_outputs):
            assert np.array_equal(response, expected)


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #
class TestModelRegistry:
    def test_publish_load_roundtrip_is_bit_exact(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        model = make_model(seed=3)
        published = registry.publish("mlp", model, metadata={"loss": 0.25, "note": "best"})
        assert published.version == 1

        fresh = make_model(seed=99)
        loaded = registry.load("mlp", fresh)
        assert loaded.version == 1
        assert loaded.metadata["loss"] == 0.25
        assert loaded.metadata["note"] == "best"
        for (name, expected), (_, actual) in zip(
            model.named_parameters(), fresh.named_parameters()
        ):
            assert np.array_equal(expected.data, actual.data), name

    def test_versions_are_monotonic_and_immutable(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        assert registry.publish("mlp", make_model(seed=1)).version == 1
        assert registry.publish("mlp", make_model(seed=2)).version == 2
        assert registry.versions("mlp") == [1, 2]
        assert registry.latest_version("mlp") == 2
        with pytest.raises(CheckpointError):
            registry.publish("mlp", make_model(), version=2)

    def test_load_specific_version(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        first = make_model(seed=1)
        registry.publish("mlp", first)
        registry.publish("mlp", make_model(seed=2))
        target = make_model(seed=50)
        registry.load("mlp", target, version=1)
        for (_, expected), (_, actual) in zip(
            first.named_parameters(), target.named_parameters()
        ):
            assert np.array_equal(expected.data, actual.data)

    def test_metadata_without_loading(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        registry.publish("mlp", make_model(), metadata={"epochs_trained": 4})
        assert registry.metadata("mlp")["epochs_trained"] == 4

    def test_unknown_name_and_version_raise(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        with pytest.raises(CheckpointError):
            registry.latest_version("ghost")
        registry.publish("mlp", make_model())
        with pytest.raises(CheckpointError):
            registry.load("mlp", make_model(), version=7)

    def test_invalid_names_are_rejected(self, tmp_path):
        registry = ModelRegistry(tmp_path)
        for bad in ("", "a/b", "a b", "../up"):
            with pytest.raises(ConfigurationError):
                registry.publish(bad, make_model())

    def test_names_skips_unrelated_directories(self, tmp_path):
        (tmp_path / "old runs").mkdir()  # stray entry, not a model name
        registry = ModelRegistry(tmp_path)
        registry.publish("mlp", make_model())
        assert registry.names() == ["mlp"]
        assert "mlp" in repr(registry)


# --------------------------------------------------------------------------- #
# Process replicas: exactness across the process boundary
# --------------------------------------------------------------------------- #
def _spec_model():
    """Module-level factory: ModelSpec builders must pickle into children."""
    return make_model()


class TestProcessServing:
    def test_process_replica_equals_thread_replica(
        self, requests_48, reference_outputs
    ):
        from repro.api import ModelSpec, ProcessReplica

        with ProcessReplica(ModelSpec(builder=_spec_model)) as replica:
            responses = [
                replica.infer({"features": x}, pad_to=GEOMETRY)
                for x in requests_48[:12]
            ]
        # Bit-identical: shm transport and the child's own forward change
        # nothing about the numbers.
        for response, expected in zip(responses, reference_outputs):
            assert np.array_equal(response, expected)

    def test_process_server_equals_thread_server(
        self, requests_48, reference_outputs
    ):
        from repro.api import ModelSpec, serve

        server = serve(
            ModelSpec(builder=_spec_model),
            replicas=2,
            replica_mode="process",
            max_batch_size=GEOMETRY,
            max_wait_ms=2.0,
            name="proc-server",
        )
        with server:
            handles = [server.submit(x) for x in requests_48[:24]]
            responses = [handle.result(timeout=60.0) for handle in handles]
        for response, expected in zip(responses, reference_outputs):
            assert np.array_equal(response, expected)

    def test_registry_spec_mmaps_published_weights_exactly(self, tmp_path):
        from repro.api import ModelSpec, ProcessReplica

        registry = ModelRegistry(tmp_path)
        trained = make_model(seed=21)
        registry.publish("winner", trained)
        spec = ModelSpec(
            builder=_spec_model,
            registry_root=str(registry.root),
            registry_name="winner",
        )
        x = np.random.default_rng(9).normal(size=(3, 16)).astype(np.float32)
        expected = Replica.resident(trained).infer({"features": x}, pad_to=GEOMETRY)
        # build() in this process: the mmapped parameters forward bit-exactly.
        local = spec.build()
        assert np.array_equal(
            Replica.resident(local).infer({"features": x}, pad_to=GEOMETRY), expected
        )
        # And in a child process, through the shm transport.
        with ProcessReplica(spec) as replica:
            assert np.array_equal(
                replica.infer({"features": x}, pad_to=GEOMETRY), expected
            )

    def test_spec_validation(self, tmp_path):
        from repro.api import ModelSpec, ProcessReplica, serve

        with pytest.raises(ConfigurationError, match="process boundary"):
            ModelSpec(builder=lambda: make_model())  # lambdas cannot pickle
        with pytest.raises(ConfigurationError, match="registry_name"):
            ModelSpec(builder=_spec_model, registry_root=str(tmp_path))
        with pytest.raises(ConfigurationError, match="ModelSpec"):
            ProcessReplica(make_model())  # live models cannot cross
        with pytest.raises(ConfigurationError, match="ModelSpec"):
            serve(make_model(), replica_mode="process", start=False)
        with pytest.raises(ConfigurationError, match="spill"):
            serve(
                ModelSpec(builder=_spec_model),
                replica_mode="process",
                memory_budget=1 << 20,
                start=False,
            )

    def test_structured_outputs_cross_the_boundary(self):
        from repro.api import ModelSpec, ProcessReplica

        with ProcessReplica(ModelSpec(builder=_build_multi_output)) as replica:
            x = np.random.default_rng(4).normal(size=(2, 16)).astype(np.float32)
            logits, (probs, total) = replica.infer({"features": x}, pad_to=4)
        assert logits.shape == (2, 4)
        assert probs.shape == (2, 4)
        assert np.allclose(np.exp(probs), np.exp(probs))  # arrays, not views
        assert total.shape == (2,)


class _MultiOutputModel(FeedForwardNetwork):
    """Returns a nested (logits, (probs, row_sum)) structure."""

    def forward(self, batch: Batch):
        logits = super().forward(batch)
        values = logits.data if hasattr(logits, "data") else logits
        exp = np.exp(values - values.max(axis=-1, keepdims=True))
        probs = exp / exp.sum(axis=-1, keepdims=True)
        return logits, (probs, values.sum(axis=-1))


def _build_multi_output():
    return _MultiOutputModel(CONFIG, seed=5)


# --------------------------------------------------------------------------- #
# Batcher semantics
# --------------------------------------------------------------------------- #
class TestDynamicBatcher:
    @staticmethod
    def _request(rows=1, deadline=None):
        return InferenceRequest(
            arrays={"features": np.zeros((rows, 4), np.float32)},
            rows=rows,
            submitted=time.monotonic(),
            deadline=deadline,
        )

    def test_coalesces_whole_requests_in_fifo_order(self):
        batcher = DynamicBatcher(max_batch_size=8, max_wait_ms=5.0, max_queue=16)
        submitted = [self._request(rows=3) for _ in range(3)]
        for request in submitted:
            batcher.submit(request)
        batch = batcher.next_batch()
        # 3+3 fits, the third 3-row request would overflow 8: not split.
        assert batch == submitted[:2]
        assert batcher.next_batch() == submitted[2:]

    def test_flushes_partial_batch_after_max_wait(self):
        batcher = DynamicBatcher(max_batch_size=8, max_wait_ms=10.0, max_queue=16)
        lone = self._request()
        batcher.submit(lone)
        started = time.monotonic()
        assert batcher.next_batch() == [lone]
        assert time.monotonic() - started < 5.0  # waited ~10ms, not forever

    def test_queue_full_rejects(self):
        batcher = DynamicBatcher(max_batch_size=4, max_wait_ms=1.0, max_queue=2)
        batcher.submit(self._request())
        batcher.submit(self._request())
        with pytest.raises(ServerOverloadedError):
            batcher.submit(self._request())

    def test_oversized_request_rejected_up_front(self):
        batcher = DynamicBatcher(max_batch_size=4, max_wait_ms=1.0, max_queue=4)
        with pytest.raises(ConfigurationError):
            batcher.submit(self._request(rows=5))

    def test_expired_requests_fail_without_inference(self):
        batcher = DynamicBatcher(max_batch_size=4, max_wait_ms=1.0, max_queue=4)
        expired = self._request(deadline=time.monotonic() - 0.01)
        live = self._request()
        batcher.submit(expired)
        batcher.submit(live)
        assert batcher.next_batch() == [live]
        with pytest.raises(RequestTimeoutError):
            expired.response.result(timeout=0.1)

    def test_fill_window_is_anchored_to_the_head_request(self):
        # A request that already waited (e.g. for a busy replica) longer
        # than max_wait_ms must be taken immediately, not re-delayed by a
        # fresh collection window.
        batcher = DynamicBatcher(max_batch_size=8, max_wait_ms=200.0, max_queue=4)
        stale = self._request()
        stale.submitted -= 1.0  # arrived one second ago
        batcher.submit(stale)
        started = time.monotonic()
        assert batcher.next_batch() == [stale]
        assert time.monotonic() - started < 0.1  # no second 200 ms wait

    def test_saturated_batch_dispatches_without_waiting(self):
        # A full batch cannot grow, so a huge fill window must not delay it.
        batcher = DynamicBatcher(max_batch_size=4, max_wait_ms=5000.0, max_queue=16)
        saturating = [self._request(rows=2), self._request(rows=2)]
        for request in saturating:
            batcher.submit(request)
        started = time.monotonic()
        assert batcher.next_batch() == saturating
        assert time.monotonic() - started < 1.0  # not the 5-second window

    def test_unfittable_next_request_saturates_the_batch(self):
        # 3 rows collected, the next 3-row request would overflow 4: waiting
        # longer cannot add it (requests are never split), so dispatch now.
        batcher = DynamicBatcher(max_batch_size=4, max_wait_ms=5000.0, max_queue=16)
        first = self._request(rows=3)
        blocked = self._request(rows=3)
        batcher.submit(first)
        batcher.submit(blocked)
        started = time.monotonic()
        assert batcher.next_batch() == [first]
        assert time.monotonic() - started < 1.0
        assert batcher.next_batch() == [blocked]

    def test_unsaturated_batch_still_waits_the_window(self):
        # Saturation dispatch must not erode the fill window for batches
        # that could still grow: a lone 1-row request waits ~max_wait_ms.
        batcher = DynamicBatcher(max_batch_size=4, max_wait_ms=50.0, max_queue=16)
        lone = self._request(rows=1)
        batcher.submit(lone)
        started = time.monotonic()
        assert batcher.next_batch() == [lone]
        assert time.monotonic() - started >= 0.045

    def test_close_drains_then_signals_none(self):
        batcher = DynamicBatcher(max_batch_size=4, max_wait_ms=1.0, max_queue=4)
        queued = self._request()
        batcher.submit(queued)
        batcher.close()
        with pytest.raises(ServingError):
            batcher.submit(self._request())
        assert batcher.next_batch() == [queued]
        assert batcher.next_batch() is None


# --------------------------------------------------------------------------- #
# Server fault paths
# --------------------------------------------------------------------------- #
class TestServerFaults:
    def test_queue_full_rejection_and_metrics(self):
        server = ModelServer(
            [Replica.resident(_SleepyModel(0.2))],
            max_batch_size=1,
            max_wait_ms=0.0,
            max_queue=2,
        )
        with server:
            first = server.submit(np.zeros((1, 16), np.float32))
            time.sleep(0.05)  # let the replica pick it up and block in sleep
            server.submit(np.zeros((1, 16), np.float32))
            server.submit(np.zeros((1, 16), np.float32))
            with pytest.raises(ServerOverloadedError):
                server.submit(np.zeros((1, 16), np.float32))
            first.result(timeout=5.0)
        assert server.metrics()["rejected"] >= 1.0
        assert server.metrics()["completed"] == 3.0  # queued work drained on stop

    def test_per_request_timeout(self):
        server = ModelServer(
            [Replica.resident(_SleepyModel(0.2))],
            max_batch_size=1,
            max_wait_ms=0.0,
            max_queue=8,
            timeout_ms=50.0,
        )
        with server:
            blocker = server.submit(np.zeros((1, 16), np.float32), timeout_ms=5000.0)
            doomed = server.submit(np.zeros((1, 16), np.float32))
            with pytest.raises(RequestTimeoutError):
                doomed.result(timeout=5.0)
            blocker.result(timeout=5.0)
        assert server.metrics()["timed_out"] >= 1.0

    def test_mismatched_fields_in_one_batch_fail_the_batch_not_the_replica(self):
        server = ModelServer(
            [Replica.resident(make_model())], max_batch_size=4, max_wait_ms=20.0
        )
        with server:
            # Submitted back to back so the batcher coalesces them; their
            # field sets disagree, so the concat itself fails.
            first = server.submit({"features": np.zeros((1, 16), np.float32)})
            second = server.submit(
                {
                    "features": np.zeros((1, 16), np.float32),
                    "mask": np.zeros((1, 16), np.float32),
                }
            )
            with pytest.raises(ServingError):
                first.result(timeout=5.0)
            with pytest.raises(ServingError):
                second.result(timeout=5.0)
            # The replica loop survived: the server still answers, exactly.
            x = np.ones((1, 16), np.float32)
            expected = Replica.resident(make_model()).infer({"features": x}, pad_to=4)
            assert np.array_equal(server.request(x), expected)

    def test_replica_failure_reaches_caller_and_server_survives(self):
        model = make_model()
        server = ModelServer(
            [Replica.resident(model)], max_batch_size=2, max_wait_ms=0.0
        )
        with server:
            # A request whose fields the model cannot consume fails its batch.
            bad = server.submit({"not_features": np.zeros((1, 16), np.float32)})
            with pytest.raises(ServingError):
                bad.result(timeout=5.0)
            # The server is still alive and exact afterwards.
            x = np.ones((1, 16), np.float32)
            expected = Replica.resident(make_model()).infer({"features": x}, pad_to=2)
            assert np.array_equal(server.request(x), expected)
        assert server.metrics()["failed"] >= 1.0

    def test_submit_requires_running_server(self):
        server = ModelServer([Replica.resident(make_model())], max_batch_size=2)
        with pytest.raises(ServingError):
            server.submit(np.zeros((1, 16), np.float32))
        server.start()
        server.stop()
        with pytest.raises(ServingError):
            server.start()

    def test_inconsistent_request_rows_rejected(self):
        server = ModelServer([Replica.resident(make_model())], max_batch_size=4)
        with server:
            with pytest.raises(ConfigurationError):
                server.submit(
                    {
                        "features": np.zeros((2, 16), np.float32),
                        "label": np.zeros((3,), np.int64),
                    }
                )


# --------------------------------------------------------------------------- #
# serve() / deploy() wiring
# --------------------------------------------------------------------------- #
class TestServeAndDeploy:
    def test_serve_rejects_shared_model_for_spilled_pool(self):
        from repro.api import serve

        with pytest.raises(ConfigurationError):
            serve(make_model(), replicas=2, memory_budget=1 << 20)

    def test_deploy_serves_the_trained_winner(self, tmp_path):
        from repro.api import Budget, Experiment, ShardParallelBackend
        from repro.data import DataLoader, make_classification
        from repro.optim import Adam
        from repro.selection import SearchSpace

        def build(trial):
            model = FeedForwardNetwork(CONFIG, seed=trial.get("seed", 0))
            data = make_classification(
                num_samples=64, num_features=16, num_classes=4,
                rng=np.random.default_rng(1),
            )
            return (
                model,
                Adam(model.parameters(), lr=1e-3),
                DataLoader(data, batch_size=16),
            )

        registry = ModelRegistry(tmp_path)
        backend = ShardParallelBackend(builder=build, num_devices=2, registry=registry)
        experiment = Experiment(
            space=SearchSpace({"seed": [0, 1]}),
            searcher="grid",
            objective="loss",
            budget=Budget(epochs_per_trial=1),
        )
        result = experiment.run(backend=backend)
        best = result.best()
        assert sorted(registry.names()) == sorted(t.trial_id for t in result.trials)
        assert registry.metadata(best.trial_id)["epochs_trained"] == 1

        x = np.random.default_rng(2).normal(size=(1, 16)).astype(np.float32)
        with result.deploy(
            build, registry=registry, max_batch_size=GEOMETRY, max_wait_ms=1.0
        ) as server:
            response = server.request(x)

        # The served weights are the registry's (trained), not the builder's
        # fresh initialisation.
        trained = FeedForwardNetwork(CONFIG, seed=int(best.hyperparameters["seed"]))
        registry.load(best.trial_id, trained)
        expected = Replica.resident(trained).infer({"features": x}, pad_to=GEOMETRY)
        assert np.array_equal(response, expected)

        fresh = FeedForwardNetwork(CONFIG, seed=int(best.hyperparameters["seed"]))
        unexpected = Replica.resident(fresh).infer({"features": x}, pad_to=GEOMETRY)
        assert not np.array_equal(response, unexpected)

    def test_failed_trials_publish_nothing(self, tmp_path):
        from repro.api.backends import ShardParallelBackend
        from repro.selection.experiment import TrialConfig

        def build(trial):
            from repro.data import DataLoader, make_classification
            from repro.optim import Adam

            model = make_model()
            data = make_classification(
                num_samples=32, num_features=16, num_classes=4,
                rng=np.random.default_rng(0),
            )
            return model, Adam(model.parameters(), lr=1e-3), DataLoader(data, batch_size=16)

        registry = ModelRegistry(tmp_path)
        backend = ShardParallelBackend(builder=build, num_devices=2, registry=registry)
        handle = backend.prepare(TrialConfig("doomed", {}))
        handle.failure = object()  # what the fault-tolerant runtime sets
        backend.teardown(handle)
        assert registry.names() == []  # torn weights must not be published

    def test_run_model_selection_registry_hook(self, tmp_path):
        from repro.data import DataLoader, make_classification
        from repro.hydra import run_model_selection
        from repro.optim import Adam

        def builder():
            model = make_model(seed=7)
            data = make_classification(
                num_samples=32, num_features=16, num_classes=4,
                rng=np.random.default_rng(4),
            )
            return model, Adam(model.parameters(), lr=1e-3), DataLoader(data, batch_size=16)

        registry = ModelRegistry(tmp_path)
        result = run_model_selection({"only": builder}, num_epochs=1, registry=registry)
        assert registry.names() == ["only"]
        with result.deploy(
            lambda trial: builder()[0], registry=registry, max_batch_size=4
        ) as server:
            out = server.request(np.zeros((1, 16), np.float32))
        assert out.shape == (1, 4)


# --------------------------------------------------------------------------- #
# Load generation
# --------------------------------------------------------------------------- #
class TestLoadGenerator:
    def test_closed_loop_accounting(self):
        rng = np.random.default_rng(0)
        inputs = rng.normal(size=(8, 16)).astype(np.float32)
        server = ModelServer(
            [Replica.resident(make_model())],
            max_batch_size=4,
            max_wait_ms=1.0,
            max_queue=32,
        )
        with server:
            warm_up(server, inputs[:1])
            report = LoadGenerator(
                server,
                lambda client, index: inputs[index % 8 : index % 8 + 1],
                clients=4,
                requests_per_client=10,
            ).run()
        assert report.completed == 40
        assert report.rejected == 0 and report.timed_out == 0 and report.failed == 0
        assert report.throughput_rps > 0
        assert report.latency["latency_p99_ms"] >= report.latency["latency_p50_ms"]

    def test_rejections_are_counted_not_raised(self):
        server = ModelServer(
            [Replica.resident(_SleepyModel(0.05))],
            max_batch_size=1,
            max_wait_ms=0.0,
            max_queue=1,
        )
        with server:
            report = LoadGenerator(
                server,
                lambda client, index: np.zeros((1, 16), np.float32),
                clients=4,
                requests_per_client=3,
            ).run()
        assert report.completed + report.rejected == 12
        assert report.rejected > 0

    def test_open_loop_injects_on_schedule(self):
        rng = np.random.default_rng(1)
        inputs = rng.normal(size=(8, 16)).astype(np.float32)
        server = ModelServer(
            [Replica.resident(make_model())],
            max_batch_size=4,
            max_wait_ms=1.0,
            max_queue=128,
        )
        with server:
            warm_up(server, inputs[:1])
            report = LoadGenerator(
                server,
                lambda client, index: inputs[index % 8 : index % 8 + 1],
                clients=4,
                requests_per_client=10,
                arrival_rate_rps=200.0,
            ).run()
        assert report.mode == "open"
        assert report.offered_rps == 200.0
        assert report.completed == 40
        # 40 arrivals at 200/s occupy ~0.2s of schedule: open loop paces the
        # run by the arrival process, not by response latency.
        assert report.duration_seconds >= 0.15
        assert report.latency["latency_p99_ms"] >= report.latency["latency_p50_ms"]

    def test_open_loop_latency_uses_completion_stamps(self):
        # A response that completed long before collection must be charged
        # its completion-time latency, not the collection-time one.
        server = ModelServer(
            [Replica.resident(make_model())],
            max_batch_size=4,
            max_wait_ms=0.0,
            max_queue=32,
        )
        with server:
            response = server.submit(np.zeros((1, 16), np.float32))
            response.result(timeout=5.0)
            assert response.completed_at is not None
            time.sleep(0.2)  # collection happens much later
            assert response.completed_at < time.monotonic() - 0.15
