"""The metrics registry: counters, gauges, histograms, and live collectors.

One :class:`MetricsRegistry` (owned by a
:class:`~repro.telemetry.recorder.Telemetry`) aggregates everything the
stack measures behind one snapshot schema (documented in
:mod:`repro.telemetry.schema`):

* **counters** — monotonic totals (``runtime.trials.completed``);
* **gauges** — latest values (``pool.size``);
* **histograms** — bounded-sample distributions with p50/p95/p99;
* **collectors** — named callbacks polled at snapshot time.  This is how
  existing live stats objects (:class:`~repro.serving.stats.ServerStats`,
  spill residency, pool/runner state) are *absorbed* rather than
  duplicated: the component registers ``lambda: stats.snapshot()`` once
  and the registry folds the result into every snapshot.

:meth:`MetricsRegistry.prometheus_text` renders the same data in the
Prometheus text exposition format (metric names sanitised, nested
collector dicts flattened with ``_``, non-numeric leaves skipped).
"""

from __future__ import annotations

import re
import threading
from typing import Any, Callable, Dict, List, Optional

import numpy as np

#: histogram percentiles, matching the serving-side latency reports
_PERCENTILES = (50.0, 95.0, 99.0)

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _sanitize(name: str) -> str:
    """A Prometheus-legal metric name (dots and dashes become underscores)."""
    cleaned = _NAME_RE.sub("_", name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = f"_{cleaned}"
    return cleaned


class Histogram:
    """A bounded-sample distribution (windowed: keeps the last ``max_samples``)."""

    def __init__(self, max_samples: int = 4096):
        if max_samples <= 0:
            raise ValueError(f"max_samples must be positive, got {max_samples}")
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._max_samples = int(max_samples)
        self._samples: List[float] = []
        self._cursor = 0

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        if len(self._samples) < self._max_samples:
            self._samples.append(value)
        else:
            # Ring buffer: percentiles reflect the most recent window.
            self._samples[self._cursor] = value
            self._cursor = (self._cursor + 1) % self._max_samples

    def snapshot(self) -> Dict[str, float]:
        if not self.count:
            return {
                "count": 0.0, "sum": 0.0, "min": 0.0, "max": 0.0,
                "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0,
            }
        values = np.asarray(self._samples, dtype=np.float64)
        p50, p95, p99 = np.percentile(values, _PERCENTILES)
        return {
            "count": float(self.count),
            "sum": float(self.total),
            "min": float(self.min),
            "max": float(self.max),
            "mean": float(self.total / self.count),
            "p50": float(p50),
            "p95": float(p95),
            "p99": float(p99),
        }


class MetricsRegistry:
    """Thread-safe metric store with one unified snapshot (see module docstring).

    Example::

        registry = MetricsRegistry()
        registry.counter("requests", 3)
        registry.observe("latency_ms", 4.2)
        registry.register_collector("server", lambda: server.metrics())
        snap = registry.snapshot()
        text = registry.prometheus_text()
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._collectors: Dict[str, Callable[[], Dict[str, Any]]] = {}

    # ------------------------------------------------------------------ #
    def counter(self, name: str, value: float = 1.0) -> None:
        """Add ``value`` (>= 0) to a monotonic counter."""
        if value < 0:
            raise ValueError(f"counter {name!r} increment must be >= 0, got {value}")
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + float(value)

    def gauge(self, name: str, value: float) -> None:
        """Set a gauge to its latest value."""
        with self._lock:
            self._gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Add one observation to a histogram (created on first touch)."""
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram()
            histogram.observe(value)

    def register_collector(self, name: str, fn: Callable[[], Dict[str, Any]]) -> None:
        """Register (or replace) a callback polled at snapshot time.

        ``fn()`` must return a dict; nested dicts are kept in snapshots and
        flattened for Prometheus.  Collectors are the absorption point for
        live stats objects — the data stays owned by the component, the
        registry just reads it when asked.
        """
        if not callable(fn):
            raise TypeError(f"collector {name!r} must be callable")
        with self._lock:
            self._collectors[name] = fn

    def unregister_collector(self, name: str) -> None:
        """Drop a collector (no-op when absent)."""
        with self._lock:
            self._collectors.pop(name, None)

    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict[str, Any]:
        """The unified snapshot: counters/gauges/histograms/collectors.

        Collector callbacks run *outside* the registry lock (they may take
        their own component locks); a collector that raises contributes an
        ``{"error": ...}`` row instead of poisoning the snapshot.
        """
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = {
                name: histogram.snapshot()
                for name, histogram in self._histograms.items()
            }
            collectors = dict(self._collectors)
        collected: Dict[str, Any] = {}
        for name, fn in sorted(collectors.items()):
            try:
                collected[name] = fn()
            except Exception as error:  # noqa: BLE001 - snapshot must not die
                collected[name] = {"error": f"{type(error).__name__}: {error}"}
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
            "collectors": collected,
        }

    def prometheus_text(self, prefix: str = "repro") -> str:
        """The snapshot in Prometheus text exposition format.

        Counters render with a ``# TYPE ... counter`` header, gauges and
        flattened collector leaves as gauges, histograms as their summary
        leaves.  Non-numeric collector leaves (model-name lists, strings)
        are skipped — exposition is numbers only.
        """
        snap = self.snapshot()
        lines: List[str] = []

        def emit(name: str, kind: str, value: float) -> None:
            metric = _sanitize(f"{prefix}_{name}")
            lines.append(f"# TYPE {metric} {kind}")
            lines.append(f"{metric} {value:g}")

        for name, value in sorted(snap["counters"].items()):
            emit(name, "counter", value)
        for name, value in sorted(snap["gauges"].items()):
            emit(name, "gauge", value)
        for name, summary in sorted(snap["histograms"].items()):
            for leaf, value in sorted(summary.items()):
                emit(f"{name}_{leaf}", "gauge", value)
        for name, payload in sorted(snap["collectors"].items()):
            for leaf, value in sorted(_flatten(payload).items()):
                emit(f"{name}_{leaf}", "gauge", value)
        return "\n".join(lines) + ("\n" if lines else "")


def _flatten(payload: Any, prefix: str = "") -> Dict[str, float]:
    """Numeric leaves of a nested dict, joined with ``_`` (others skipped)."""
    flat: Dict[str, float] = {}
    if isinstance(payload, dict):
        for key, value in payload.items():
            name = f"{prefix}_{key}" if prefix else str(key)
            flat.update(_flatten(value, name))
    elif isinstance(payload, bool):  # bools are ints; keep them out
        pass
    elif isinstance(payload, (int, float)):
        flat[prefix] = float(payload)
    return flat
