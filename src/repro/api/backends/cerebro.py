"""Cerebro backend: model hopping over fixed data partitions.

Cerebro (Nakandala et al.) shards the *dataset* across workers and hops
models between workers between sub-epochs; data never moves.  This backend
owns the partitioned dataset and adapts the
:class:`~repro.selection.cerebro.CerebroModelHopper` to the generic
protocol: ``builder`` turns a trial into ``(model, optimizer)`` (loaders
come from the backend's partitions), and each ``train_many`` cohort is
hopped together — every model in the cohort sees every partition exactly
once per epoch.

Partitioning is seeded, so the per-worker loaders rebuilt for each cohort
are identical across calls and resumed rungs continue on the same splits.

With ``hop_parallel=True`` the backend owns a thread pool sized to
``num_workers`` and hands it to every hopper it builds, so each sub-epoch's
workers train their hosted models *concurrently* — true hop-parallelism,
numerically identical to serial hopping (each model's update sequence is
unchanged; see :meth:`CerebroModelHopper.train_epoch`).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.api.backend import CohortEngineBackend, TrialHandle
from repro.api.runtime.pool import ThreadWorkerPool, WorkerPool
from repro.data.dataset import Dataset
from repro.exceptions import ConfigurationError
from repro.models.base import ShardableModel
from repro.optim.optimizer import Optimizer
from repro.selection.cerebro import CerebroModelHopper
from repro.selection.experiment import TrialConfig
from repro.sharding.partitioner import partition_uniform

#: builds the live model and optimizer for one trial
CerebroTrialBuilder = Callable[[TrialConfig], Tuple[ShardableModel, Optimizer]]


@dataclass
class _TrialState:
    model: ShardableModel
    optimizer: Optimizer
    boundaries: Optional[List[Tuple[int, int]]]


class CerebroBackend(CohortEngineBackend):
    """Trains trials for real with Cerebro-style model hopping.

    Example::

        backend = CerebroBackend(dataset, builder=build_model_and_optimizer,
                                 num_workers=2, hop_parallel=True)
        try:
            result = Experiment(space=space, searcher="grid",
                                backend=backend).run()
        finally:
            backend.close()  # releases the hop pool (also runs at GC)

    Raises:
        ConfigurationError: if ``num_workers`` is not positive.
    """

    name = "cerebro"
    resumable = True

    def __init__(
        self,
        dataset: Dataset,
        builder: CerebroTrialBuilder,
        num_workers: int = 2,
        batch_size: int = 32,
        num_shards: Optional[int] = None,
        shuffle: bool = True,
        seed: int = 0,
        hop_parallel: bool = False,
    ):
        if num_workers <= 0:
            raise ConfigurationError(f"num_workers must be positive, got {num_workers}")
        self.dataset = dataset
        self.builder = builder
        self.num_workers = int(num_workers)
        self.batch_size = int(batch_size)
        self.num_shards = num_shards
        self.shuffle = shuffle
        self.seed = int(seed)
        self.hop_parallel = bool(hop_parallel)
        self._hop_pool: Optional[WorkerPool] = None
        self._hop_pool_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    def prepare(self, trial: TrialConfig) -> TrialHandle:
        handle = super().prepare(trial)
        model, optimizer = self.builder(trial)
        boundaries: Optional[List[Tuple[int, int]]] = None
        if self.num_shards is not None:
            boundaries = partition_uniform(model.profile(), self.num_shards)
            handle.annotations.setdefault("num_shards", self.num_shards)
        handle.state = _TrialState(model, optimizer, boundaries)
        handle.annotations.setdefault("model", model.model_name)
        return handle

    def make_driver(self, handles: Sequence[TrialHandle]) -> CerebroModelHopper:
        """Build a hopper with every handle's model registered (and, when
        ``hop_parallel``, the backend's shared worker pool attached)."""
        hopper = CerebroModelHopper(
            self.dataset,
            num_workers=self.num_workers,
            batch_size=self.batch_size,
            shuffle=self.shuffle,
            seed=self.seed,
            pool=self._pool(),
        )
        for handle in handles:
            state: _TrialState = handle.state
            hopper.add_model(
                state.model, state.optimizer, boundaries=state.boundaries,
                model_id=handle.trial_id,
            )
        return hopper

    # ------------------------------------------------------------------ #
    def _pool(self) -> Optional[WorkerPool]:
        """The shared hop pool (one per backend, lazily built), or None.

        Locked: under the concurrent runtime two worker threads can reach
        first use simultaneously, and a double-built pool would leak threads.
        """
        if not self.hop_parallel:
            return None
        with self._hop_pool_lock:
            if self._hop_pool is None:
                self._hop_pool = ThreadWorkerPool(self.num_workers)
            return self._hop_pool

    def close(self) -> None:
        """Shut down the hop pool, if one was created.

        Safe to call between runs: the pool is rebuilt lazily on next use.
        Long-lived processes should call this when done with the backend;
        garbage collection also triggers it as a backstop.
        """
        if self._hop_pool is not None:
            self._hop_pool.shutdown(wait=False)
            self._hop_pool = None

    def __del__(self):  # pragma: no cover - GC backstop
        try:
            self.close()
        except Exception:
            pass
