"""Baseline: train every model sequentially on a single device."""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.cluster.cluster import Cluster
from repro.exceptions import SchedulingError
from repro.scheduler.base import ScheduleResult, Strategy
from repro.scheduler.placement import Placement
from repro.scheduler.task import ShardTask, TrainingJob, build_task_graph


class SingleDeviceStrategy(Strategy):
    """Everything on one device, one model after another.

    This is the reference point the paper's small-model accuracy experiment
    compares against, and the degenerate case of task parallelism on a
    one-GPU cluster.  Models whose working set exceeds the device's memory
    are rejected — that infeasibility is precisely the motivation for model
    parallelism.
    """

    name = "single-device"

    def __init__(self, device_name: str | None = None, policy=None):
        super().__init__(policy=policy)
        self.device_name = device_name

    def schedule(self, jobs: Sequence[TrainingJob], cluster: Cluster) -> ScheduleResult:
        jobs = list(jobs)
        if not jobs:
            raise SchedulingError("no jobs to schedule")
        device = cluster.device(self.device_name) if self.device_name else cluster.devices[0]

        placement = Placement()
        tasks_by_job: Dict[str, List[ShardTask]] = {}
        peak_demand = 0
        for job in jobs:
            working = sum(shard.working_bytes for shard in job.plan.shards)
            if working > device.spec.memory_bytes:
                raise SchedulingError(
                    f"model {job.model_id!r} needs {working / 2**30:.2f} GiB but device "
                    f"{device.name!r} has {device.spec.memory_bytes / 2**30:.2f} GiB; "
                    "single-device training is infeasible (this is the case that "
                    "motivates model parallelism)"
                )
            peak_demand = max(peak_demand, working)
            for shard in job.plan.shards:
                placement.assign(job.model_id, shard.index, device.name)
            tasks_by_job[job.model_id] = build_task_graph(job)

        # Serialise the jobs: model k may only start after model k-1 finished.
        extra_deps: Dict[str, List[str]] = {}
        for previous, current in zip(jobs, jobs[1:]):
            extra = self.job_boundary_deps([previous], [current], tasks_by_job)
            for task_id, deps in extra.items():
                extra_deps.setdefault(task_id, []).extend(deps)

        all_tasks = [task for job in jobs for task in tasks_by_job[job.model_id]]
        sim_tasks = self.to_sim_tasks(
            all_tasks, placement, extra_deps=extra_deps, track_activation_memory=False
        )
        trace = self._simulate(cluster, sim_tasks)
        trace.peak_memory_bytes = {device.name: peak_demand}
        return ScheduleResult(strategy=self.name, trace=trace, jobs=jobs, placements=[placement])
