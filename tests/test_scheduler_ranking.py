"""Tests for critical-path ranking and its use by the shard-parallel scheduler."""

import pytest

from repro.exceptions import SchedulingError
from repro.models import FeedForwardConfig
from repro.scheduler import TrainingJob, build_task_graph, compute_upward_ranks
from repro.scheduler.task import ShardTask, TaskKind, task_id_for
from repro.sharding import make_plan


def small_job(num_shards=3, batches=2, model_id="mlp"):
    profile = FeedForwardConfig.paper_1_2m().profile()
    plan = make_plan(model_id, profile, batch_size=8, num_shards=num_shards)
    return TrainingJob(model_id=model_id, plan=plan, num_epochs=1,
                       batches_per_epoch=batches, samples_per_batch=8)


class TestComputeUpwardRanks:
    def test_rank_includes_own_flops(self):
        task = ShardTask(task_id="only", model_id="m", shard_index=0, kind=TaskKind.FORWARD,
                         epoch=0, batch_index=0, flops=5.0, input_bytes=0, output_bytes=0,
                         activation_bytes=0)
        assert compute_upward_ranks([task]) == {"only": 5.0}

    def test_chain_ranks_accumulate(self):
        a = ShardTask("a", "m", 0, TaskKind.FORWARD, 0, 0, 1.0, 0, 0, 0)
        b = ShardTask("b", "m", 1, TaskKind.FORWARD, 0, 0, 2.0, 0, 0, 0, deps=["a"])
        c = ShardTask("c", "m", 1, TaskKind.BACKWARD, 0, 0, 4.0, 0, 0, 0, deps=["b"])
        ranks = compute_upward_ranks([a, b, c])
        assert ranks["c"] == pytest.approx(4.0)
        assert ranks["b"] == pytest.approx(6.0)
        assert ranks["a"] == pytest.approx(7.0)

    def test_branching_takes_longest_path(self):
        root = ShardTask("root", "m", 0, TaskKind.FORWARD, 0, 0, 1.0, 0, 0, 0)
        short = ShardTask("short", "m", 1, TaskKind.FORWARD, 0, 0, 1.0, 0, 0, 0, deps=["root"])
        long = ShardTask("long", "m", 1, TaskKind.BACKWARD, 0, 0, 10.0, 0, 0, 0, deps=["root"])
        ranks = compute_upward_ranks([root, short, long])
        assert ranks["root"] == pytest.approx(11.0)

    def test_cycle_detected(self):
        a = ShardTask("a", "m", 0, TaskKind.FORWARD, 0, 0, 1.0, 0, 0, 0, deps=["b"])
        b = ShardTask("b", "m", 1, TaskKind.FORWARD, 0, 0, 1.0, 0, 0, 0, deps=["a"])
        with pytest.raises(SchedulingError):
            compute_upward_ranks([a, b])

    def test_external_dependencies_ignored(self):
        task = ShardTask("a", "m", 0, TaskKind.FORWARD, 0, 0, 3.0, 0, 0, 0, deps=["not-here"])
        assert compute_upward_ranks([task])["a"] == pytest.approx(3.0)

    def test_training_graph_ranks_decrease_along_the_pipeline(self):
        job = small_job(num_shards=3, batches=1)
        tasks = build_task_graph(job)
        ranks = compute_upward_ranks(tasks)
        fwd0 = ranks[task_id_for("mlp", 0, 0, 0, TaskKind.FORWARD)]
        fwd1 = ranks[task_id_for("mlp", 0, 0, 1, TaskKind.FORWARD)]
        bwd0 = ranks[task_id_for("mlp", 0, 0, 0, TaskKind.BACKWARD)]
        upd0 = ranks[task_id_for("mlp", 0, 0, 0, TaskKind.UPDATE)]
        assert fwd0 > fwd1 > bwd0 > upd0

    def test_earlier_batches_rank_higher(self):
        job = small_job(num_shards=2, batches=3)
        tasks = build_task_graph(job)
        ranks = compute_upward_ranks(tasks)
        batch0 = ranks[task_id_for("mlp", 0, 0, 0, TaskKind.FORWARD)]
        batch2 = ranks[task_id_for("mlp", 0, 2, 0, TaskKind.FORWARD)]
        assert batch0 > batch2

    def test_total_rank_equals_total_flops_for_a_pure_chain(self):
        job = small_job(num_shards=1, batches=1)
        tasks = build_task_graph(job)
        ranks = compute_upward_ranks(tasks)
        first = task_id_for("mlp", 0, 0, 0, TaskKind.FORWARD)
        assert ranks[first] == pytest.approx(sum(t.flops for t in tasks))


class TestCriticalPathPolicy:
    def test_policy_prefers_highest_priority(self):
        from repro.cluster import SimTask
        from repro.scheduler import critical_path_policy

        ready = [
            SimTask("low", "gpu0", tags={"priority": 1.0, "epoch": 0, "batch": 0}),
            SimTask("high", "gpu0", tags={"priority": 9.0, "epoch": 0, "batch": 5}),
        ]
        assert critical_path_policy("gpu0", ready).task_id == "high"

    def test_ties_break_towards_older_batches(self):
        from repro.cluster import SimTask
        from repro.scheduler import critical_path_policy

        ready = [
            SimTask("new", "gpu0", tags={"priority": 2.0, "epoch": 0, "batch": 4}),
            SimTask("old", "gpu0", tags={"priority": 2.0, "epoch": 0, "batch": 1}),
        ]
        assert critical_path_policy("gpu0", ready).task_id == "old"

    def test_missing_priority_treated_as_zero(self):
        from repro.cluster import SimTask
        from repro.scheduler import critical_path_policy

        ready = [
            SimTask("unranked", "gpu0", tags={}),
            SimTask("ranked", "gpu0", tags={"priority": 0.5}),
        ]
        assert critical_path_policy("gpu0", ready).task_id == "ranked"
