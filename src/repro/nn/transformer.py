"""Transformer encoder blocks (the building block of the BERT workload)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd.tensor import Tensor
from repro.nn.activations import GELU
from repro.nn.attention import MultiHeadSelfAttention
from repro.nn.container import ModuleList
from repro.nn.dropout import Dropout
from repro.nn.linear import Linear
from repro.nn.module import Module
from repro.nn.normalization import LayerNorm


class TransformerEncoderLayer(Module):
    """One post-norm transformer encoder block (attention + feed-forward)."""

    def __init__(
        self,
        hidden_size: int,
        num_heads: int,
        intermediate_size: int,
        dropout: float = 0.1,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        self.hidden_size = int(hidden_size)
        self.intermediate_size = int(intermediate_size)
        self.attention = MultiHeadSelfAttention(hidden_size, num_heads, dropout=dropout, rng=rng)
        self.attention_norm = LayerNorm(hidden_size)
        self.intermediate = Linear(hidden_size, intermediate_size, rng=rng)
        self.intermediate_act = GELU()
        self.output = Linear(intermediate_size, hidden_size, rng=rng)
        self.output_norm = LayerNorm(hidden_size)
        self.dropout = Dropout(dropout, rng=rng)

    def forward(self, x: Tensor, attention_mask: Optional[np.ndarray] = None) -> Tensor:
        attended = self.attention(x, attention_mask=attention_mask)
        x = self.attention_norm(x + self.dropout(attended))
        expanded = self.intermediate_act(self.intermediate(x))
        projected = self.output(expanded)
        return self.output_norm(x + self.dropout(projected))

    def __repr__(self) -> str:
        return (
            f"TransformerEncoderLayer(hidden_size={self.hidden_size}, "
            f"intermediate_size={self.intermediate_size})"
        )


class TransformerEncoder(Module):
    """A stack of :class:`TransformerEncoderLayer` blocks."""

    def __init__(
        self,
        num_layers: int,
        hidden_size: int,
        num_heads: int,
        intermediate_size: int,
        dropout: float = 0.1,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        self.layers = ModuleList(
            TransformerEncoderLayer(
                hidden_size, num_heads, intermediate_size, dropout=dropout, rng=rng
            )
            for _ in range(num_layers)
        )

    def forward(self, x: Tensor, attention_mask: Optional[np.ndarray] = None) -> Tensor:
        for layer in self.layers:
            x = layer(x, attention_mask=attention_mask)
        return x
