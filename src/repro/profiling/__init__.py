"""Cost models and profiling: how much memory/compute each model block needs."""

from repro.profiling.cost_model import (
    BlockCost,
    ModelProfile,
    linear_cost,
    embedding_cost,
    layer_norm_cost,
    attention_cost,
    transformer_layer_cost,
    bytes_for_params,
    FLOAT32_BYTES,
)
from repro.profiling.profiler import profile_model, profile_config

__all__ = [
    "BlockCost",
    "ModelProfile",
    "linear_cost",
    "embedding_cost",
    "layer_norm_cost",
    "attention_cost",
    "transformer_layer_cost",
    "bytes_for_params",
    "FLOAT32_BYTES",
    "profile_model",
    "profile_config",
]
