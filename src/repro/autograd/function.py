"""The :class:`Function` base class: one differentiable operation.

Every primitive operation in the autograd engine is a ``Function`` subclass
implementing :meth:`forward` on raw numpy arrays and :meth:`backward`
producing one gradient array per tensor input.  :meth:`Function.apply` wires
the resulting output tensor into the autograd graph.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import AutogradError

_TENSOR_RUNTIME = None


def _tensor_runtime():
    """Cache the (Tensor, is_grad_enabled) pair used on every op dispatch."""
    global _TENSOR_RUNTIME
    if _TENSOR_RUNTIME is None:
        from repro.autograd.tensor import Tensor, is_grad_enabled
        _TENSOR_RUNTIME = (Tensor, is_grad_enabled)
    return _TENSOR_RUNTIME


def unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` so it matches ``shape`` after numpy broadcasting.

    Broadcasting in the forward pass implicitly replicates the smaller
    operand; the corresponding backward step must therefore sum the gradient
    over every broadcast dimension.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions that were added by broadcasting.
    extra_dims = grad.ndim - len(shape)
    if extra_dims > 0:
        grad = grad.sum(axis=tuple(range(extra_dims)))
    # Sum over dimensions that were 1 in the original shape but expanded.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Function:
    """Base class for differentiable operations.

    Subclasses implement ``forward(self, *arrays, **kwargs) -> np.ndarray``
    and ``backward(self, grad_output) -> tuple[np.ndarray | None, ...]``
    (one entry per tensor input, ``None`` for inputs that need no gradient).
    """

    def __init__(self) -> None:
        self.parents: Tuple[Any, ...] = ()
        self.saved_tensors: Tuple[np.ndarray, ...] = ()
        self.needs_input_grad: Tuple[bool, ...] = ()

    def save_for_backward(self, *arrays: np.ndarray) -> None:
        """Stash arrays needed by :meth:`backward`."""
        self.saved_tensors = arrays

    def forward(self, *args: Any, **kwargs: Any) -> np.ndarray:  # pragma: no cover - interface
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> Sequence[Optional[np.ndarray]]:  # pragma: no cover
        raise NotImplementedError

    @classmethod
    def apply(cls, *inputs: Any, **kwargs: Any) -> "Tensor":
        """Run the op on tensor/array inputs and build the output tensor.

        Non-tensor inputs (python scalars, numpy arrays) are treated as
        constants that require no gradient.  The output is built through
        :meth:`Tensor._wrap`, skipping ``__init__``'s dtype coercion — op
        outputs are derived from already-coerced arrays.
        """
        tensor_cls, grad_enabled = _tensor_runtime()

        ctx = cls()
        tensor_inputs = []
        raw_inputs = []
        needs_grad = []
        any_needs_grad = False
        for value in inputs:
            if isinstance(value, tensor_cls):
                tensor_inputs.append(value)
                raw_inputs.append(value.data)
                needs_grad.append(value.requires_grad)
                any_needs_grad = any_needs_grad or value.requires_grad
            else:
                tensor_inputs.append(None)
                raw_inputs.append(np.asarray(value) if not np.isscalar(value) else value)
                needs_grad.append(False)

        ctx.needs_input_grad = tuple(needs_grad)
        output_data = ctx.forward(*raw_inputs, **kwargs)
        if type(output_data) is not np.ndarray:
            output_data = np.asarray(output_data)

        requires_grad = any_needs_grad and grad_enabled()
        output = tensor_cls._wrap(output_data, requires_grad)
        if requires_grad:
            ctx.parents = tuple(tensor_inputs)
            output._ctx = ctx
        return output

    def propagate(self, grad_output: np.ndarray) -> Sequence[Optional[np.ndarray]]:
        """Validate and return the gradients produced by :meth:`backward`."""
        grads = self.backward(grad_output)
        if not isinstance(grads, (tuple, list)):
            grads = (grads,)
        if len(grads) != len(self.parents):
            raise AutogradError(
                f"{type(self).__name__}.backward returned {len(grads)} gradients "
                f"for {len(self.parents)} inputs"
            )
        return grads

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__}>"
