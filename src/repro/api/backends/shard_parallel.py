"""Real-training backend: Hydra-style shard-parallel interleaving.

``builder`` turns a trial into a live ``(model, optimizer, dataloader)``
triple on the numpy engine.  The model is partitioned with
:func:`partition_uniform` (one shard per block by default, capped at the
device count) and cohorts of trials are trained *together* by a
:class:`~repro.training.sharded_trainer.ShardParallelTrainer`, so a grid of
candidates shares the simulated devices at shard-task granularity — the
paper's execution model, now behind the generic backend protocol.

Model/optimizer state lives on the trial handle between calls, which makes
the backend resumable: successive halving's later rungs continue training
the surviving models in place.

With ``memory_budget`` set the backend becomes *spill-aware*: a shared
:class:`~repro.memory.SpillManager` (one arena per simulated device) makes
every trial's executors lease shards instead of assuming residency, so
models whose resident footprint exceeds the per-device budget — or cohorts
whose total exceeds all budgets combined — still train, bit-identically to
the unconstrained run (see ``docs/memory.md``).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.api.backend import CohortEngineBackend, TrialHandle
from repro.data.dataloader import DataLoader
from repro.exceptions import ConfigurationError
from repro.memory import DeviceArena, HostShardCache, Prefetcher, SpillManager
from repro.models.base import ShardableModel
from repro.optim.optimizer import Optimizer
from repro.selection.experiment import TrialConfig
from repro.serving.registry import ModelRegistry
from repro.sharding.partitioner import partition_uniform
from repro.training.checkpoint import load_checkpoint, save_checkpoint
from repro.training.sharded_trainer import ShardParallelTrainer

#: builds the live training objects for one trial
TrialBuilder = Callable[[TrialConfig], Tuple[ShardableModel, Optimizer, DataLoader]]

#: bytes per device — one number for all devices, or a ``{"dev0": bytes}`` map
MemoryBudget = Union[int, Dict[str, int]]


@dataclass
class _TrialState:
    model: ShardableModel
    optimizer: Optimizer
    loader: DataLoader
    boundaries: List[Tuple[int, int]]


class ShardParallelBackend(CohortEngineBackend):
    """Trains trials for real with shard-parallel multi-model interleaving.

    Example::

        def build(trial):  # -> (model, optimizer, loader) on the numpy engine
            model = FeedForwardNetwork(config_for(trial), seed=0)
            return model, Adam(model.parameters()), DataLoader(data)

        backend = ShardParallelBackend(builder=build, num_devices=2)
        Experiment(space=space, searcher="grid", backend=backend).run()

    ``memory_budget`` (bytes per device, or a ``{"dev0": bytes}`` map over
    arenas ``dev0 .. dev{num_devices-1}``) enables spilled execution:
    trials lease shards through a shared :class:`~repro.memory.SpillManager`
    and idle shards are evicted to a host cache under pressure.
    ``eviction_policy`` is ``"lru"`` or ``"schedule-aware"``; ``prefetch``
    overlaps the next shard's restore with the current shard's compute.

    ``registry`` (a :class:`~repro.serving.ModelRegistry`) publishes every
    trial's final parameters — under the trial id, with its last metrics and
    epoch count as metadata — when the trial is retired, *after* any
    evicted shards are restored.  That is the hand-off
    ``SelectionResult.deploy`` loads the winner's weights from.

    Raises:
        ConfigurationError: if ``num_devices`` is not positive, or the
            memory-budget options are invalid.
    """

    name = "shard-parallel"
    resumable = True

    def __init__(
        self,
        builder: TrialBuilder,
        num_devices: int = 2,
        num_shards: Optional[int] = None,
        memory_budget: Optional[MemoryBudget] = None,
        eviction_policy: str = "schedule-aware",
        prefetch: bool = True,
        spill_dir: Optional[str] = None,
        host_cache_limit_bytes: Optional[int] = None,
        registry: Optional[ModelRegistry] = None,
    ):
        if num_devices <= 0:
            raise ConfigurationError(f"num_devices must be positive, got {num_devices}")
        self.builder = builder
        self.num_devices = int(num_devices)
        self.num_shards = num_shards
        self.registry = registry
        self._memory_options = {
            "memory_budget": memory_budget,
            "eviction_policy": eviction_policy,
            "prefetch": prefetch,
            "spill_dir": spill_dir,
            "host_cache_limit_bytes": host_cache_limit_bytes,
        }
        self.memory: Optional[SpillManager] = None
        if memory_budget is not None:
            self.memory = self._make_spill_manager(
                memory_budget, eviction_policy, prefetch, spill_dir, host_cache_limit_bytes
            )

    def _make_spill_manager(
        self,
        memory_budget: MemoryBudget,
        eviction_policy: str,
        prefetch: bool,
        spill_dir: Optional[str],
        host_cache_limit_bytes: Optional[int],
    ) -> SpillManager:
        names = [f"dev{i}" for i in range(self.num_devices)]
        if isinstance(memory_budget, dict):
            unknown = set(memory_budget) - set(names)
            if unknown:
                raise ConfigurationError(
                    f"memory_budget names unknown devices {sorted(unknown)}; "
                    f"this backend has {names}"
                )
            budgets = {name: int(memory_budget.get(name, 0)) for name in names}
            missing = [name for name, budget in budgets.items() if budget <= 0]
            if missing:
                raise ConfigurationError(
                    f"memory_budget must cover every device with a positive "
                    f"budget; missing/invalid: {missing}"
                )
        else:
            budgets = {name: int(memory_budget) for name in names}
        cache = HostShardCache(
            memory_limit_bytes=host_cache_limit_bytes, spill_dir=spill_dir
        )
        return SpillManager(
            [DeviceArena(name, budgets[name]) for name in names],
            cache=cache,
            policy=eviction_policy,
            prefetcher=Prefetcher() if prefetch else None,
        )

    def with_memory_budget(self, memory_budget: MemoryBudget) -> "ShardParallelBackend":
        """An equivalent backend whose trials run under ``memory_budget``.

        Used by ``Experiment.run(memory_budget=...)`` so a per-run budget
        never mutates a shared backend; the other memory options
        (eviction policy, prefetch, spill directory) carry over.  The
        returned backend owns its spill manager — ``Experiment.run`` closes
        it when the run finishes.
        """
        options = dict(self._memory_options, memory_budget=memory_budget)
        return ShardParallelBackend(
            builder=self.builder,
            num_devices=self.num_devices,
            num_shards=self.num_shards,
            registry=self.registry,
            **options,
        )

    def set_telemetry(self, telemetry) -> None:
        """Attach a recorder and wire it into the owned spill manager."""
        super().set_telemetry(telemetry)
        if self.memory is not None:
            self.memory.bind_telemetry(self.telemetry, name="spill.train")

    def __getstate__(self) -> Dict[str, Any]:
        """Pickle without the spill manager (its threads are per-process).

        An attached recorder is dropped too (it holds locks); the child
        falls back to the class-level no-op unless the task re-wires one.
        """
        state = dict(self.__dict__)
        state["memory"] = None
        state.pop("telemetry", None)
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        """Rebuild the spill manager from the recorded memory options."""
        self.__dict__.update(state)
        if self._memory_options["memory_budget"] is not None:
            self.memory = self._make_spill_manager(**self._memory_options)

    def close(self) -> None:
        """Release the spill manager's prefetch worker (no-op without one).

        Construction with ``memory_budget`` starts a background transfer
        thread; call this (or use ``Experiment.run(memory_budget=...)``,
        which owns and closes its budgeted backend) when the backend is done.
        """
        if self.memory is not None:
            self.memory.close()

    def __del__(self):  # pragma: no cover - GC backstop for the prefetcher
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------ #
    def prepare(self, trial: TrialConfig) -> TrialHandle:
        handle = super().prepare(trial)
        model, optimizer, loader = self.builder(trial)
        shard_count = self.num_shards
        if shard_count is None:
            shard_count = min(model.num_blocks(), self.num_devices)
        boundaries = partition_uniform(model.profile(), shard_count)
        handle.state = _TrialState(model, optimizer, loader, boundaries)
        handle.annotations.setdefault("model", model.model_name)
        handle.annotations.setdefault("num_shards", shard_count)
        return handle

    def make_driver(self, handles: Sequence[TrialHandle]) -> ShardParallelTrainer:
        trainer = ShardParallelTrainer(
            num_devices=self.num_devices,
            memory_manager=self.memory,
            telemetry=self.telemetry,
        )
        for handle in handles:
            state: _TrialState = handle.state
            trainer.add_model(
                state.model, state.optimizer, state.loader, state.boundaries,
                model_id=handle.trial_id,
            )
        return trainer

    # ------------------------------------------------------------------ #
    # Snapshot protocol (process-pool trial transport)
    # ------------------------------------------------------------------ #
    def save_snapshot(self, handle: TrialHandle, directory: str) -> str:
        """Checkpoint the trial's full training state; return the path.

        Called in a worker child after training: live models and optimizers
        cannot cross the process boundary, so the trial comes home as a
        checkpoint archive (``param::`` + ``opt::`` sections via
        :func:`~repro.training.checkpoint.save_checkpoint`).  Evicted shards
        are restored first (the spill manager is asked to forget the model),
        so the archive holds the true trained parameters, never a host-cache
        shadow.
        """
        state: _TrialState = handle.state
        if self.memory is not None:
            self.memory.forget_model(handle.trial_id)
        path = save_checkpoint(
            state.model,
            Path(directory) / f"{handle.trial_id}-e{handle.epochs_trained}.npz",
            optimizer=state.optimizer,
        )
        return str(path)

    def load_snapshot(self, handle: TrialHandle, snapshot: Any) -> None:
        """Restore a snapshot: into live state in a child, as a token elsewhere.

        In a worker child resuming a trial (``handle.state`` is the live
        :class:`_TrialState` built by :meth:`prepare`), the checkpoint is
        loaded back into the model *and* optimizer — bit-identical resume.
        In the parent (no live state) the path is kept as the handle state
        for :meth:`finalize_snapshot` to publish from.
        """
        if snapshot is None:
            return
        if isinstance(handle.state, _TrialState):
            state: _TrialState = handle.state
            load_checkpoint(state.model, snapshot, optimizer=state.optimizer)
        else:
            handle.state = snapshot

    def finalize_snapshot(self, handle: TrialHandle) -> None:
        """Rebuild the trained model from its final snapshot for publication.

        Process-pool trials retire in the parent holding only a checkpoint
        path; when a registry is configured the builder reconstructs the
        architecture, the checkpoint restores the trained parameters, and
        the normal :meth:`teardown` publish path runs exactly once — the
        worker children never publish.
        """
        snapshot = handle.state
        if not isinstance(snapshot, (str, Path)):
            return
        if self.registry is None or handle.failure is not None:
            handle.state = None
            return
        model, optimizer, loader = self.builder(handle.trial)
        load_checkpoint(model, snapshot, optimizer=optimizer)
        shard_count = self.num_shards
        if shard_count is None:
            shard_count = min(model.num_blocks(), self.num_devices)
        boundaries = partition_uniform(model.profile(), shard_count)
        handle.state = _TrialState(model, optimizer, loader, boundaries)

    def teardown(self, handle: TrialHandle) -> None:
        """Release the trial's live objects and its spill-manager bookkeeping.

        Evicted shards are restored into the model first, so a caller who
        kept a reference to the trial's model sees its true parameters —
        and so the registry (when configured) publishes the *trained*
        weights, not a host-cache shadow of them.
        """
        if self.memory is not None:
            self.memory.forget_model(handle.trial_id)
        # Failed trials (fault-tolerant runtime) publish nothing: their
        # parameters are torn mid-training, and a later registry.load would
        # silently serve them as if they were the trial's trained weights.
        if (
            self.registry is not None
            and isinstance(handle.state, _TrialState)
            and handle.failure is None
        ):
            state: _TrialState = handle.state
            metadata = {"epochs_trained": handle.epochs_trained}
            metadata.update(
                {f"metric::{name}": value for name, value in handle.last_metrics.items()}
            )
            self.registry.publish(handle.trial_id, state.model, metadata=metadata)
        super().teardown(handle)
