"""Trial bookkeeping for model-selection runs."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.exceptions import SearchSpaceError


@dataclass(frozen=True)
class TrialConfig:
    """One candidate configuration in a selection run."""

    trial_id: str
    hyperparameters: Dict[str, Any]

    def get(self, name: str, default: Any = None) -> Any:
        return self.hyperparameters.get(name, default)


@dataclass
class TrialResult:
    """Outcome of training one trial (possibly for a partial budget)."""

    trial_id: str
    hyperparameters: Dict[str, Any]
    metrics: Dict[str, float]
    epochs_trained: int
    wall_seconds: float = 0.0

    def metric(self, name: str) -> float:
        if name not in self.metrics:
            raise KeyError(f"trial {self.trial_id} has no metric {name!r}; has {sorted(self.metrics)}")
        return self.metrics[name]


@dataclass
class FailedTrial(TrialResult):
    """A trial that failed terminally (exception or straggler timeout).

    Failed trials stay in the :class:`SelectionResult` trial list — the
    experiment survives them — but are excluded from :meth:`SelectionResult.ranked`
    and :meth:`SelectionResult.best`.  ``metrics`` holds the last metrics the
    trial reported before failing (possibly empty), and ``error`` the
    stringified cause.
    """

    error: str = ""
    timed_out: bool = False


@dataclass
class SelectionResult:
    """Results of a whole selection run."""

    method: str
    objective: str
    mode: str
    trials: List[TrialResult] = field(default_factory=list)

    def succeeded(self) -> List[TrialResult]:
        """The trials that completed (everything except :class:`FailedTrial`)."""
        return [t for t in self.trials if not isinstance(t, FailedTrial)]

    @property
    def failures(self) -> List["FailedTrial"]:
        """The trials that failed terminally, in recording order."""
        return [t for t in self.trials if isinstance(t, FailedTrial)]

    def best(self) -> TrialResult:
        succeeded = self.succeeded()
        if not succeeded:
            raise SearchSpaceError("selection produced no successful trials")
        reverse = self.mode == "max"
        return sorted(succeeded, key=lambda t: t.metric(self.objective), reverse=reverse)[0]

    def ranked(self) -> List[TrialResult]:
        reverse = self.mode == "max"
        return sorted(
            self.succeeded(), key=lambda t: t.metric(self.objective), reverse=reverse
        )

    def deploy(
        self,
        builder,
        registry=None,
        version: Optional[int] = None,
        trial: Optional[TrialResult] = None,
        router=None,
        **serve_options,
    ):
        """Serve a trial of this experiment (the best one by default).

        ``builder`` rebuilds the trial's model from its recorded
        configuration — the same callable an engine backend uses,
        ``builder(TrialConfig) -> model`` or ``-> (model, optimizer,
        loader)``; only the model is used.  With ``registry`` (a
        :class:`~repro.serving.ModelRegistry`) the trial's published
        parameters — written by ``ShardParallelBackend(registry=...)`` when
        the trial retired — are loaded into the rebuilt model, so the
        served weights are exactly the trained ones.  Without a registry
        the builder's own parameters serve (useful when the builder loads
        weights itself).

        Without ``router``, ``serve_options`` are forwarded to
        :func:`repro.api.serve` (``replicas``, ``max_batch_size``,
        ``memory_budget``, ...) and the returned
        :class:`~repro.serving.ModelServer` is already running.  With
        ``router`` (a :class:`~repro.serving.FleetRouter`), the trial joins
        the shared fleet instead — registered under its trial id, served
        from the router's common replica pool and memory budget —
        and the router itself is returned; ``serve_options`` then become
        :meth:`~repro.serving.FleetRouter.add_model` options (``weight``,
        ``max_batch_size``, ``compute_batch_size``, ``max_queue``).

        Example::

            result = experiment.run(backend=backend)
            with result.deploy(build, registry=registry, max_batch_size=8) as server:
                prediction = server.request({"features": x})

        Raises:
            SearchSpaceError: when the run has no successful trial to deploy.
            CheckpointError: when the registry has no published version for
                the trial.
        """
        # Imported lazily: repro.api (and through it repro.serving) imports
        # this module during package initialisation.
        from repro.api.serving import serve

        chosen = trial if trial is not None else self.best()
        config = TrialConfig(
            trial_id=chosen.trial_id, hyperparameters=dict(chosen.hyperparameters)
        )
        built = builder(config)
        model = built[0] if isinstance(built, tuple) else built
        if registry is not None:
            registry.load(chosen.trial_id, model, version=version)
        if router is not None:
            router.add_model(chosen.trial_id, model, **serve_options)
            return router
        return serve(model, **serve_options)

    def __len__(self) -> int:
        return len(self.trials)


class ExperimentTracker:
    """Collects trial results and exposes leaderboard-style queries."""

    def __init__(self, objective: str = "loss", mode: str = "min"):
        if mode not in ("min", "max"):
            raise SearchSpaceError(f"mode must be 'min' or 'max', got {mode!r}")
        self.objective = objective
        self.mode = mode
        self.trials: List[TrialResult] = []
        self._start_times: Dict[str, float] = {}

    def start_trial(self, trial_id: str) -> None:
        self._start_times[trial_id] = time.monotonic()

    def record(
        self,
        trial_id: str,
        hyperparameters: Dict[str, Any],
        metrics: Dict[str, float],
        epochs_trained: int,
        wall_seconds: Optional[float] = None,
    ) -> TrialResult:
        """Record one trial result.

        ``wall_seconds`` overrides the tracker's own clock when the caller
        has a more precise per-trial attribution (e.g. a sequential backend
        timing each trial's training calls individually).
        """
        if self.objective not in metrics:
            raise SearchSpaceError(
                f"metrics for trial {trial_id!r} lack the objective {self.objective!r}"
            )
        elapsed = 0.0
        if trial_id in self._start_times:
            elapsed = time.monotonic() - self._start_times.pop(trial_id)
        if wall_seconds is not None:
            elapsed = wall_seconds
        result = TrialResult(
            trial_id=trial_id,
            hyperparameters=dict(hyperparameters),
            metrics=dict(metrics),
            epochs_trained=epochs_trained,
            wall_seconds=elapsed,
        )
        self.trials.append(result)
        return result

    def record_failure(
        self,
        trial_id: str,
        hyperparameters: Dict[str, Any],
        error: str,
        epochs_trained: int = 0,
        metrics: Optional[Dict[str, float]] = None,
        timed_out: bool = False,
    ) -> "FailedTrial":
        """Record a terminally-failed trial (kept in the run, never ranked)."""
        elapsed = 0.0
        if trial_id in self._start_times:
            elapsed = time.monotonic() - self._start_times.pop(trial_id)
        result = FailedTrial(
            trial_id=trial_id,
            hyperparameters=dict(hyperparameters),
            metrics=dict(metrics or {}),
            epochs_trained=epochs_trained,
            wall_seconds=elapsed,
            error=error,
            timed_out=timed_out,
        )
        self.trials.append(result)
        return result

    def best(self) -> TrialResult:
        return self.as_result("tracker").best()

    def as_result(self, method: str) -> SelectionResult:
        return SelectionResult(
            method=method, objective=self.objective, mode=self.mode, trials=list(self.trials)
        )
