"""Datasets, loaders, and synthetic workload generators."""

from repro.data.dataset import Dataset, ArrayDataset, Subset
from repro.data.dataloader import DataLoader, Batch
from repro.data.synthetic import make_classification, make_regression, make_xor
from repro.data.text import SyntheticSpanDataset, make_span_extraction
from repro.data.partition import partition_dataset

__all__ = [
    "Dataset",
    "ArrayDataset",
    "Subset",
    "DataLoader",
    "Batch",
    "make_classification",
    "make_regression",
    "make_xor",
    "SyntheticSpanDataset",
    "make_span_extraction",
    "partition_dataset",
]
