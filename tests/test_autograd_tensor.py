"""Tests for the Tensor class and the autograd graph machinery."""

import numpy as np
import pytest

from repro.autograd import Tensor, no_grad, is_grad_enabled
from repro.exceptions import AutogradError


class TestTensorConstruction:
    def test_from_list(self):
        t = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert t.shape == (2, 2)
        assert t.dtype == np.float32

    def test_float64_preserved(self):
        t = Tensor(np.zeros((3,), dtype=np.float64))
        assert t.dtype == np.float64

    def test_integer_data_kept_as_int64(self):
        t = Tensor(np.array([1, 2, 3], dtype=np.int32))
        assert t.dtype == np.int64

    def test_integer_tensor_cannot_require_grad(self):
        with pytest.raises(AutogradError):
            Tensor(np.array([1, 2, 3]), requires_grad=True)

    def test_from_tensor_copies_reference_data(self):
        a = Tensor([1.0, 2.0])
        b = Tensor(a)
        assert np.array_equal(a.data, b.data)

    def test_unsupported_dtype_rejected(self):
        with pytest.raises(TypeError):
            Tensor(np.array(["a", "b"]))

    def test_basic_properties(self):
        t = Tensor(np.zeros((2, 3, 4), dtype=np.float32))
        assert t.ndim == 3
        assert t.size == 24
        assert len(t) == 2

    def test_repr_mentions_shape_and_grad(self):
        t = Tensor(np.zeros((2, 2)), requires_grad=True, name="weights")
        text = repr(t)
        assert "shape=(2, 2)" in text
        assert "requires_grad=True" in text
        assert "weights" in text


class TestTensorFactories:
    def test_zeros_ones_full(self):
        assert np.all(Tensor.zeros(2, 3).data == 0)
        assert np.all(Tensor.ones(4).data == 1)
        assert np.all(Tensor.full((2, 2), 7.0).data == 7.0)

    def test_randn_respects_rng(self):
        rng1 = np.random.default_rng(0)
        rng2 = np.random.default_rng(0)
        a = Tensor.randn(3, 3, rng=rng1)
        b = Tensor.randn(3, 3, rng=rng2)
        assert np.array_equal(a.data, b.data)

    def test_arange(self):
        assert np.array_equal(Tensor.arange(5).data, np.arange(5))


class TestBackward:
    def test_scalar_backward_default_grad(self):
        x = Tensor([2.0, 3.0], requires_grad=True)
        y = (x * x).sum()
        y.backward()
        assert np.allclose(x.grad, [4.0, 6.0])

    def test_backward_requires_scalar_without_grad(self):
        x = Tensor([[1.0, 2.0]], requires_grad=True)
        y = x * 2
        with pytest.raises(AutogradError):
            y.backward()

    def test_backward_with_explicit_gradient(self):
        x = Tensor([1.0, 2.0, 3.0], requires_grad=True)
        y = x * 3.0
        y.backward(np.array([1.0, 0.5, 2.0], dtype=np.float32))
        assert np.allclose(x.grad, [3.0, 1.5, 6.0])

    def test_backward_wrong_gradient_shape_raises(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = x * 2
        with pytest.raises(AutogradError):
            y.backward(np.ones((3,), dtype=np.float32))

    def test_backward_on_non_grad_tensor_raises(self):
        x = Tensor([1.0, 2.0])
        with pytest.raises(AutogradError):
            x.backward()

    def test_gradient_accumulates_across_backward_calls(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2).sum().backward()
        (x * 3).sum().backward()
        assert np.allclose(x.grad, [5.0])

    def test_zero_grad_clears(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2).sum().backward()
        x.zero_grad()
        assert x.grad is None

    def test_diamond_graph_gradient(self):
        # y = a*b + a*c where both branches share a.
        a = Tensor([2.0], requires_grad=True)
        b = Tensor([3.0], requires_grad=True)
        c = Tensor([4.0], requires_grad=True)
        y = (a * b + a * c).sum()
        y.backward()
        assert np.allclose(a.grad, [7.0])
        assert np.allclose(b.grad, [2.0])
        assert np.allclose(c.grad, [2.0])

    def test_reused_tensor_many_times(self):
        x = Tensor([1.5], requires_grad=True)
        y = sum((x * i for i in range(1, 5)), Tensor([0.0])).sum()
        y.backward()
        assert np.allclose(x.grad, [1 + 2 + 3 + 4])

    def test_constants_receive_no_gradient(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        c = Tensor([5.0, 5.0])
        y = (x * c).sum()
        y.backward()
        assert c.grad is None


class TestDetachAndNoGrad:
    def test_detach_cuts_graph(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = (x * 2).detach()
        assert y.requires_grad is False
        z = Tensor(y.data, requires_grad=True)
        (z * 3).sum().backward()
        assert x.grad is None

    def test_no_grad_disables_recording(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            assert not is_grad_enabled()
            y = x * 2
        assert is_grad_enabled()
        assert y.requires_grad is False
        assert y._ctx is None

    def test_no_grad_restores_state_on_exception(self):
        with pytest.raises(RuntimeError):
            with no_grad():
                raise RuntimeError("boom")
        assert is_grad_enabled()

    def test_copy_is_independent(self):
        x = Tensor([1.0, 2.0], requires_grad=True)
        y = x.copy()
        y.data[0] = 99.0
        assert x.data[0] == 1.0
        assert y.requires_grad is True


class TestTensorMethods:
    def test_item_on_scalar(self):
        assert Tensor([3.5]).item() == pytest.approx(3.5)

    def test_argmax(self):
        t = Tensor([[1.0, 5.0, 2.0], [7.0, 0.0, 3.0]])
        assert np.array_equal(t.argmax(axis=1), [1, 0])

    def test_transpose_property(self):
        t = Tensor(np.arange(6, dtype=np.float32).reshape(2, 3))
        assert t.T.shape == (3, 2)

    def test_reshape_with_tuple_argument(self):
        t = Tensor(np.arange(6, dtype=np.float32))
        assert t.reshape((2, 3)).shape == (2, 3)
        assert t.reshape(3, 2).shape == (3, 2)

    def test_astype(self):
        t = Tensor([1.0, 2.0])
        assert t.astype(np.float64).dtype == np.float64
