"""E16 — telemetry overhead: the disabled path must be near-free.

Every instrumentation site added by the telemetry tentpole guards its
recording calls with a single ``if tel.enabled:`` branch.  This benchmark
holds that design to its number — **<3% overhead with telemetry off** — on
the two hot paths:

* the **training step**: :meth:`ShardedModelExecutor.train_step` is a thin
  dispatcher over ``_train_step_impl`` (the uninstrumented body), so the
  disabled-path cost is measurable directly: ``baseline`` times the body,
  ``off`` times the dispatcher with the shared :data:`NULL_TELEMETRY`, and
  ``on`` times it with a live recorder.  The off/baseline ratio is the
  claim; in strict mode (``REPRO_PERF_CHECK`` / ``REPRO_PERF_STRICT`` /
  ``REPRO_PERF_LONG``) it must stay >= 0.97, and in the quick tier-1 run a
  looser 0.90 floor catches real regressions without tripping on a noisy
  shared machine.

* the **serving loop**: closed-loop throughput is measured with telemetry
  off and on, and a micro-probe times the guard branch itself.  A served
  request crosses three guarded sites (submit, batch, forward); their
  combined cost as a fraction of one measured micro-batch must stay under
  3% — in practice it is orders of magnitude below.

Results land in ``benchmarks/BENCH_telemetry.json``; the committed JSON is
only rewritten by an explicit ``REPRO_PERF_LONG=1`` run.  The CI perf gate
(``REPRO_PERF_CHECK=1``) additionally fails when fresh disabled-path
numbers drop below ``REPRO_PERF_TOLERANCE`` of the committed ones (label a
PR ``skip-perf`` to opt out).
"""

from __future__ import annotations

import gc
import json
import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.data import DataLoader
from repro.data.dataset import ArrayDataset
from repro.models import FeedForwardConfig, FeedForwardNetwork
from repro.optim import Adam
from repro.serving import LoadGenerator, ModelServer, Replica, warm_up
from repro.telemetry import NULL_TELEMETRY, Telemetry
from repro.training import ShardedModelExecutor

from conftest import print_report

BENCH_PATH = Path(__file__).resolve().parent / "BENCH_telemetry.json"

MLP_BATCH = 64
SERVE_WIDTH = 256
SERVE_CLASSES = 64
COMPUTE_BATCH = 32
CLIENTS = 16

#: the tentpole contract: disabled telemetry costs < 3% of the hot path
MAX_OFF_OVERHEAD = 0.03
#: quick-mode floor — wide enough for shared-machine noise, tight enough
#: to catch an accidentally expensive disabled path
QUICK_FLOOR = 0.90
#: guarded sites one served request crosses (submit, serve.batch, serve.forward)
GUARDS_PER_REQUEST = 3

_PERF_CHECK = os.environ.get("REPRO_PERF_CHECK", "") not in ("", "0")
_PERF_LONG = os.environ.get("REPRO_PERF_LONG", "") not in ("", "0")
_STRICT = (
    _PERF_CHECK or _PERF_LONG
    or os.environ.get("REPRO_PERF_STRICT", "") not in ("", "0")
)

#: fraction of the committed disabled-path numbers the perf job requires
PERF_TOLERANCE = float(os.environ.get("REPRO_PERF_TOLERANCE", "0.5"))


# --------------------------------------------------------------------------- #
# Train-step workload
# --------------------------------------------------------------------------- #
def _train_setup():
    model = FeedForwardNetwork(FeedForwardConfig.paper_1_2m(), seed=7)
    optimizer = Adam(model.parameters(), lr=1e-3)
    executor = ShardedModelExecutor(model, [(0, 2), (2, 4)])
    rng = np.random.default_rng(13)
    data = ArrayDataset(
        features=rng.normal(size=(MLP_BATCH, 512)).astype(np.float32),
        label=rng.integers(0, 10, size=(MLP_BATCH,)).astype(np.int64),
    )
    batch = next(iter(DataLoader(data, batch_size=MLP_BATCH)))
    return executor, batch, optimizer


def _min_step_seconds(step, min_seconds: float, warmup: int = 1) -> float:
    """Fastest single step (seconds) over a >= ``min_seconds`` window."""
    for _ in range(warmup):
        step()
    fastest = float("inf")
    count = 0
    window_started = time.perf_counter()
    while True:
        started = time.perf_counter()
        step()
        fastest = min(fastest, time.perf_counter() - started)
        count += 1
        if time.perf_counter() - window_started >= min_seconds and count >= 3:
            return fastest


def _run_train_benchmark() -> dict:
    # The true disabled-path cost is one attribute load + branch (~100 ns)
    # against a multi-ms step, far below machine noise.  Two measures keep
    # the noise out of the ratio: the variants' windows are interleaved
    # round-robin (so load/frequency drift hits all of them alike), and
    # each variant is scored by its fastest *single step* — the minimum of
    # hundreds of per-step timings estimates the true floor far more
    # tightly than any window-average rate.
    rounds, min_seconds = (5, 1.2) if (_PERF_CHECK or _PERF_LONG) else (2, 0.4)
    executor, batch, optimizer = _train_setup()
    live = Telemetry()
    variants = {
        "baseline": (NULL_TELEMETRY, lambda: executor._train_step_impl(batch, optimizer)),
        "off": (NULL_TELEMETRY, lambda: executor.train_step(batch, optimizer)),
        "on": (live, lambda: executor.train_step(batch, optimizer)),
    }
    fastest = {name: float("inf") for name in variants}
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(rounds):
            for name, (telemetry, step) in variants.items():
                executor.telemetry = telemetry
                fastest[name] = min(
                    fastest[name], _min_step_seconds(step, min_seconds)
                )
            live.drain()  # keep the live buffer flat across rounds
    finally:
        if gc_was_enabled:
            gc.enable()
        executor.telemetry = NULL_TELEMETRY
    return {
        "baseline_steps_per_sec": round(1.0 / fastest["baseline"], 2),
        "off_steps_per_sec": round(1.0 / fastest["off"], 2),
        "on_steps_per_sec": round(1.0 / fastest["on"], 2),
        "off_ratio": round(fastest["baseline"] / fastest["off"], 4),
        "on_ratio": round(fastest["baseline"] / fastest["on"], 4),
    }


# --------------------------------------------------------------------------- #
# Serving workload
# --------------------------------------------------------------------------- #
def _serve_model() -> FeedForwardNetwork:
    config = FeedForwardConfig(
        input_dim=SERVE_WIDTH, hidden_dims=(SERVE_WIDTH, SERVE_WIDTH),
        num_classes=SERVE_CLASSES,
    )
    return FeedForwardNetwork(config, seed=17)


def _serve_throughput(telemetry) -> dict:
    rng = np.random.default_rng(23)
    inputs = rng.normal(size=(64, SERVE_WIDTH)).astype(np.float32)
    requests = 30 if (_PERF_CHECK or _PERF_LONG) else 10
    server = ModelServer(
        [Replica.resident(_serve_model())],
        max_batch_size=COMPUTE_BATCH,
        max_wait_ms=2.0,
        max_queue=4 * CLIENTS,
        telemetry=telemetry,
    )
    with server:
        warm_up(server, inputs[:1], requests=4)
        report = LoadGenerator(
            server,
            lambda client, index: inputs[(client + index) % len(inputs)][None, :],
            clients=CLIENTS,
            requests_per_client=requests,
        ).run()
        metrics = server.metrics()
    record = report.as_dict()
    record["mean_batch_rows"] = metrics["mean_batch_rows"]
    return record


def _guard_cost_seconds(iterations: int = 200_000) -> float:
    """Measured cost of one ``if tel.enabled:`` disabled-path branch."""
    tel = NULL_TELEMETRY
    sink = 0
    started = time.perf_counter()
    for _ in range(iterations):
        if tel.enabled:
            sink += 1  # pragma: no cover - never taken
    elapsed = time.perf_counter() - started
    assert sink == 0
    return elapsed / iterations


def _run_serving_benchmark() -> dict:
    off = _serve_throughput(None)
    on = _serve_throughput(Telemetry())
    guard = _guard_cost_seconds()
    # One request's share of a micro-batch, from the measured throughput.
    per_request = 1.0 / max(off["throughput_rps"], 1e-9)
    guard_fraction = (GUARDS_PER_REQUEST * guard) / per_request
    return {
        "throughput_off_rps": round(off["throughput_rps"], 2),
        "throughput_on_rps": round(on["throughput_rps"], 2),
        "mean_batch_rows": round(off["mean_batch_rows"], 2),
        "guard_cost_ns": round(guard * 1e9, 2),
        "guard_fraction_per_request": round(guard_fraction, 8),
    }


def _run_benchmark() -> dict:
    return {
        "train_step": _run_train_benchmark(),
        "serving": _run_serving_benchmark(),
    }


# --------------------------------------------------------------------------- #
# Tests
# --------------------------------------------------------------------------- #
def test_telemetry_off_is_near_free():
    """E16: emits BENCH_telemetry.json; asserts the <3% disabled-path claim."""
    results = _run_benchmark()
    train, serving = results["train_step"], results["serving"]

    print_report(
        "E16 · telemetry overhead: hotpath train step and serving loop",
        ["path", "baseline", "telemetry off", "telemetry on", "off/baseline"],
        [
            [
                "train step/s",
                f"{train['baseline_steps_per_sec']:.1f}",
                f"{train['off_steps_per_sec']:.1f}",
                f"{train['on_steps_per_sec']:.1f}",
                f"{train['off_ratio']:.3f}",
            ],
            [
                "serving req/s",
                "-",
                f"{serving['throughput_off_rps']:.0f}",
                f"{serving['throughput_on_rps']:.0f}",
                f"guard {serving['guard_cost_ns']:.0f} ns",
            ],
        ],
    )

    # The contract.  Strict mode (the reference container / CI perf job)
    # holds the full <3% bound; the quick tier-1 run keeps a floor wide
    # enough for machine noise but far above any real regression.
    floor = 1.0 - MAX_OFF_OVERHEAD if _STRICT else QUICK_FLOOR
    assert train["off_ratio"] >= floor, (
        f"disabled telemetry costs {(1 - train['off_ratio']):.1%} of the "
        f"train step (bound: {1 - floor:.0%})"
    )
    # The serving guard branches are nanoseconds against a multi-ms batch.
    assert serving["guard_fraction_per_request"] < MAX_OFF_OVERHEAD
    # Enabled telemetry is bounded too: spans may cost real time, but the
    # hot path must stay in the same ballpark, not fall off a cliff.
    assert train["on_ratio"] >= 0.5

    if _PERF_LONG or not BENCH_PATH.exists():
        BENCH_PATH.write_text(
            json.dumps(
                {
                    "experiment": "E16-telemetry-overhead",
                    "results": results,
                    "note": (
                        "Disabled-path overhead of the telemetry "
                        "instrumentation: train_step times the dispatcher "
                        "against its uninstrumented body "
                        "(_train_step_impl) on the paper's 1.2M-parameter "
                        "MLP (2 shards); serving measures closed-loop "
                        f"throughput ({CLIENTS} clients) with telemetry "
                        "off/on plus a micro-probe of the `if tel.enabled` "
                        "guard branch.  Regenerate with REPRO_PERF_LONG=1."
                    ),
                },
                indent=2,
            )
            + "\n"
        )


@pytest.mark.skipif(not _PERF_CHECK, reason="perf gate runs with REPRO_PERF_CHECK=1")
def test_no_regression_versus_committed_json():
    """CI perf gate: fresh disabled-path numbers must stay within tolerance."""
    committed = json.loads(BENCH_PATH.read_text())["results"]
    fresh = _run_benchmark()
    failures = []
    pairs = [
        ("train_step", "off_steps_per_sec"),
        ("serving", "throughput_off_rps"),
    ]
    for section, key in pairs:
        floor = committed[section][key] * PERF_TOLERANCE
        measured = fresh[section][key]
        if measured < floor:
            failures.append(
                f"{section}.{key}: {measured:.2f} < {floor:.2f} "
                f"({PERF_TOLERANCE:.0%} of committed {committed[section][key]:.2f})"
            )
    if fresh["train_step"]["off_ratio"] < 1.0 - MAX_OFF_OVERHEAD:
        failures.append(
            f"disabled-path ratio {fresh['train_step']['off_ratio']:.3f} broke "
            f"the <{MAX_OFF_OVERHEAD:.0%} overhead contract"
        )
    assert not failures, "performance regressions: " + "; ".join(failures)
