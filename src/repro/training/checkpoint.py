"""Model checkpointing to ``.npz`` archives.

Archives are flat key/value stores of numpy arrays with a namespace prefix
per section: ``param::<name>`` for model parameters, ``opt::<...>`` for
optimizer state (step count and per-parameter moment arrays),
``sched::<key>`` for learning-rate-scheduler state, and ``meta::<key>`` for
caller metadata.  The same serialization (via :func:`save_array_bundle` /
:func:`load_array_bundle`) backs the host shard cache's disk tier in
:mod:`repro.memory` and the serving :class:`~repro.serving.ModelRegistry`,
so a spilled shard, a published model version, and a checkpoint are all
one format.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Optional

import numpy as np

from repro.exceptions import CheckpointError
from repro.nn.module import Module
from repro.optim.lr_scheduler import LRScheduler
from repro.optim.optimizer import Optimizer

#: archive key prefixes (one namespace per section)
PARAM_PREFIX = "param::"
OPT_PREFIX = "opt::"
SCHED_PREFIX = "sched::"
META_PREFIX = "meta::"


def save_array_bundle(
    path: str | Path, arrays: Dict[str, np.ndarray], compressed: bool = False
) -> Path:
    """Write a flat ``name -> array`` mapping to an ``.npz`` archive.

    This is the serialization primitive shared by :func:`save_checkpoint`
    and the disk tier of :class:`repro.memory.HostShardCache`.  Returns the
    actual path written (numpy appends ``.npz`` when missing).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    writer = np.savez_compressed if compressed else np.savez
    writer(path, **{name: np.asarray(values) for name, values in arrays.items()})
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_array_bundle(path: str | Path) -> Dict[str, np.ndarray]:
    """Read back a ``name -> array`` mapping written by :func:`save_array_bundle`."""
    path = Path(path)
    if not path.exists() and path.with_suffix(path.suffix + ".npz").exists():
        path = path.with_suffix(path.suffix + ".npz")
    if not path.exists():
        raise CheckpointError(f"archive {path} does not exist")
    with np.load(path, allow_pickle=False) as archive:
        return {key: archive[key] for key in archive.files}


def _optimizer_param_names(model: Module, optimizer: Optimizer) -> Dict[int, str]:
    """Map ``id(param) -> qualified name`` for the optimizer's parameters.

    Every optimizer parameter must belong to the model, otherwise the saved
    state could not be re-attached on load.
    """
    by_id = {id(param): name for name, param in model.named_parameters()}
    names: Dict[int, str] = {}
    for param in optimizer.parameters:
        if id(param) not in by_id:
            raise CheckpointError(
                "optimizer holds a parameter that is not part of the model; "
                "cannot serialise its state under a stable name"
            )
        names[id(param)] = by_id[id(param)]
    return names


def save_checkpoint(
    model: Module,
    path: str | Path,
    metadata: Dict[str, object] | None = None,
    compressed: bool = False,
    optimizer: Optional[Optimizer] = None,
    scheduler: Optional[LRScheduler] = None,
) -> Path:
    """Write the model's parameters (and optional metadata) to ``path``.

    With ``compressed=True`` the archive is deflate-compressed
    (``np.savez_compressed``) — markedly smaller artifacts for the
    model-hopping and selection examples, at a modest CPU cost on save.
    ``load_checkpoint`` reads both formats transparently.

    With ``optimizer=...`` the archive additionally captures the full
    optimizer state under ``opt::`` keys — the step count, the learning
    rate, and every per-parameter state array (e.g. Adam's two moments) —
    so spill/restore and mid-trial resume round-trip the *complete*
    training state: training resumed from such a checkpoint is bit-identical
    to training that never stopped.

    With ``scheduler=...`` the learning-rate schedule's dynamic state
    (:meth:`~repro.optim.lr_scheduler.LRScheduler.state_dict`) is captured
    under ``sched::`` keys too, so warmup/decay schedules survive a
    mid-trial resume bit-identically — without it, a resumed run would
    restart the schedule at step 0 and silently diverge.
    """
    path = Path(path)
    state = model.state_dict()
    payload: Dict[str, np.ndarray] = {
        f"{PARAM_PREFIX}{name}": values for name, values in state.items()
    }
    if optimizer is not None:
        names = _optimizer_param_names(model, optimizer)
        payload[f"{OPT_PREFIX}step_count"] = np.asarray(optimizer.step_count)
        payload[f"{OPT_PREFIX}lr"] = np.asarray(optimizer.lr)
        for param in optimizer.parameters:
            per_param = optimizer.state.get(id(param), {})
            for key in sorted(per_param):
                payload[f"{OPT_PREFIX}{names[id(param)]}::{key}"] = per_param[key]
    if scheduler is not None:
        for key, value in scheduler.state_dict().items():
            payload[f"{SCHED_PREFIX}{key}"] = np.asarray(value)
    if metadata:
        for key, value in metadata.items():
            payload[f"{META_PREFIX}{key}"] = np.asarray(value)
    return save_array_bundle(path, payload, compressed=compressed)


def load_checkpoint(
    model: Module,
    path: str | Path,
    optimizer: Optional[Optimizer] = None,
    scheduler: Optional[LRScheduler] = None,
) -> Dict[str, np.ndarray]:
    """Restore parameters saved by :func:`save_checkpoint`; returns metadata.

    With ``optimizer=...`` the optimizer's step count, learning rate, and
    per-parameter state arrays are restored as well; the archive must have
    been written with an optimizer (:class:`~repro.exceptions.CheckpointError`
    otherwise).  State arrays are matched to parameters by qualified name,
    so the optimizer must hold the model's parameters.

    With ``scheduler=...`` the learning-rate schedule's ``sched::`` state is
    restored the same way — the archive must have been written with a
    scheduler, and the caller must pass a freshly built schedule of the
    same shape (warmup/total steps are constructor arguments, like model
    architecture).
    """
    archive = load_array_bundle(path)
    state = {}
    metadata = {}
    opt_entries: Dict[str, np.ndarray] = {}
    sched_entries: Dict[str, np.ndarray] = {}
    for key, values in archive.items():
        if key.startswith(PARAM_PREFIX):
            state[key[len(PARAM_PREFIX):]] = values
        elif key.startswith(META_PREFIX):
            metadata[key[len(META_PREFIX):]] = values
        elif key.startswith(SCHED_PREFIX):
            sched_entries[key[len(SCHED_PREFIX):]] = values
        elif key.startswith(OPT_PREFIX):
            opt_entries[key[len(OPT_PREFIX):]] = values
    if not state:
        raise CheckpointError(f"checkpoint {path} contains no parameters")
    # Validate the whole archive before mutating anything — a caller that
    # catches the CheckpointError must not be left with a torn restore
    # (checkpoint weights next to stale or cleared optimizer moments).
    apply_optimizer = None
    if optimizer is not None:
        if not opt_entries:
            raise CheckpointError(
                f"checkpoint {path} contains no optimizer state; save it with "
                "save_checkpoint(..., optimizer=optimizer)"
            )
        apply_optimizer = _resolve_optimizer_state(model, optimizer, opt_entries)
    if scheduler is not None and not sched_entries:
        raise CheckpointError(
            f"checkpoint {path} contains no scheduler state; save it with "
            "save_checkpoint(..., scheduler=scheduler)"
        )
    model.load_state_dict(state)
    if apply_optimizer is not None:
        apply_optimizer()
    if scheduler is not None:
        scheduler.load_state_dict(
            {key: value.item() for key, value in sched_entries.items()}
        )
    return metadata


def _resolve_optimizer_state(
    model: Module, optimizer: Optimizer, entries: Dict[str, np.ndarray]
):
    """Validate ``opt::`` entries; return a zero-argument applier."""
    names = _optimizer_param_names(model, optimizer)
    by_name = {name: param for param, name in
               ((p, names[id(p)]) for p in optimizer.parameters)}
    if "step_count" not in entries or "lr" not in entries:
        raise CheckpointError(
            "optimizer section is incomplete (missing step_count/lr); the "
            "archive was not written by save_checkpoint(..., optimizer=...)"
        )
    step_count = int(entries["step_count"])
    lr = float(entries["lr"])
    resolved = []
    for key, values in entries.items():
        if key in ("step_count", "lr"):
            continue
        param_name, _, state_key = key.rpartition("::")
        if param_name not in by_name:
            raise CheckpointError(
                f"optimizer state {key!r} names parameter {param_name!r}, "
                "which the optimizer does not hold"
            )
        param = by_name[param_name]
        if values.shape != param.data.shape:
            raise CheckpointError(
                f"optimizer state {key!r}: shape {values.shape} does not match "
                f"parameter shape {param.data.shape}"
            )
        resolved.append((param, state_key, values))

    def apply() -> None:
        optimizer.step_count = step_count
        optimizer.lr = lr
        optimizer.state.clear()
        for param, state_key, values in resolved:
            optimizer.state.setdefault(id(param), {})[state_key] = values.copy()

    return apply
