"""The documented metrics snapshot schema, with validators the tests share.

Every metrics surface in the stack reports through one of three documented
shapes, so dashboards and the future autoscaler can consume any of them
without per-component parsing:

**Latency snapshot** (``ModelServer.metrics()``,
``LatencyStats.snapshot()``, each per-model row of the router report) —
a flat ``str -> float`` dict with exactly :data:`LATENCY_SNAPSHOT_KEYS`:
the counters in :data:`MONOTONIC_COUNTERS` never decrease between
snapshots of the same collector.

**Fleet report** (``FleetRouter.metrics()``) — ``{"fleet": <latency
snapshot>, "models": {name: <latency snapshot>}, "residency": {...},
"scheduler": {...}}`` with the residency/scheduler keys below.

**Registry snapshot** (``Telemetry.metrics_snapshot()``) —
``{"counters": {str: float}, "gauges": {str: float}, "histograms":
{str: summary}, "collectors": {str: dict}}`` where each histogram summary
carries :data:`HISTOGRAM_SUMMARY_KEYS`.

Validators raise :class:`SchemaError` naming the first violation and
return the snapshot unchanged, so they compose:
``validate_fleet_metrics(router.metrics())``.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Mapping

#: keys (all float-valued) of one latency snapshot
LATENCY_SNAPSHOT_KEYS = (
    "completed",
    "rejected",
    "timed_out",
    "failed",
    "batches",
    "mean_batch_rows",
    "queue_depth_max",
    "queue_depth_mean",
    "throughput_rps",
    "latency_p50_ms",
    "latency_p95_ms",
    "latency_p99_ms",
    "latency_mean_ms",
)

#: latency-snapshot keys that must never decrease across snapshots
MONOTONIC_COUNTERS = ("completed", "rejected", "timed_out", "failed", "batches")

#: keys of the router report's ``"residency"`` section
RESIDENCY_KEYS = (
    "budget_bytes",
    "registered_bytes",
    "resident_bytes",
    "resident_models",
    "evictions",
    "restores",
    "bytes_evicted",
    "bytes_fetched",
)

#: keys of the router report's ``"scheduler"`` section
SCHEDULER_KEYS = ("queue_depths", "batches_dispatched", "stalls")

#: keys of one histogram summary in a registry snapshot
HISTOGRAM_SUMMARY_KEYS = ("count", "sum", "min", "max", "mean", "p50", "p95", "p99")

#: top-level sections of a registry snapshot
REGISTRY_SECTIONS = ("counters", "gauges", "histograms", "collectors")


class SchemaError(ValueError):
    """A snapshot violated the documented schema."""


def _require_keys(snap: Mapping[str, Any], keys: Iterable[str], where: str) -> None:
    missing = [key for key in keys if key not in snap]
    if missing:
        raise SchemaError(f"{where}: missing keys {missing}; has {sorted(snap)}")


def validate_latency_snapshot(snap: Mapping[str, Any], where: str = "latency snapshot"):
    """Validate one flat latency snapshot (exact keys, numeric values)."""
    if not isinstance(snap, Mapping):
        raise SchemaError(f"{where}: expected a dict, got {type(snap).__name__}")
    _require_keys(snap, LATENCY_SNAPSHOT_KEYS, where)
    extra = sorted(set(snap) - set(LATENCY_SNAPSHOT_KEYS))
    if extra:
        raise SchemaError(f"{where}: undocumented keys {extra}")
    for key in LATENCY_SNAPSHOT_KEYS:
        value = snap[key]
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise SchemaError(
                f"{where}: {key!r} must be numeric, got {type(value).__name__}"
            )
        if value < 0:
            raise SchemaError(f"{where}: {key!r} must be >= 0, got {value}")
    return snap


def validate_fleet_metrics(report: Mapping[str, Any], where: str = "fleet report"):
    """Validate a ``FleetRouter.metrics()`` report (all four sections)."""
    if not isinstance(report, Mapping):
        raise SchemaError(f"{where}: expected a dict, got {type(report).__name__}")
    _require_keys(report, ("fleet", "models", "residency", "scheduler"), where)
    validate_latency_snapshot(report["fleet"], f"{where}.fleet")
    if not isinstance(report["models"], Mapping):
        raise SchemaError(f"{where}.models: expected a dict")
    for name, snap in report["models"].items():
        validate_latency_snapshot(snap, f"{where}.models[{name!r}]")
    residency = report["residency"]
    _require_keys(residency, RESIDENCY_KEYS, f"{where}.residency")
    if not isinstance(residency["resident_models"], list):
        raise SchemaError(f"{where}.residency.resident_models must be a list")
    for key in ("registered_bytes", "resident_bytes", "evictions", "restores",
                "bytes_evicted", "bytes_fetched"):
        if residency[key] < 0:
            raise SchemaError(f"{where}.residency.{key} must be >= 0")
    scheduler = report["scheduler"]
    _require_keys(scheduler, SCHEDULER_KEYS, f"{where}.scheduler")
    if not isinstance(scheduler["queue_depths"], Mapping):
        raise SchemaError(f"{where}.scheduler.queue_depths must be a dict")
    return report


def validate_registry_snapshot(snap: Mapping[str, Any], where: str = "registry snapshot"):
    """Validate a ``Telemetry.metrics_snapshot()`` / registry snapshot."""
    if not isinstance(snap, Mapping):
        raise SchemaError(f"{where}: expected a dict, got {type(snap).__name__}")
    _require_keys(snap, REGISTRY_SECTIONS, where)
    for section in ("counters", "gauges"):
        for name, value in snap[section].items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise SchemaError(
                    f"{where}.{section}[{name!r}] must be numeric, "
                    f"got {type(value).__name__}"
                )
            if section == "counters" and value < 0:
                raise SchemaError(f"{where}.counters[{name!r}] must be >= 0")
    for name, summary in snap["histograms"].items():
        _require_keys(summary, HISTOGRAM_SUMMARY_KEYS, f"{where}.histograms[{name!r}]")
    for name, payload in snap["collectors"].items():
        if not isinstance(payload, Mapping):
            raise SchemaError(f"{where}.collectors[{name!r}] must be a dict")
    return snap


def assert_monotonic(
    before: Mapping[str, Any],
    after: Mapping[str, Any],
    keys: Iterable[str] = MONOTONIC_COUNTERS,
    where: str = "snapshot pair",
) -> None:
    """Assert the monotonic counters never decreased between two snapshots.

    Keys absent from either snapshot are skipped, so the same call works on
    full latency snapshots and on trimmed-down counter dicts.
    """
    for key in keys:
        if key not in before or key not in after:
            continue
        if after[key] < before[key]:
            raise SchemaError(
                f"{where}: counter {key!r} decreased ({before[key]} -> {after[key]})"
            )
