"""Successive halving (the core of Hyperband/ASHA-style early stopping).

Model-selection systems such as Ray Tune pair task parallelism with early
stopping; Hydra is agnostic to the stopping rule because it schedules at the
shard level.  This implementation exists so the examples can demonstrate the
full selection stack (search + early stopping + shard-parallel training).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.exceptions import SearchSpaceError
from repro.selection.experiment import ExperimentTracker, SelectionResult, TrialConfig
from repro.selection.search_space import SearchSpace

#: resumable train function: (config, num_epochs, previous_state) -> (metrics, state)
ResumableTrainFn = Callable[[TrialConfig, int, object], tuple]


def successive_halving(
    search_space: SearchSpace,
    train_fn: ResumableTrainFn,
    num_trials: int = 8,
    min_epochs: int = 1,
    reduction_factor: int = 2,
    max_rungs: Optional[int] = None,
    objective: str = "loss",
    mode: str = "min",
    seed: Optional[int] = 0,
) -> SelectionResult:
    """Run successive halving: all trials start, the worst are culled each rung.

    ``train_fn`` must be resumable: it receives the opaque state it returned
    for the same trial on the previous rung (or ``None`` on the first rung)
    and continues training from there for ``num_epochs`` more epochs.
    """
    if num_trials <= 1:
        raise SearchSpaceError("successive halving needs at least two trials")
    if reduction_factor < 2:
        raise SearchSpaceError(f"reduction_factor must be >= 2, got {reduction_factor}")
    rng = np.random.default_rng(seed)
    tracker = ExperimentTracker(objective=objective, mode=mode)

    trials: List[TrialConfig] = [
        TrialConfig(trial_id=f"sha-{i}", hyperparameters=search_space.sample(rng))
        for i in range(num_trials)
    ]
    states: Dict[str, object] = {trial.trial_id: None for trial in trials}
    epochs_done: Dict[str, int] = {trial.trial_id: 0 for trial in trials}

    total_rungs = max_rungs if max_rungs is not None else max(
        1, int(math.floor(math.log(num_trials, reduction_factor)))
    )
    survivors = list(trials)
    epochs_this_rung = min_epochs
    for rung in range(total_rungs + 1):
        scored = []
        for trial in survivors:
            tracker.start_trial(trial.trial_id)
            metrics, state = train_fn(trial, epochs_this_rung, states[trial.trial_id])
            states[trial.trial_id] = state
            epochs_done[trial.trial_id] += epochs_this_rung
            result = tracker.record(
                trial.trial_id,
                trial.hyperparameters,
                metrics,
                epochs_trained=epochs_done[trial.trial_id],
            )
            scored.append((result.metric(objective), trial))
        if len(survivors) <= 1 or rung == total_rungs:
            break
        scored.sort(key=lambda item: item[0], reverse=(mode == "max"))
        keep = max(1, len(survivors) // reduction_factor)
        survivors = [trial for _, trial in scored[:keep]]
        epochs_this_rung *= reduction_factor
    return tracker.as_result("successive_halving")
