"""E14 — fleet serving: multi-model throughput under one shared budget.

Four trained-shape MLPs serve the same total closed-loop traffic two ways:

* ``sequential`` — one model at a time: each model's clients run against a
  dedicated :class:`~repro.serving.ModelServer` in its own phase, and the
  aggregate throughput divides total completions by the *sum* of phase
  durations.  This is what a single-model serving stack does with a model
  fleet: swap, serve, swap.  The dedicated server gets its strongest shape
  on shared hardware — one resident replica (extra replicas only split a
  closed loop's batches) — but it is *fill-window bound*: one model's
  ``CLIENTS_PER_MODEL`` clients never saturate the ``COMPUTE_BATCH``-row
  geometry, so every batch waits out the full ``max_wait_ms`` window
  before dispatch, and that dead time dominates a sub-millisecond forward.
* ``fleet`` — every model at once through one
  :class:`~repro.serving.FleetRouter`: one replica pool, one spill budget
  sized at ~``BUDGET_MODELS`` of the four models' bytes (cold models evict
  and restore through the shared manager), continuous batching, and a
  uniform traffic mix over all four models.  The router never waits a fill
  window — with four models' queues feeding one pool, *some* model always
  has ready work, so workers dispatch back to back.

Both run forwards at the fixed ``COMPUTE_BATCH``-row geometry, so fleet
responses are **bit-identical** to dedicated-server responses — asserted by
the exactness test below with ``scrub_evicted`` poisoning any restore the
router might skip.  The headline number, policed by the CI ``perf`` job,
is fleet aggregate throughput ≥ 3× the sequential baseline: continuous
batching converts the sequential stack's per-batch fill-window dead time
into served requests, even though the shared budget forces eviction churn
along the way.

Results land in ``benchmarks/BENCH_router.json``; the committed JSON is
only rewritten by an explicit ``REPRO_PERF_LONG=1`` run, and the CI perf
job (``REPRO_PERF_CHECK=1``) fails when fresh throughput drops below
``REPRO_PERF_TOLERANCE`` of the committed numbers (label a PR
``skip-perf`` to opt out).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro.models import FeedForwardConfig, FeedForwardNetwork
from repro.serving import (
    FleetRouter,
    LoadGenerator,
    ModelServer,
    Replica,
    warm_up,
)

from conftest import print_report

BENCH_PATH = Path(__file__).resolve().parent / "BENCH_router.json"

WIDTH = 128
CLASSES = 64
COMPUTE_BATCH = 32
FLEET_SIZE = 4
CLIENTS_PER_MODEL = 8
#: router pool workers; the sequential baseline serves one resident
#: replica per dedicated server — its fastest shape for a closed loop
REPLICAS = 2
#: the dedicated server's stock batching window (the serve() default)
MAX_WAIT_MS = 2.0
#: shared device budget, in units of one model's parameter bytes — less
#: than the fleet's total, so serving all four requires eviction churn
BUDGET_MODELS = 3.0
#: harsher budget for the exactness test: maximal eviction churn
EXACTNESS_BUDGET_MODELS = 2.5
#: how long the scheduler may defer a cold model in favour of resident work
#: (higher than the router default: throughput runs tolerate ~COLD_SKIPS
#: batches of extra cold-start latency in exchange for fewer blocked leases)
COLD_SKIPS = 16
#: the contract the CI perf job additionally gates on
MIN_FLEET_SPEEDUP = 3.0

_PERF_CHECK = os.environ.get("REPRO_PERF_CHECK", "") not in ("", "0")
_PERF_LONG = os.environ.get("REPRO_PERF_LONG", "") not in ("", "0")

#: fraction of the committed throughput the perf job requires
PERF_TOLERANCE = float(os.environ.get("REPRO_PERF_TOLERANCE", "0.5"))


# --------------------------------------------------------------------------- #
# Workload
# --------------------------------------------------------------------------- #
def _model(seed: int) -> FeedForwardNetwork:
    config = FeedForwardConfig(
        input_dim=WIDTH, hidden_dims=(WIDTH, WIDTH), num_classes=CLASSES
    )
    return FeedForwardNetwork(config, seed=seed)


def _model_names() -> list:
    return [f"mlp-{index}" for index in range(FLEET_SIZE)]


def _seed(name: str) -> int:
    return 17 + int(name.rsplit("-", 1)[1])


def _inputs(count: int = 64) -> np.ndarray:
    rng = np.random.default_rng(23)
    return rng.normal(size=(count, WIDTH)).astype(np.float32)


def _budget(models: float) -> int:
    one = sum(p.data.nbytes for p in _model(17).parameters())
    return int(one * models)


def _make_router(budget_models: float, scrub: bool = False) -> FleetRouter:
    router = FleetRouter(
        memory_budget=_budget(budget_models),
        replicas=REPLICAS,
        max_batch_size=COMPUTE_BATCH,
        max_queue=8 * CLIENTS_PER_MODEL * FLEET_SIZE,
        max_cold_skips=COLD_SKIPS,
        scrub_evicted=scrub,
        watchdog_interval_s=None,
    )
    for name in _model_names():
        router.add_model(name, _model(_seed(name)))
    return router


def _measure_sequential(requests_per_client: int) -> dict:
    """Each model's traffic in its own phase against a dedicated server."""
    inputs = _inputs()
    completed = rejected = timed_out = 0
    duration = 0.0
    latencies_p99 = []
    for name in _model_names():
        server = ModelServer(
            [Replica.resident(_model(_seed(name)), name=f"{name}/replica0")],
            max_batch_size=COMPUTE_BATCH,
            max_wait_ms=MAX_WAIT_MS,
            max_queue=8 * CLIENTS_PER_MODEL * FLEET_SIZE,
        )
        with server:
            warm_up(server, inputs[:1], requests=4)
            report = LoadGenerator(
                server,
                lambda client, index: inputs[(client + index) % len(inputs)][None, :],
                clients=CLIENTS_PER_MODEL,
                requests_per_client=requests_per_client,
            ).run()
        completed += report.completed
        rejected += report.rejected
        timed_out += report.timed_out
        duration += report.duration_seconds
        latencies_p99.append(report.latency["latency_p99_ms"])
    return {
        "mode": "closed",
        "completed": float(completed),
        "rejected": float(rejected),
        "timed_out": float(timed_out),
        "duration_seconds": duration,
        "throughput_rps": completed / max(duration, 1e-9),
        "latency_p99_ms": max(latencies_p99),
    }


def _measure_fleet(requests_per_client: int) -> dict:
    """All models at once through one router under the shared budget."""
    inputs = _inputs()
    with _make_router(BUDGET_MODELS) as router:
        for name in _model_names():
            warm_up(router.handle(name), inputs[:1], requests=4)
        report = LoadGenerator(
            router,
            lambda client, index: inputs[(client + index) % len(inputs)][None, :],
            clients=CLIENTS_PER_MODEL * FLEET_SIZE,
            requests_per_client=requests_per_client,
            mix={name: 1.0 for name in _model_names()},
        ).run()
        metrics = router.metrics()
    record = report.as_dict()
    record["mean_batch_rows"] = metrics["fleet"]["mean_batch_rows"]
    record["queue_depth_mean"] = metrics["fleet"]["queue_depth_mean"]
    record["evictions"] = metrics["residency"]["evictions"]
    record["restores"] = metrics["residency"]["restores"]
    record["batches"] = metrics["scheduler"]["batches_dispatched"]
    return record


def _run_benchmark() -> dict:
    requests_per_client = 40 if (_PERF_CHECK or _PERF_LONG) else 25
    # Runs last well under a second, so a single sample is at the mercy of
    # whatever else the host is doing; best-of-N measures capability.
    repeats = 3
    results = {
        "sequential": max(
            (_measure_sequential(requests_per_client) for _ in range(repeats)),
            key=lambda record: record["throughput_rps"],
        ),
        "fleet": max(
            (_measure_fleet(requests_per_client) for _ in range(repeats)),
            key=lambda record: record["throughput_rps"],
        ),
    }
    results["fleet"]["speedup_vs_sequential"] = round(
        results["fleet"]["throughput_rps"]
        / results["sequential"]["throughput_rps"],
        2,
    )
    return results


# --------------------------------------------------------------------------- #
# Tests
# --------------------------------------------------------------------------- #
def test_fleet_exactness_vs_dedicated_servers():
    """E14 correctness bar: a fleet answer under eviction churn is
    bit-identical to a dedicated single-model server's."""
    inputs = _inputs(count=24)
    references = {}
    for name in _model_names():
        replica = Replica.resident(_model(_seed(name)))
        references[name] = [
            replica.infer({"features": x[None, :]}, pad_to=COMPUTE_BATCH)
            for x in inputs
        ]
    with _make_router(EXACTNESS_BUDGET_MODELS, scrub=True) as router:
        for index, x in enumerate(inputs):
            for name in _model_names():
                got = router.request(name, {"features": x[None, :]})
                assert np.array_equal(got, references[name][index]), (
                    f"{name} diverged from its dedicated server at request {index}"
                )
        evictions = router.metrics()["residency"]["evictions"]
    # The budget (< fleet bytes) must actually have forced churn — otherwise
    # this proved resident-only serving, not eviction-safe serving.
    assert evictions > 0


def test_fleet_throughput_vs_sequential():
    """E14: emits BENCH_router.json; asserts the ≥3x fleet speedup."""
    results = _run_benchmark()
    fleet = results["fleet"]
    sequential = results["sequential"]

    print_report(
        f"E14 · fleet serving: {FLEET_SIZE} models, one pool, "
        f"budget for ~{BUDGET_MODELS:g}",
        ["config", "req/s", "vs sequential", "p99 ms", "rows/batch", "evict/restore"],
        [
            [
                "sequential",
                f"{sequential['throughput_rps']:.0f}",
                "1.0x",
                f"{sequential['latency_p99_ms']:.2f}",
                "-",
                "-",
            ],
            [
                "fleet",
                f"{fleet['throughput_rps']:.0f}",
                f"{fleet['speedup_vs_sequential']:.1f}x",
                f"{fleet['latency_p99_ms']:.2f}",
                f"{fleet['mean_batch_rows']:.1f}",
                f"{fleet['evictions']:.0f}/{fleet['restores']:.0f}",
            ],
        ],
    )

    for name, record in results.items():
        assert record["rejected"] == 0 and record["timed_out"] == 0, (
            f"{name}: load run saw rejections/timeouts; queue sizing is off"
        )
    # Every model's traffic arrived in full and in its mixed share.
    per_model = fleet["per_model"]
    assert set(per_model) == set(_model_names())
    assert len(set(per_model.values())) == 1, per_model

    # The headline contract: one shared pool serving all models at once
    # beats one-model-at-a-time serving >= 3x on the same traffic, even
    # though the budget forces eviction churn along the way.
    assert fleet["speedup_vs_sequential"] >= MIN_FLEET_SPEEDUP, (
        f"fleet serving is only {fleet['speedup_vs_sequential']:.2f}x the "
        f"sequential baseline (need >= {MIN_FLEET_SPEEDUP}x)"
    )

    if _PERF_LONG or not BENCH_PATH.exists():
        payload = {
            name: {
                key: (round(float(value), 4) if not isinstance(value, (dict, str)) else value)
                for key, value in record.items()
            }
            for name, record in results.items()
        }
        BENCH_PATH.write_text(
            json.dumps(
                {
                    "experiment": "E14-router",
                    "configs": payload,
                    "note": (
                        f"{FLEET_SIZE} {WIDTH}-wide MLPs, "
                        f"{CLIENTS_PER_MODEL} closed-loop clients per model. "
                        "sequential = one dedicated single-replica server "
                        f"per model ({MAX_WAIT_MS:g} ms batching window), "
                        "phases timed back to back; fleet = one FleetRouter "
                        f"({REPLICAS} workers, continuous batching) under a "
                        f"shared budget of {BUDGET_MODELS:g} models' bytes, "
                        f"uniform mix.  Both run the fixed {COMPUTE_BATCH}-"
                        "row geometry, so responses are bit-identical by "
                        "assertion.  The speedup is work conservation: the "
                        "windowed server sleeps out its fill window every "
                        "batch, the router never does.  Regenerate with "
                        "REPRO_PERF_LONG=1."
                    ),
                },
                indent=2,
            )
            + "\n"
        )


@pytest.mark.skipif(not _PERF_CHECK, reason="perf gate runs with REPRO_PERF_CHECK=1")
def test_no_regression_versus_committed_json():
    """CI perf gate: fresh throughput must stay within tolerance of the JSON."""
    committed = json.loads(BENCH_PATH.read_text())["configs"]
    fresh = _run_benchmark()
    failures = []
    for name, record in committed.items():
        floor = record["throughput_rps"] * PERF_TOLERANCE
        measured = fresh[name]["throughput_rps"]
        if measured < floor:
            failures.append(
                f"{name}: {measured:.0f} req/s < {floor:.0f} "
                f"({PERF_TOLERANCE:.0%} of committed {record['throughput_rps']:.0f})"
            )
    if fresh["fleet"]["speedup_vs_sequential"] < MIN_FLEET_SPEEDUP:
        failures.append(
            f"fleet speedup {fresh['fleet']['speedup_vs_sequential']:.2f}x "
            f"fell below the {MIN_FLEET_SPEEDUP}x contract"
        )
    assert not failures, "performance regressions: " + "; ".join(failures)
