"""Adam and AdamW optimizers (AdamW is what BERT fine-tuning uses)."""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np

from repro.nn.parameter import Parameter
from repro.optim.optimizer import Optimizer


class Adam(Optimizer):
    """Adam with bias-corrected first and second moments."""

    state_bytes_per_parameter = 8  # two float32 moments per scalar

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas: Tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr)
        beta1, beta2 = betas
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)

    def _update(self, param: Parameter, grad: np.ndarray) -> None:
        if self.weight_decay and self._couples_weight_decay():
            grad = grad + self.weight_decay * param.data
        state = self._param_state(param)
        m = state.get("m")
        v = state.get("v")
        if m is None:
            m = np.zeros_like(param.data)
            v = np.zeros_like(param.data)
        m = self.beta1 * m + (1.0 - self.beta1) * grad
        v = self.beta2 * v + (1.0 - self.beta2) * (grad * grad)
        state["m"], state["v"] = m, v
        m_hat = m / (1.0 - self.beta1 ** self.step_count)
        v_hat = v / (1.0 - self.beta2 ** self.step_count)
        update = m_hat / (np.sqrt(v_hat) + self.eps)
        if self.weight_decay and not self._couples_weight_decay():
            update = update + self.weight_decay * param.data
        param.data = param.data - self.lr * update

    def _couples_weight_decay(self) -> bool:
        """Adam couples L2 into the gradient; AdamW decays weights directly."""
        return True


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter)."""

    def _couples_weight_decay(self) -> bool:
        return False
