"""Fleet routing: one replica pool and one memory budget for many models.

A :class:`FleetRouter` is the multi-model counterpart of
:class:`~repro.serving.server.ModelServer` — the paper's framing (many
models sharing one memory budget) carried to the inference side.  One
router owns, for *every* published model it serves:

* **one replica pool** — ``replicas`` worker threads on the runtime's
  :class:`~repro.api.runtime.pool.WorkerPool`, each repeatedly asking the
  scheduler for ``(model, micro-batch)`` work;
* **one spill budget** — a single :class:`~repro.memory.SpillManager`
  arena that all models' parameters are charged against.  Each model is
  registered *whole* (Hydra-style: models move as units, not layer
  fragments): hot models stay device-resident, cold models are evicted to
  the host cache under pressure and restored on demand, so the fleet's
  total parameter bytes may exceed the budget;
* **one scheduler** — continuous batching over per-model waiting queues.

**Continuous batching.**  Unlike the single-model
:class:`~repro.serving.batcher.DynamicBatcher`, which may hold a partial
batch for up to ``max_wait_ms``, the fleet scheduler never sleeps on
purpose: the moment a worker is free and any queue is non-empty, it forms
a micro-batch from whatever requests are ready *now* (whole requests, FIFO
per model, up to the model's ``max_batch_size`` rows) and dispatches it.
Under fleet-level load there is always other work to run, so idling a
worker to fatten one model's batch only adds latency.

**Weighted-fair selection.**  Queues are picked by stride scheduling:
every model carries a ``pass`` value advanced by ``rows / weight`` each
time it is served, and the non-empty queue with the smallest pass goes
next.  A model with twice the weight gets twice the rows over time, and no
backlogged model can be starved — its pass stops advancing while others'
grow.  A model whose queue was empty re-enters at the scheduler's current
virtual time, so an idle model cannot bank credit and then monopolise the
pool.

**Cold models.**  Serving an evicted model means restoring its bytes
first, so the scheduler prefers hot work while a restore is in flight: if
the fair pick is evicted and a resident model also has work, the resident
one runs, the cold model's restore is kicked off in the background
(prefetch), and a skip counter guarantees the cold model is served
unconditionally after at most ``max_cold_skips`` deferrals — bounded
unfairness, never starvation.  Arrival at an evicted model's queue also
triggers a prefetch, so restores overlap other models' compute.

**Exactness.**  Every model executes at its own fixed compute geometry
(micro-batches padded via :func:`~repro.serving.replica.pad_rows`), and
evict/restore round-trips are bit-exact, so a fleet answer is
``array_equal`` to a dedicated single-model :class:`ModelServer` at the
same geometry — whether the model happened to be resident or evicted.

A watchdog thread (SGLang-style) observes the scheduler from outside:
every ``watchdog_interval_s`` it logs per-batch throughput and queue
depths, and flags a stall when requests are queued but no batch completed
over a whole interval.
"""

from __future__ import annotations

import logging
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.autograd.tensor import no_grad
from repro.data.dataloader import Batch
from repro.exceptions import (
    ConfigurationError,
    RequestTimeoutError,
    ServerOverloadedError,
    ServingError,
)
from repro.memory import (
    DeviceArena,
    HostShardCache,
    Prefetcher,
    ResidencyState,
    SpillManager,
)
from repro.models.base import ShardableModel
from repro.serving.batcher import InferenceRequest, PendingResponse
from repro.serving.replica import concat_rows, pad_rows, request_rows, slice_rows
from repro.serving.server import RequestArrays
from repro.serving.stats import ServerStats
from repro.telemetry import NULL_TELEMETRY
from repro.utils.logging import log_context

logger = logging.getLogger(__name__)

#: arena name of the fleet's single shared serving device
_FLEET_ARENA = "fleet0"
#: arena capacity standing in for "no budget" (effectively unbounded)
_UNBOUNDED = 1 << 62


@dataclass
class ModelEntry:
    """One model under fleet management (internal to the router).

    Holds the model's queue, batching geometry, fair-share state, and its
    whole-model key in the shared spill manager.
    """

    name: str
    model: Optional[ShardableModel]
    weight: float
    max_batch_size: int
    compute_batch_size: int
    max_queue: int
    nbytes: int
    queue: List[InferenceRequest] = field(default_factory=list)
    #: stride-scheduling pass value — served rows / weight, monotone
    pass_value: float = 0.0
    #: consecutive times the scheduler deferred this model while evicted
    cold_skips: int = 0
    #: process-backed entries: the ProcessReplica client executing forwards
    #: in a child process (``model`` is None; never budget-registered — the
    #: weights are page-cache-shared mmaps, not arena bytes)
    client: Any = None

    @property
    def key(self) -> Tuple[str, int]:
        """The model's whole-model shard key in the shared spill manager."""
        return (self.name, 0)


class RouterHandle:
    """A single-model view of a router, API-compatible with a server.

    ``handle = router.handle("mlp-a")`` gives load generators and client
    code the familiar ``submit``/``request`` surface without threading the
    model name through every call.
    """

    def __init__(self, router: "FleetRouter", model: str):
        self.router = router
        self.model = model

    def submit(
        self, arrays: RequestArrays, timeout_ms: Optional[float] = None
    ) -> PendingResponse:
        """Enqueue one request for this handle's model."""
        return self.router.submit(self.model, arrays, timeout_ms=timeout_ms)

    def request(
        self, arrays: RequestArrays, timeout_ms: Optional[float] = None
    ) -> Any:
        """Synchronous convenience: submit then wait for the rows."""
        return self.router.request(self.model, arrays, timeout_ms=timeout_ms)

    def metrics(self, window_seconds: Optional[float] = None) -> Dict[str, float]:
        """This model's latency/throughput snapshot."""
        return self.router.stats.for_model(self.model).snapshot(
            window_seconds=window_seconds
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RouterHandle({self.model!r} on {self.router.name!r})"


class FleetRouter:
    """Serves every registered model through one pool and one budget.

    Example::

        router = FleetRouter(memory_budget=budget, replicas=2)
        router.add_model("mlp-a", model_a)
        router.add_model("mlp-b", model_b, weight=2.0)
        with router:
            logits = router.request("mlp-a", {"features": x})
            report = router.metrics()

    ``memory_budget`` (bytes) bounds the models' combined device residency;
    ``None`` keeps every model resident.  ``max_batch_size`` / ``max_queue``
    / ``timeout_ms`` are fleet-wide defaults that :meth:`add_model` can
    override per model.  ``max_cold_skips`` bounds how often the scheduler
    may defer an evicted model in favour of resident work.

    Raises:
        ConfigurationError: for invalid counts/budgets, unknown or duplicate
            model names, or a model larger than the budget.
        ServingError: from the request path when the router is not running.
        ServerOverloadedError: when the target model's queue is full.
    """

    def __init__(
        self,
        memory_budget: Optional[int] = None,
        replicas: int = 2,
        max_batch_size: int = 8,
        max_queue: int = 64,
        timeout_ms: Optional[float] = None,
        eviction_policy: str = "lru",
        prefetch: bool = True,
        scrub_evicted: bool = False,
        spill_dir: Optional[str] = None,
        max_cold_skips: int = 3,
        watchdog_interval_s: Optional[float] = 5.0,
        feature_field: str = "features",
        name: str = "fleet",
        telemetry=None,
    ):
        if replicas <= 0:
            raise ConfigurationError(f"replicas must be positive, got {replicas}")
        if max_batch_size <= 0:
            raise ConfigurationError(
                f"max_batch_size must be positive, got {max_batch_size}"
            )
        if max_queue <= 0:
            raise ConfigurationError(f"max_queue must be positive, got {max_queue}")
        if memory_budget is not None and memory_budget <= 0:
            raise ConfigurationError(
                f"memory_budget must be positive, got {memory_budget}"
            )
        if timeout_ms is not None and timeout_ms <= 0:
            raise ConfigurationError(f"timeout_ms must be positive, got {timeout_ms}")
        if max_cold_skips < 0:
            raise ConfigurationError(
                f"max_cold_skips must be >= 0, got {max_cold_skips}"
            )
        self.name = name
        self.replicas = int(replicas)
        self.max_batch_size = int(max_batch_size)
        self.max_queue = int(max_queue)
        self.timeout_ms = timeout_ms
        self.feature_field = feature_field
        self.max_cold_skips = int(max_cold_skips)
        self.watchdog_interval_s = watchdog_interval_s
        self._budget = None if memory_budget is None else int(memory_budget)
        self._telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._manager = SpillManager(
            [DeviceArena(_FLEET_ARENA, self._budget or _UNBOUNDED)],
            cache=HostShardCache(spill_dir=spill_dir),
            policy=eviction_policy,
            prefetcher=Prefetcher() if prefetch else None,
            scrub_evicted=scrub_evicted,
            telemetry=self._telemetry,
        )
        self.stats = ServerStats()
        self._entries: Dict[str, ModelEntry] = {}
        self._cond = threading.Condition()
        self._virtual_time = 0.0
        self._batches_dispatched = 0
        self._stalls = 0
        self._pool = None
        self._loops: List[Any] = []
        self._watchdog: Optional[threading.Thread] = None
        self._watchdog_stop = threading.Event()
        self._running = False
        self._stopped = False
        self._closed = False

    # ------------------------------------------------------------------ #
    # Fleet membership
    # ------------------------------------------------------------------ #
    def add_model(
        self,
        name: str,
        model: Any,
        weight: float = 1.0,
        max_batch_size: Optional[int] = None,
        compute_batch_size: Optional[int] = None,
        max_queue: Optional[int] = None,
    ) -> ModelEntry:
        """Register one model with the fleet (before or while serving).

        The model is put in ``eval`` mode and its whole parameter set is
        registered against the shared budget.  ``weight`` scales its fair
        share of the pool; ``max_batch_size``/``compute_batch_size``/
        ``max_queue`` default to the router-wide settings.  The compute
        geometry must match any dedicated server the model's responses are
        compared against — exactness is per-geometry.

        ``model`` may also be a :class:`~repro.api.runtime.proc.ModelSpec`:
        the entry is then served by a :class:`~repro.api.runtime.proc.
        ProcessReplica` — forwards run in a dedicated child process that
        mmaps the spec's registry weights read-only.  Process entries are
        never charged to the fleet budget (their bytes live in the shared
        page cache, not the serving arena) and are always "hot" to the
        scheduler.
        """
        if self._stopped:
            raise ServingError(
                f"router {self.name!r} was stopped; build a new router"
            )
        if weight <= 0:
            raise ConfigurationError(f"weight must be positive, got {weight}")
        batch = int(max_batch_size) if max_batch_size is not None else self.max_batch_size
        compute = int(compute_batch_size) if compute_batch_size is not None else batch
        queue_limit = int(max_queue) if max_queue is not None else self.max_queue
        if batch <= 0 or queue_limit <= 0:
            raise ConfigurationError(
                f"max_batch_size ({batch}) and max_queue ({queue_limit}) must be positive"
            )
        if compute < batch:
            raise ConfigurationError(
                f"compute_batch_size ({compute}) must be >= max_batch_size ({batch})"
            )
        # Imported lazily: repro.api initialisation imports the serving
        # facade, which imports this package (same cycle start() breaks).
        from repro.api.runtime.proc import ModelSpec, ProcessReplica

        client = None
        if isinstance(model, ModelSpec):
            # Child spawns lazily; it inherits the router's telemetry flag so
            # its forward spans flow back through the reply channel.
            client = ProcessReplica(model, name=name, telemetry=self._telemetry)
            model = None
            nbytes = 0
        else:
            model.eval()
            nbytes = sum(p.data.nbytes for p in model.parameters())
            if self._budget is not None and nbytes > self._budget:
                raise ConfigurationError(
                    f"model {name!r} needs {nbytes} bytes but the fleet budget is "
                    f"{self._budget}; a model must fit the budget whole"
                )
        entry = ModelEntry(
            name=name,
            model=model,
            weight=float(weight),
            max_batch_size=batch,
            compute_batch_size=compute,
            max_queue=queue_limit,
            nbytes=nbytes,
            client=client,
        )
        with self._cond:
            if name in self._entries:
                if client is not None:
                    client.close()
                raise ConfigurationError(
                    f"model {name!r} is already registered with router {self.name!r}"
                )
            self._entries[name] = entry
            # A newly added model starts at the scheduler's virtual time so
            # it cannot claim the pool retroactively for epochs it sat out.
            entry.pass_value = self._virtual_time
        if client is None:
            self._manager.register(
                entry.key,
                _FLEET_ARENA,
                nbytes,
                lambda model=model: [p.data for p in model.parameters()],
            )
        self.stats.for_model(name)  # a zeroed row in reports from day one
        return entry

    @property
    def models(self) -> List[str]:
        """Registered model names, sorted."""
        with self._cond:
            return sorted(self._entries)

    def handle(self, model: str) -> RouterHandle:
        """A server-shaped view of one model (for load generators, clients)."""
        self._entry(model)
        return RouterHandle(self, model)

    def resident_models(self) -> List[str]:
        """Models whose parameters are currently on the serving device."""
        return [key[0] for key in self._manager.resident_keys()]

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "FleetRouter":
        """Start the worker pool (and watchdog); models may be added later."""
        if self._running:
            return self
        if self._stopped:
            raise ServingError(
                f"router {self.name!r} was stopped; build a new router"
            )
        # Imported lazily: repro.api initialisation imports the serving
        # facade, which imports this package (same cycle ModelServer breaks).
        from repro.api.runtime.pool import ThreadWorkerPool

        if self._telemetry.enabled:
            self._telemetry.register_collector(f"router.{self.name}", self.metrics)
        self._pool = ThreadWorkerPool(self.replicas)
        self._running = True
        self._loops = [
            self._pool.submit(self._serve_loop) for _ in range(self.replicas)
        ]
        if self.watchdog_interval_s is not None and self.watchdog_interval_s > 0:
            self._watchdog_stop.clear()
            self._watchdog = threading.Thread(
                target=self._watchdog_loop,
                name=f"{self.name}-watchdog",
                daemon=True,
            )
            self._watchdog.start()
        return self

    def stop(self, drain: bool = True) -> None:
        """Stop the router; with ``drain`` (default) queued requests finish.

        Stopping releases the shared spill state: every model's canonical
        bytes are restored into its live parameter arrays (an evicted
        model's truth lives in the host cache until then), so the model
        objects remain usable after the router lets go.
        """
        if not self._running:
            return
        with self._cond:
            self._closed = True
            if not drain:
                cancelled = [
                    request for entry in self._entries.values() for request in entry.queue
                ]
                for entry in self._entries.values():
                    entry.queue = []
            else:
                cancelled = []
            self._cond.notify_all()
        for request in cancelled:
            request.response.set_exception(ServingError("router stopped"))
        try:
            for future in self._loops:
                future.result()
        finally:
            self._running = False
            self._stopped = True
            self._loops = []
            self._watchdog_stop.set()
            if self._watchdog is not None:
                self._watchdog.join(timeout=5.0)
                self._watchdog = None
            if self._pool is not None:
                self._pool.shutdown()
                self._pool = None
            for name, entry in list(self._entries.items()):
                if entry.client is not None:
                    entry.client.close()
                else:
                    self._manager.forget_model(name)
            self._manager.close()

    def __enter__(self) -> "FleetRouter":
        """Start the router on scope entry."""
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        """Stop the router (draining queued requests) on scope exit."""
        self.stop()

    # ------------------------------------------------------------------ #
    # Request path
    # ------------------------------------------------------------------ #
    def submit(
        self,
        model: str,
        arrays: RequestArrays,
        timeout_ms: Optional[float] = None,
    ) -> PendingResponse:
        """Enqueue one request for ``model`` and return its response handle.

        Admission control is **per model**: a full queue for one model
        rejects that model's traffic only — the rest of the fleet keeps
        accepting.  Arrival at an evicted model's queue kicks off its
        restore in the background so the bytes travel while other models
        compute.
        """
        if not self._running:
            raise ServingError(f"router {self.name!r} is not running; call start()")
        entry = self._entry(model)
        if isinstance(arrays, np.ndarray):
            arrays = {self.feature_field: arrays}
        arrays = {name: np.asarray(values) for name, values in arrays.items()}
        rows = request_rows(arrays)
        if rows <= 0:
            raise ConfigurationError("a request must carry at least one row")
        if rows > entry.max_batch_size:
            raise ConfigurationError(
                f"request carries {rows} rows but model {model!r} batches at most "
                f"{entry.max_batch_size}; split it client-side"
            )
        now = time.monotonic()
        limit = timeout_ms if timeout_ms is not None else self.timeout_ms
        request = InferenceRequest(
            arrays=arrays,
            rows=rows,
            submitted=now,
            deadline=None if limit is None else now + float(limit) / 1e3,
        )
        if self._telemetry.enabled:
            self._telemetry.event(
                "request.submit", cat="serving",
                router=self.name, model=model, rows=rows,
            )
        with self._cond:
            if self._closed:
                raise ServingError("router is stopped; no new requests accepted")
            if len(entry.queue) >= entry.max_queue:
                self.stats.count(model, rejected=1)
                raise ServerOverloadedError(
                    f"model {model!r} queue is full ({entry.max_queue} pending); "
                    "retry later"
                )
            if not entry.queue:
                # Re-entering the ready set: catch up to the virtual time so
                # an idle spell does not convert into a burst entitlement.
                entry.pass_value = max(entry.pass_value, self._virtual_time)
            entry.queue.append(request)
            self._cond.notify_all()
        # Outside the router lock: the manager has its own locking, and a
        # restore started now overlaps whatever the workers are computing.
        # Process-backed entries have no residency to manage.
        if (
            entry.client is None
            and self._manager.residency(entry.key) is ResidencyState.EVICTED
        ):
            self._manager.prefetch(entry.key)
        return request.response

    def request(
        self,
        model: str,
        arrays: RequestArrays,
        timeout_ms: Optional[float] = None,
    ) -> Any:
        """Synchronous convenience: :meth:`submit` then wait for the rows."""
        limit = timeout_ms if timeout_ms is not None else self.timeout_ms
        # Slack past the server-side deadline so the scheduler's own expiry
        # (the authoritative one) fires first.
        wait = None if limit is None else float(limit) / 1e3 + 1.0
        return self.submit(model, arrays, timeout_ms=timeout_ms).result(timeout=wait)

    # ------------------------------------------------------------------ #
    # Observability
    # ------------------------------------------------------------------ #
    @property
    def queue_depths(self) -> Dict[str, int]:
        """Requests currently waiting, per model."""
        with self._cond:
            return {name: len(entry.queue) for name, entry in sorted(self._entries.items())}

    def metrics(self, window_seconds: Optional[float] = None) -> Dict[str, Any]:
        """Fleet and per-model latency/throughput plus residency counters.

        The ``"fleet"`` and ``"models"`` sections carry p50/p95/p99,
        throughput, batch fill, and the failure counters; ``"residency"``
        reports the shared budget's evictions/restores and which models are
        hot; ``"scheduler"`` reports queue depths and watchdog stalls.
        """
        report: Dict[str, Any] = self.stats.snapshot(window_seconds=window_seconds)
        spill = self._manager.stats.as_dict()
        report["residency"] = {
            "budget_bytes": self._budget,
            "registered_bytes": self._manager.registered_bytes(),
            "resident_bytes": self._manager.resident_bytes(),
            "resident_models": self.resident_models(),
            "evictions": spill["evictions"],
            "restores": spill["demand_fetches"] + spill["prefetches_completed"],
            "bytes_evicted": spill["bytes_evicted"],
            "bytes_fetched": spill["bytes_fetched"],
        }
        with self._cond:
            report["scheduler"] = {
                "queue_depths": {
                    name: len(entry.queue)
                    for name, entry in sorted(self._entries.items())
                },
                "batches_dispatched": self._batches_dispatched,
                "stalls": self._stalls,
            }
        return report

    # ------------------------------------------------------------------ #
    # Scheduler internals
    # ------------------------------------------------------------------ #
    def _entry(self, model: str) -> ModelEntry:
        with self._cond:
            if model not in self._entries:
                raise ConfigurationError(
                    f"router {self.name!r} has no model {model!r}; "
                    f"registered: {sorted(self._entries) or 'none'}"
                )
            return self._entries[model]

    def _expire_locked(self) -> None:
        now = time.monotonic()
        for entry in self._entries.values():
            overdue = [request for request in entry.queue if request.expired(now)]
            if not overdue:
                continue
            entry.queue = [
                request for request in entry.queue if not request.expired(now)
            ]
            for request in overdue:
                request.response.set_exception(
                    RequestTimeoutError(
                        "request expired after "
                        f"{now - request.submitted:.3f}s in the queue"
                    )
                )
            self.stats.count(entry.name, timed_out=len(overdue))

    def _poll_interval_locked(self) -> float:
        """Wait granularity: wake early enough to expire the nearest deadline."""
        now = time.monotonic()
        deadlines = [
            request.deadline - now
            for entry in self._entries.values()
            for request in entry.queue
            if request.deadline is not None
        ]
        nearest = min(deadlines) if deadlines else 0.05
        return max(min(nearest, 0.05), 1e-4)

    def _take_locked(self, entry: ModelEntry) -> Tuple[List[InferenceRequest], int]:
        taken: List[InferenceRequest] = []
        rows = 0
        while entry.queue and rows + entry.queue[0].rows <= entry.max_batch_size:
            request = entry.queue.pop(0)
            taken.append(request)
            rows += request.rows
        self._cond.notify_all()
        return taken, rows

    def _next_assignment(
        self,
    ) -> Optional[Tuple[ModelEntry, List[InferenceRequest], int, Dict[str, int]]]:
        """Block until a micro-batch is ready; ``None`` once closed and drained.

        Continuous batching: as soon as any queue is non-empty the batch is
        formed from what is there — no fill window.  Selection is stride
        (weighted-fair) with the bounded hot-model preference described in
        the module docstring.
        """
        with self._cond:
            while True:
                self._expire_locked()
                ready = [entry for entry in self._entries.values() if entry.queue]
                if not ready:
                    if self._closed:
                        return None
                    self._cond.wait(timeout=self._poll_interval_locked())
                    continue
                chosen = min(ready, key=lambda e: (e.pass_value, e.name))
                if (
                    chosen.client is None
                    and chosen.cold_skips < self.max_cold_skips
                    and self._manager.residency(chosen.key)
                    is not ResidencyState.RESIDENT
                ):
                    # Cold (evicted or mid-restore): a worker that took this
                    # batch would block in acquire — possibly on an eviction
                    # that needs the *other* workers to unpin first.
                    hot = [
                        entry
                        for entry in ready
                        if entry is not chosen
                        and (
                            entry.client is not None
                            or self._manager.residency(entry.key)
                            is ResidencyState.RESIDENT
                        )
                    ]
                    if hot:
                        # Defer the cold pick (bounded), start its restore,
                        # and run resident work meanwhile.
                        chosen.cold_skips += 1
                        self._manager.prefetch(chosen.key)
                        chosen = min(hot, key=lambda e: (e.pass_value, e.name))
                chosen.cold_skips = 0
                self._virtual_time = chosen.pass_value
                batch, rows = self._take_locked(chosen)
                chosen.pass_value += rows / chosen.weight
                self._batches_dispatched += 1
                depths = {
                    name: len(entry.queue) for name, entry in self._entries.items()
                }
                return chosen, batch, rows, depths

    def _serve_loop(self) -> None:
        """One worker's life: pick a (model, batch), lease, infer, complete."""
        tel = self._telemetry
        while True:
            assignment = self._next_assignment()
            if assignment is None:
                return
            entry, batch, rows, depths = assignment
            with log_context(router=self.name, model=entry.name):
                if tel.enabled:
                    with tel.span(
                        "serve.batch", cat="serving",
                        router=self.name, model=entry.name,
                        rows=rows, requests=len(batch),
                    ):
                        self._serve_batch(entry, batch, rows, depths, tel)
                else:
                    self._serve_batch(entry, batch, rows, depths, tel)

    def _serve_batch(self, entry, batch, rows, depths, tel) -> None:
        """Run one assigned micro-batch and complete its responses."""
        started = time.monotonic()
        try:
            arrays = concat_rows([request.arrays for request in batch])
            if entry.client is not None:
                # Process-backed entry: the child pads to the compute
                # geometry, forwards, and slices — same exactness
                # contract, different process.
                if tel.enabled:
                    with tel.span("serve.forward", cat="serving", model=entry.name):
                        output = entry.client.infer(
                            arrays, pad_to=entry.compute_batch_size
                        )
                else:
                    output = entry.client.infer(
                        arrays, pad_to=entry.compute_batch_size
                    )
            else:
                padded = pad_rows(arrays, rows, entry.compute_batch_size)
                # The lease pins the whole model resident (restoring it
                # from the host cache if it was evicted) for exactly
                # this forward.
                with self._manager.lease(entry.key):
                    if tel.enabled:
                        with tel.span(
                            "serve.forward", cat="serving", model=entry.name
                        ):
                            with no_grad():
                                output = entry.model.forward(
                                    Batch(
                                        arrays={
                                            k: np.asarray(v)
                                            for k, v in padded.items()
                                        }
                                    )
                                )
                    else:
                        with no_grad():
                            output = entry.model.forward(
                                Batch(
                                    arrays={
                                        k: np.asarray(v) for k, v in padded.items()
                                    }
                                )
                            )
                output = slice_rows(output, 0, rows)
        except BaseException as error:  # noqa: BLE001 - mirrored to clients
            # Typed serving errors (ReplicaCrashedError from a killed
            # child, ...) pass through so clients can react specifically.
            if isinstance(error, ServingError):
                mirrored = error
            else:
                mirrored = ServingError(
                    f"model {entry.name!r} failed on a micro-batch: "
                    f"{type(error).__name__}: {error}"
                )
            for request in batch:
                request.response.set_exception(mirrored)
            self.stats.count(entry.name, failed=len(batch))
            return
        finished = time.monotonic()
        offset = 0
        for request in batch:
            request.response.set_result(
                slice_rows(output, offset, offset + request.rows)
            )
            offset += request.rows
            self.stats.record(entry.name, finished - request.submitted)
        self.stats.record_batch(entry.name, rows, queue_depth=sum(depths.values()))
        logger.debug(
            "router=%s batch model=%s rows=%d/%d requests=%d infer_ms=%.2f queues=%s",
            self.name,
            entry.name,
            rows,
            entry.compute_batch_size,
            len(batch),
            (finished - started) * 1e3,
            depths,
        )

    # ------------------------------------------------------------------ #
    def _watchdog_loop(self) -> None:
        """Log per-interval progress; flag stalls (queued work, no batches)."""
        with log_context(router=self.name):
            self._watchdog_body()

    def _watchdog_body(self) -> None:
        last_completed = self.stats.fleet.completed
        while not self._watchdog_stop.wait(self.watchdog_interval_s):
            depths = self.queue_depths
            queued = sum(depths.values())
            completed = self.stats.fleet.completed
            progressed = completed - last_completed
            last_completed = completed
            if queued and progressed == 0:
                with self._cond:
                    self._stalls += 1
                if self._telemetry.enabled:
                    self._telemetry.event(
                        "router.stall", cat="serving",
                        router=self.name, queued=queued,
                    )
                logger.warning(
                    "router=%s watchdog: no progress for %.1fs with %d queued "
                    "(queues=%s resident=%s)",
                    self.name,
                    self.watchdog_interval_s,
                    queued,
                    depths,
                    self.resident_models(),
                )
            else:
                logger.debug(
                    "router=%s watchdog: +%d completed (%.0f rps), queued=%d, resident=%s",
                    self.name,
                    progressed,
                    progressed / self.watchdog_interval_s,
                    queued,
                    self.resident_models(),
                )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        budget = "unbounded" if self._budget is None else f"{self._budget}B"
        return (
            f"FleetRouter({self.name!r}, models={self.models}, "
            f"replicas={self.replicas}, budget={budget})"
        )
