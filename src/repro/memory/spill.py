"""The shard residency state machine: resident → evicted → prefetching.

A :class:`SpillManager` tracks one :class:`ShardResidency` record per
``(model_id, shard_index)`` key.  Executors *lease* a shard around every use
(forward, loss, backward+update); between leases a shard is fair game for
eviction, which stashes its parameter and optimizer-state arrays into the
:class:`~repro.memory.host_cache.HostShardCache` and releases its
:class:`~repro.memory.arena.DeviceArena` charge.  Re-acquiring an evicted
shard restores the exact bytes in place (``np.copyto`` into the live
arrays), so spilled training is bit-identical to fully-resident training —
the same exactness bar the fused kernels meet.

Eviction is pluggable: :class:`LRUEvictionPolicy` evicts the
least-recently-used shard; :class:`ScheduleAwareEvictionPolicy` consumes the
access sequences executors announce per batch and evicts the shard whose
next hop is furthest away (Belady's rule on the declared schedule).

The manager is thread-safe: under the concurrent runtime several trials
share the same arenas, and an acquire that cannot make room (everything
else pinned) waits on a condition until pins or prefetches clear — with a
timeout that turns a would-be deadlock into a loud
:class:`~repro.exceptions.MemoryBudgetError`.
"""

from __future__ import annotations

import enum
import threading
import time
from collections import OrderedDict, deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.exceptions import ConfigurationError, MemoryBudgetError
from repro.memory.arena import DeviceArena
from repro.memory.host_cache import HostShardCache, ShardKey
from repro.memory.prefetch import Prefetcher
from repro.telemetry import NULL_TELEMETRY

#: returns the live device-side arrays of a shard (params + optimizer state),
#: in a stable order — re-evaluated at each stash/restore so lazily created
#: optimizer state is picked up
ArraysFn = Callable[[], List[np.ndarray]]


class ResidencyState(str, enum.Enum):
    """Where a shard's bytes currently live."""

    RESIDENT = "resident"
    EVICTED = "evicted"
    PREFETCHING = "prefetching"


@dataclass
class ShardResidency:
    """Book-keeping for one registered shard (internal to the manager)."""

    key: ShardKey
    device: str
    nbytes: int
    arrays_fn: ArraysFn
    state: ResidencyState = ResidencyState.EVICTED
    pins: int = 0
    last_use: int = 0
    prefetch_error: Optional[BaseException] = None


@dataclass
class SpillStats:
    """Counters the spill manager accumulates (see ``docs/memory.md``)."""

    demand_fetches: int = 0
    prefetches_issued: int = 0
    prefetches_completed: int = 0
    evictions: int = 0
    bytes_fetched: int = 0
    bytes_evicted: int = 0
    acquire_waits: int = 0

    def as_dict(self) -> Dict[str, int]:
        """The counters as a plain dict (for reports and benchmarks)."""
        return dict(vars(self))


# --------------------------------------------------------------------------- #
# Eviction policies
# --------------------------------------------------------------------------- #
class EvictionPolicy:
    """Chooses which evictable shard to push to host when room is needed."""

    name = "policy"

    def note_access(self, record: ShardResidency) -> None:
        """Called on every acquire of ``record`` (in schedule order)."""

    def announce(self, model_id: str, sequence: Sequence[ShardKey]) -> None:
        """Called when an executor declares its upcoming access sequence."""

    def retire(self, model_id: str) -> None:
        """Forget any bookkeeping for a model that is being torn down."""

    def choose(self, candidates: List[ShardResidency]) -> ShardResidency:
        """Pick the victim among ``candidates`` (non-empty)."""
        raise NotImplementedError


class LRUEvictionPolicy(EvictionPolicy):
    """Evict the least-recently-acquired shard (classic LRU)."""

    name = "lru"

    def choose(self, candidates: List[ShardResidency]) -> ShardResidency:
        """The candidate with the oldest ``last_use`` (key as tiebreak)."""
        return min(candidates, key=lambda r: (r.last_use, r.key))


class ScheduleAwareEvictionPolicy(EvictionPolicy):
    """Evict the shard whose next scheduled hop is furthest away.

    Executors :meth:`announce` each batch's access sequence (the forward
    chain then the backward chain); accesses consume the sequence as they
    happen.  A shard with no upcoming access (its model is between batches)
    is the ideal victim; otherwise the one that will be needed last goes —
    Belady's MIN rule applied to the declared schedule, which is exactly the
    information a shard-parallel trainer has.
    """

    name = "schedule-aware"

    def __init__(self) -> None:
        self._upcoming: Dict[str, Deque[ShardKey]] = {}

    def announce(self, model_id: str, sequence: Sequence[ShardKey]) -> None:
        """Replace ``model_id``'s upcoming access sequence."""
        self._upcoming[model_id] = deque(sequence)

    def note_access(self, record: ShardResidency) -> None:
        """Consume the first scheduled occurrence of the accessed shard."""
        queue = self._upcoming.get(record.key[0])
        if queue:
            try:
                queue.remove(record.key)
            except ValueError:
                pass

    def retire(self, model_id: str) -> None:
        """Drop the model's schedule."""
        self._upcoming.pop(model_id, None)

    def _next_use(self, key: ShardKey) -> float:
        queue = self._upcoming.get(key[0])
        if not queue:
            return float("inf")
        for position, upcoming in enumerate(queue):
            if upcoming == key:
                return float(position)
        return float("inf")

    def choose(self, candidates: List[ShardResidency]) -> ShardResidency:
        """The candidate needed furthest in the future (LRU as tiebreak)."""
        return max(
            candidates,
            key=lambda r: (self._next_use(r.key), -r.last_use, r.key),
        )


_POLICIES: Dict[str, Callable[[], EvictionPolicy]] = {
    "lru": LRUEvictionPolicy,
    "schedule-aware": ScheduleAwareEvictionPolicy,
}


def make_eviction_policy(name: str) -> EvictionPolicy:
    """Build an eviction policy by name (``"lru"`` or ``"schedule-aware"``)."""
    if name not in _POLICIES:
        raise ConfigurationError(
            f"unknown eviction policy {name!r}; available: {sorted(_POLICIES)}"
        )
    return _POLICIES[name]()


# --------------------------------------------------------------------------- #
# The manager
# --------------------------------------------------------------------------- #
class SpillManager:
    """Owns shard residency across a set of device arenas (see module docstring).

    Example::

        arenas = [DeviceArena("dev0", capacity_bytes=64 << 20)]
        manager = SpillManager(arenas, policy="lru")
        manager.register(("mlp", 0), "dev0", nbytes, arrays_fn)
        with manager.lease(("mlp", 0)):
            ...  # shard is resident and pinned

    ``scrub_evicted=True`` fills evicted float arrays with NaN after
    stashing them — any use that skips re-acquisition then fails loudly
    instead of silently training on stale weights (the exactness tests run
    with this on).

    Raises:
        ConfigurationError: on unknown arenas/keys or invalid registration.
        MemoryBudgetError: when a shard cannot fit its arena, or an acquire
            times out waiting for pinned occupants to clear.
    """

    def __init__(
        self,
        arenas: Union[Sequence[DeviceArena], Dict[str, DeviceArena]],
        cache: Optional[HostShardCache] = None,
        policy: Union[str, EvictionPolicy] = "lru",
        prefetcher: Optional[Prefetcher] = None,
        scrub_evicted: bool = False,
        acquire_timeout_seconds: float = 60.0,
        telemetry=None,
    ):
        if isinstance(arenas, dict):
            arena_list = list(arenas.values())
        else:
            arena_list = list(arenas)
        if not arena_list:
            raise ConfigurationError("a SpillManager needs at least one arena")
        names = [arena.name for arena in arena_list]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate arena names: {names}")
        self.arenas: "OrderedDict[str, DeviceArena]" = OrderedDict(
            (arena.name, arena) for arena in arena_list
        )
        self.cache = cache if cache is not None else HostShardCache()
        self.policy = make_eviction_policy(policy) if isinstance(policy, str) else policy
        self.prefetcher = prefetcher
        self.scrub_evicted = bool(scrub_evicted)
        self.acquire_timeout_seconds = float(acquire_timeout_seconds)
        self.stats = SpillStats()
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._records: Dict[ShardKey, ShardResidency] = {}
        self._cond = threading.Condition(threading.RLock())
        self._clock = 0

    def bind_telemetry(self, telemetry, name: str = "spill") -> None:
        """Attach a recorder after construction and publish residency metrics.

        Registers a collector named ``name`` whose snapshot folds the
        :class:`SpillStats` counters together with the live
        ``resident_bytes``/``registered_bytes`` occupancy — the absorption
        path for components (backends, routers) that build their manager
        before telemetry is wired in.
        """
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        if self.telemetry.enabled:
            self.telemetry.register_collector(
                name,
                lambda: {
                    **self.stats.as_dict(),
                    "resident_bytes": self.resident_bytes(),
                    "registered_bytes": self.registered_bytes(),
                },
            )

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    @property
    def arena_names(self) -> List[str]:
        """Arena names in registration order (index ``i`` = device ``i``)."""
        return list(self.arenas)

    def register(self, key: ShardKey, device: str, nbytes: int, arrays_fn: ArraysFn) -> None:
        """Register (or re-register) a shard with its device and byte size.

        Re-registration is how resumed trials re-attach: the arrays callback
        is refreshed, and a device change (a later cohort placing the model
        differently) first evicts the shard from its old arena.  A shard
        starts ``EVICTED`` — conceptually host-resident — and is charged to
        its arena on first acquire.
        """
        if device not in self.arenas:
            raise ConfigurationError(
                f"unknown arena {device!r}; manager has {self.arena_names}"
            )
        if nbytes < 0:
            raise ConfigurationError(f"shard size must be non-negative, got {nbytes}")
        with self._cond:
            record = self._records.get(key)
            if record is None:
                self._records[key] = ShardResidency(
                    key=key, device=device, nbytes=int(nbytes), arrays_fn=arrays_fn
                )
                return
            # Let any in-flight transfer land before rewriting the record —
            # re-routing device/nbytes/arrays_fn under a live copy would
            # corrupt the arena ledgers (and the copy itself).
            while record.state is ResidencyState.PREFETCHING:
                self._wait_locked(time.monotonic() + self.acquire_timeout_seconds, key)
            if record.pins > 0:
                raise ConfigurationError(f"cannot re-register pinned shard {key!r}")
            if record.device != device or record.nbytes != nbytes:
                if record.state is ResidencyState.RESIDENT:
                    self._evict_locked(record)
                record.device = device
                record.nbytes = int(nbytes)
            record.arrays_fn = arrays_fn

    def forget(self, key: ShardKey) -> None:
        """Drop a shard from management, restoring its bytes first.

        An evicted shard's canonical values live in the host cache; they are
        copied back into the live arrays so the model object remains valid
        after the manager lets go (e.g. at trial teardown).
        """
        with self._cond:
            record = self._records.get(key)
            if record is None:
                return
            while record.state is ResidencyState.PREFETCHING:
                self._wait_locked(time.monotonic() + self.acquire_timeout_seconds, key)
            # Checked *after* any wait: another thread may have pinned the
            # shard the moment its prefetch landed.
            if record.pins > 0:
                raise ConfigurationError(f"cannot forget pinned shard {key!r}")
            if record.state is ResidencyState.RESIDENT:
                self.arenas[record.device].release(self._arena_key(record))
            elif self.cache.holds(key):
                self._restore_locked(record)
            del self._records[key]
            self._cond.notify_all()

    def forget_model(self, model_id: str) -> None:
        """Forget every shard of ``model_id`` and drop its schedule."""
        with self._cond:
            for key in [k for k in self._records if k[0] == model_id]:
                self.forget(key)
            self.policy.retire(model_id)
            self.cache.drop_model(model_id)

    def registered(self) -> List[ShardKey]:
        """Keys currently under management."""
        with self._cond:
            return sorted(self._records)

    def residency(self, key: ShardKey) -> ResidencyState:
        """The shard's current residency state."""
        with self._cond:
            return self._record(key).state

    def resident_keys(self) -> List[ShardKey]:
        """Keys whose bytes are currently on a device (resident or landing).

        ``PREFETCHING`` shards count: their arena charge is already taken,
        so for occupancy purposes they are on-device.  Used by the serving
        router to report which whole models are hot.
        """
        with self._cond:
            return sorted(
                record.key
                for record in self._records.values()
                if record.state is not ResidencyState.EVICTED
            )

    def resident_bytes(self) -> int:
        """Total bytes currently charged to arenas by managed shards."""
        with self._cond:
            return sum(
                record.nbytes
                for record in self._records.values()
                if record.state is not ResidencyState.EVICTED
            )

    def registered_bytes(self) -> int:
        """Total bytes under management, resident or not.

        When this exceeds the arenas' combined capacity the working set is
        over-committed — exactly the regime spilling exists for; the ratio
        is the router's head-line residency metric.
        """
        with self._cond:
            return sum(record.nbytes for record in self._records.values())

    # ------------------------------------------------------------------ #
    # Leasing
    # ------------------------------------------------------------------ #
    def acquire(self, key: ShardKey) -> None:
        """Pin the shard, restoring it from host first if necessary.

        Blocks while other occupants are pinned or a prefetch is in flight;
        raises :class:`MemoryBudgetError` after ``acquire_timeout_seconds``.
        """
        deadline = time.monotonic() + self.acquire_timeout_seconds
        with self._cond:
            record = self._record(key)
            while True:
                if record.prefetch_error is not None:
                    # A failed prefetch restored nothing (its payload went
                    # back to the cache); surface the error to the user
                    # instead of silently demand-fetching around it.
                    error = record.prefetch_error
                    record.prefetch_error = None
                    raise error
                if record.state is ResidencyState.RESIDENT:
                    record.pins += 1
                    self._note_use(record)
                    return
                if record.state is ResidencyState.PREFETCHING:
                    self._wait_locked(deadline, key)
                    continue
                arena = self.arenas[record.device]
                if record.nbytes > arena.capacity_bytes:
                    raise MemoryBudgetError(
                        f"shard {key!r} needs {record.nbytes} bytes but arena "
                        f"{arena.name!r} holds only {arena.capacity_bytes}"
                    )
                if not self._make_room_locked(record, arena):
                    self.stats.acquire_waits += 1
                    self._wait_locked(deadline, key)
                    continue
                arena.allocate(self._arena_key(record), record.nbytes)
                tel = self.telemetry
                if tel.enabled:
                    with tel.span(
                        "spill.fetch", cat="memory", key=str(key), bytes=record.nbytes
                    ):
                        self._restore_locked(record)
                else:
                    self._restore_locked(record)
                record.state = ResidencyState.RESIDENT
                record.pins += 1
                self._note_use(record)
                self.stats.demand_fetches += 1
                self.stats.bytes_fetched += record.nbytes
                self._cond.notify_all()
                return

    def release(self, key: ShardKey) -> None:
        """Unpin the shard (it stays resident until pressure evicts it)."""
        with self._cond:
            record = self._record(key)
            if record.pins <= 0:
                raise ConfigurationError(f"release without acquire for shard {key!r}")
            record.pins -= 1
            if record.pins == 0:
                self._cond.notify_all()

    @contextmanager
    def lease(self, key: ShardKey) -> Iterator[None]:
        """``with manager.lease(key):`` — acquire on entry, release on exit."""
        tel = self.telemetry
        token = tel.begin("spill.lease", cat="memory", key=str(key)) if tel.enabled else None
        self.acquire(key)
        try:
            yield
        finally:
            self.release(key)
            if token is not None:
                tel.end(token)

    def announce(self, model_id: str, sequence: Sequence[ShardKey]) -> None:
        """Declare a model's upcoming access sequence (for schedule-aware eviction)."""
        with self._cond:
            self.policy.announce(model_id, sequence)

    # ------------------------------------------------------------------ #
    # Prefetch
    # ------------------------------------------------------------------ #
    def prefetch(self, key: ShardKey) -> bool:
        """Start an async restore of an evicted shard; ``True`` if begun.

        Opportunistic: returns ``False`` (without waiting) when the shard is
        already resident or in flight, no prefetcher is attached, the
        double-buffer is full, or room cannot be made without touching
        pinned shards.  The transfer overlaps the caller's compute; a later
        :meth:`acquire` joins on it.
        """
        if self.prefetcher is None:
            return False
        with self._cond:
            record = self._records.get(key)
            if record is None or record.state is not ResidencyState.EVICTED:
                return False
            arena = self.arenas[record.device]
            if record.nbytes > arena.capacity_bytes:
                return False
            if not self.prefetcher.try_reserve():
                return False
            if not self._make_room_locked(record, arena):
                self.prefetcher.cancel_reservation()
                return False
            arena.allocate(self._arena_key(record), record.nbytes)
            record.state = ResidencyState.PREFETCHING
            record.prefetch_error = None
            self.stats.prefetches_issued += 1
            payload = self._take_payload(record)

        def job() -> None:
            tel = self.telemetry
            if tel.enabled:
                with tel.span(
                    "spill.prefetch", cat="memory",
                    key=str(record.key), bytes=record.nbytes,
                ):
                    self._copy_into_live_arrays(record, payload)
            else:
                self._copy_into_live_arrays(record, payload)

        def on_done(error: Optional[BaseException]) -> None:
            with self._cond:
                if error is None:
                    record.state = ResidencyState.RESIDENT
                    self.stats.prefetches_completed += 1
                    self.stats.bytes_fetched += record.nbytes
                else:
                    # The payload was already taken from the cache; put it
                    # back so the canonical bytes survive the failure, and
                    # keep the error to re-raise at the next acquire — a
                    # silent failure here would train on stale weights.
                    if payload is not None:
                        self.cache.put(record.key, payload)
                    self.arenas[record.device].release(self._arena_key(record))
                    record.state = ResidencyState.EVICTED
                    record.prefetch_error = error
                self._cond.notify_all()

        self.prefetcher.submit(job, on_done)
        return True

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Shut down the attached prefetcher's worker (if any).

        Safe to call repeatedly; a prefetcher built on a caller-supplied
        pool leaves that pool running (ownership stays with the caller).
        """
        if self.prefetcher is not None:
            self.prefetcher.close()

    # ------------------------------------------------------------------ #
    # Eviction
    # ------------------------------------------------------------------ #
    def evict(self, key: ShardKey) -> None:
        """Explicitly push one unpinned resident shard to host (mostly for tests)."""
        with self._cond:
            record = self._record(key)
            if record.state is not ResidencyState.RESIDENT:
                raise ConfigurationError(f"shard {key!r} is not resident")
            if record.pins > 0:
                raise ConfigurationError(f"cannot evict pinned shard {key!r}")
            self._evict_locked(record)
            self._cond.notify_all()

    # ------------------------------------------------------------------ #
    # Internals (call with the condition's lock held)
    # ------------------------------------------------------------------ #
    def _record(self, key: ShardKey) -> ShardResidency:
        if key not in self._records:
            raise ConfigurationError(f"shard {key!r} is not registered")
        return self._records[key]

    @staticmethod
    def _arena_key(record: ShardResidency) -> str:
        model_id, shard_index = record.key
        return f"{model_id}/shard{shard_index}/resident"

    def _note_use(self, record: ShardResidency) -> None:
        self._clock += 1
        record.last_use = self._clock
        self.policy.note_access(record)

    def _wait_locked(self, deadline: float, key: ShardKey) -> None:
        remaining = deadline - time.monotonic()
        if remaining <= 0 or not self._cond.wait(timeout=remaining):
            pinned = [
                r.key for r in self._records.values() if r.pins > 0
            ]
            raise MemoryBudgetError(
                f"timed out waiting to make {key!r} resident; pinned shards: "
                f"{pinned or 'none'} — the budget is too tight for the "
                f"concurrent working set"
            )

    def _make_room_locked(self, record: ShardResidency, arena: DeviceArena) -> bool:
        while record.nbytes > arena.free_bytes:
            candidates = [
                r
                for r in self._records.values()
                if r is not record
                and r.device == record.device
                and r.state is ResidencyState.RESIDENT
                and r.pins == 0
            ]
            if not candidates:
                return False
            victim = self.policy.choose(candidates)
            self._evict_locked(victim)
        return True

    def _evict_locked(self, record: ShardResidency) -> None:
        tel = self.telemetry
        if tel.enabled:
            with tel.span(
                "spill.evict", cat="memory", key=str(record.key), bytes=record.nbytes
            ):
                self._evict_body(record)
        else:
            self._evict_body(record)

    def _evict_body(self, record: ShardResidency) -> None:
        # The stash copy (and, with a disk-tiered cache, its overflow write)
        # runs under the manager lock: deferring it would need an extra
        # EVICTING state so a concurrent acquire cannot observe the scrubbed
        # arrays as canonical.  Correctness-first; the hold is one shard's
        # memcpy unless a disk tier is configured.
        arrays = record.arrays_fn()
        self.cache.put(record.key, arrays)
        if self.scrub_evicted:
            for array in arrays:
                if np.issubdtype(array.dtype, np.floating):
                    array.fill(np.nan)
        self.arenas[record.device].release(self._arena_key(record))
        record.state = ResidencyState.EVICTED
        self.stats.evictions += 1
        self.stats.bytes_evicted += record.nbytes

    def _take_payload(self, record: ShardResidency) -> Optional[List[np.ndarray]]:
        return self.cache.take(record.key) if self.cache.holds(record.key) else None

    def _restore_locked(self, record: ShardResidency) -> None:
        self._copy_into_live_arrays(record, self._take_payload(record))

    @staticmethod
    def _copy_into_live_arrays(
        record: ShardResidency, payload: Optional[List[np.ndarray]]
    ) -> None:
        if payload is None:
            # First fetch: the live arrays already hold the canonical values
            # (models are built in host memory); only the ledger changes.
            return
        live = record.arrays_fn()
        if len(live) != len(payload):
            raise ConfigurationError(
                f"shard {record.key!r}: stash holds {len(payload)} arrays but the "
                f"live shard exposes {len(live)} — arrays_fn must be stable "
                "across an eviction"
            )
        for destination, source in zip(live, payload):
            np.copyto(destination, source, casting="no")

    def __repr__(self) -> str:
        with self._cond:
            resident = sum(
                1 for r in self._records.values() if r.state is ResidencyState.RESIDENT
            )
            return (
                f"SpillManager({len(self._records)} shards, {resident} resident, "
                f"arenas={self.arena_names}, policy={self.policy.name})"
            )
