"""Online inference: from a selected model to answered requests.

The paper's pipeline ends when model selection picks a winner; this package
is the production half the ROADMAP asks for — deploying that winner and
serving traffic against it (see ``docs/serving.md``):

* :class:`ModelRegistry` — versioned published checkpoints (the
  training→serving hand-off, in the same ``.npz`` serialization as
  checkpoints and disk-spilled shards);
* :class:`DynamicBatcher` — bounded-queue admission control plus
  micro-batch coalescing under ``max_batch_size`` / ``max_wait_ms``;
* :class:`Replica` — one servable model copy, fully resident or *spilled*
  (a sharded executor leasing shards through its own
  :class:`~repro.memory.SpillManager`, so over-memory models serve from a
  single device budget);
* :class:`ModelServer` — a replica pool on the runtime's
  :class:`~repro.api.runtime.pool.WorkerPool`, with per-request deadlines
  and p50/p95/p99 latency + throughput metrics;
* :class:`LoadGenerator` — closed-loop and open-loop (fixed arrival rate)
  clients for load tests and the E13/E14 benchmarks;
* :class:`FleetRouter` — the multi-model tier: every published model served
  through **one** replica pool and **one** memory budget, with continuous
  batching, weighted-fair scheduling, and Hydra-style whole-model
  eviction/restore of cold models (see ``docs/router.md``).

Exactness is the core contract, inherited from the training side: replicas
run every forward at one fixed compute geometry, so batched responses are
``array_equal`` to unbatched single-request forwards, and spilled replicas
answer bit-identically to resident ones.

The declarative entry points live one layer up:
:func:`repro.api.serve` builds a server from a model,
:func:`repro.api.serve_fleet` builds a router over a registry's published
models, and ``SelectionResult.deploy`` goes straight from an experiment's
winner (rebuilt via the caller's builder, weights from the registry) to a
running server — or, with ``router=``, into a shared fleet.
"""

from repro.serving.batcher import DynamicBatcher, InferenceRequest, PendingResponse
from repro.serving.loadgen import LoadGenerator, LoadReport, warm_up
from repro.serving.registry import ModelRegistry, ModelVersion
from repro.serving.replica import Replica
from repro.serving.router import FleetRouter, ModelEntry, RouterHandle
from repro.serving.server import ModelServer
from repro.serving.stats import LatencyStats, ServerStats, latency_summary

__all__ = [
    "DynamicBatcher",
    "FleetRouter",
    "InferenceRequest",
    "LatencyStats",
    "LoadGenerator",
    "LoadReport",
    "ModelEntry",
    "ModelRegistry",
    "ModelServer",
    "ModelVersion",
    "PendingResponse",
    "Replica",
    "RouterHandle",
    "ServerStats",
    "latency_summary",
    "warm_up",
]
