"""Mini-batch loading."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional

import numpy as np

from repro.data.dataset import Dataset
from repro.utils.rng import get_rng


@dataclass
class Batch:
    """A stacked mini-batch: field name -> array of shape (batch, ...)."""

    arrays: Dict[str, np.ndarray] = field(default_factory=dict)

    def __getitem__(self, name: str) -> np.ndarray:
        return self.arrays[name]

    def __contains__(self, name: str) -> bool:
        return name in self.arrays

    @property
    def size(self) -> int:
        """Number of examples in the batch."""
        first = next(iter(self.arrays.values()))
        return len(first)

    def keys(self):
        return self.arrays.keys()


class DataLoader:
    """Iterates a dataset in mini-batches.

    Shuffling uses a private generator seeded per epoch from ``seed`` so the
    batch order is reproducible and identical between the sharded and
    unsharded training runs compared in the gradient-parity experiments.
    """

    def __init__(
        self,
        dataset: Dataset,
        batch_size: int = 32,
        shuffle: bool = False,
        drop_last: bool = False,
        seed: Optional[int] = None,
    ):
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.dataset = dataset
        self.batch_size = int(batch_size)
        self.shuffle = bool(shuffle)
        self.drop_last = bool(drop_last)
        self.seed = seed
        self._epoch = 0

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def set_epoch(self, epoch: int) -> None:
        """Set the epoch counter used to derive the shuffle order."""
        self._epoch = int(epoch)

    def __iter__(self) -> Iterator[Batch]:
        n = len(self.dataset)
        epoch = self._epoch
        self._epoch += 1
        # The per-epoch permutation is computed once up front (not per batch);
        # unshuffled epochs skip it entirely and slice contiguous views.
        if self.shuffle:
            if self.seed is not None:
                generator = np.random.default_rng((self.seed, epoch))
            else:
                generator = get_rng()
            indices = generator.permutation(n)
        else:
            indices = None
        source = getattr(self.dataset, "column_source", None)
        if source is not None:
            source = source()
        if source is not None:
            columns, rows = source
            if rows is not None:
                # Compose the subset/row mapping with the epoch order; only
                # integer index arrays are combined, never column data.
                indices = rows if indices is None else np.asarray(rows)[indices]
            return self._column_batches(columns, n, indices)
        return self._batches(np.arange(n) if indices is None else indices)

    def _column_batches(
        self, columns: Dict[str, np.ndarray], n: int, indices: Optional[np.ndarray]
    ) -> Iterator[Batch]:
        """Vectorised batching over a columnar dataset.

        Each batch field is produced by one numpy slice: a zero-copy
        contiguous view when the dataset is dense and unshuffled, a single
        fancy-indexed copy (O(batch), never O(dataset)) otherwise — no
        per-example python loop, no per-example dicts.  The batch values
        are byte-identical to the stacked fallback path.  View batches are
        marked read-only: they alias the dataset's backing arrays, and an
        in-place write would otherwise corrupt the dataset for every later
        epoch.
        """
        names = list(columns)
        for start in range(0, n, self.batch_size):
            stop = min(start + self.batch_size, n)
            if self.drop_last and stop - start < self.batch_size:
                break
            if indices is None:
                arrays = {}
                for name in names:
                    view = columns[name][start:stop]
                    view.flags.writeable = False
                    arrays[name] = view
                yield Batch(arrays)
            else:
                chunk = indices[start:stop]
                yield Batch({name: columns[name][chunk] for name in names})

    def _batches(self, indices: np.ndarray) -> Iterator[Batch]:
        """Fallback batching for map-style datasets without column_source()."""
        n = len(indices)
        names: Optional[list] = None
        for start in range(0, n, self.batch_size):
            chunk = indices[start:start + self.batch_size]
            if self.drop_last and len(chunk) < self.batch_size:
                break
            examples = [self.dataset[int(i)] for i in chunk]
            if names is None:
                names = list(examples[0])
            stacked = {
                name: np.stack([np.asarray(example[name]) for example in examples])
                for name in names
            }
            yield Batch(stacked)
