"""Neural-network module library built on :mod:`repro.autograd`.

The API deliberately mirrors ``torch.nn`` where reasonable (Module,
Parameter, Linear, LayerNorm, ...) so the reproduction code reads like the
PyTorch code the paper used.
"""

from repro.nn.parameter import Parameter
from repro.nn.module import Module
from repro.nn.container import Sequential, ModuleList
from repro.nn.linear import Linear
from repro.nn.activations import ReLU, GELU, Tanh, Sigmoid
from repro.nn.normalization import LayerNorm
from repro.nn.dropout import Dropout
from repro.nn.embedding import Embedding
from repro.nn.attention import MultiHeadSelfAttention
from repro.nn.transformer import TransformerEncoderLayer, TransformerEncoder
from repro.nn.losses import CrossEntropyLoss, MSELoss
from repro.nn import init

__all__ = [
    "Parameter",
    "Module",
    "Sequential",
    "ModuleList",
    "Linear",
    "ReLU",
    "GELU",
    "Tanh",
    "Sigmoid",
    "LayerNorm",
    "Dropout",
    "Embedding",
    "MultiHeadSelfAttention",
    "TransformerEncoderLayer",
    "TransformerEncoder",
    "CrossEntropyLoss",
    "MSELoss",
    "init",
]
