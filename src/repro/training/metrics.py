"""Training metrics."""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List

import numpy as np


def accuracy_from_logits(logits: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 accuracy for (N, C) logits against integer labels."""
    predictions = np.asarray(logits).argmax(axis=-1)
    labels = np.asarray(labels)
    if predictions.shape != labels.shape:
        raise ValueError(
            f"prediction shape {predictions.shape} does not match labels {labels.shape}"
        )
    return float((predictions == labels).mean())


class MetricTracker:
    """Accumulates scalar metrics and reports per-epoch means."""

    def __init__(self) -> None:
        self._values: Dict[str, List[float]] = defaultdict(list)
        self.history: List[Dict[str, float]] = []

    def update(self, **metrics: float) -> None:
        for name, value in metrics.items():
            self._values[name].append(float(value))

    def mean(self, name: str) -> float:
        values = self._values.get(name)
        if not values:
            raise KeyError(f"no values recorded for metric {name!r}")
        return float(np.mean(values))

    def end_epoch(self) -> Dict[str, float]:
        """Snapshot the epoch means, clear accumulators, and return the snapshot."""
        snapshot = {name: float(np.mean(values)) for name, values in self._values.items()}
        self.history.append(snapshot)
        self._values.clear()
        return snapshot

    def latest(self) -> Dict[str, float]:
        if not self.history:
            raise ValueError("no completed epochs")
        return self.history[-1]
