"""Tests for the Module system, Parameter registration, and containers."""

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor


class TinyNet(nn.Module):
    def __init__(self):
        super().__init__()
        self.fc1 = nn.Linear(4, 8, rng=np.random.default_rng(0))
        self.fc2 = nn.Linear(8, 2, rng=np.random.default_rng(1))

    def forward(self, x):
        return self.fc2(self.fc1(x).relu())


class TestModuleRegistration:
    def test_parameters_discovered_recursively(self):
        net = TinyNet()
        names = [name for name, _ in net.named_parameters()]
        assert "fc1.weight" in names
        assert "fc1.bias" in names
        assert "fc2.weight" in names
        assert len(names) == 4

    def test_num_parameters(self):
        net = TinyNet()
        assert net.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2

    def test_children_and_named_modules(self):
        net = TinyNet()
        assert len(list(net.children())) == 2
        module_names = dict(net.named_modules())
        assert "fc1" in module_names and "fc2" in module_names

    def test_register_module_explicit(self):
        net = nn.Module()
        net.register_module("layer0", nn.Linear(2, 2))
        assert "layer0" in dict(net.named_modules())

    def test_setattr_non_module_value(self):
        net = TinyNet()
        net.some_flag = True
        assert net.some_flag is True
        assert "some_flag" not in dict(net.named_parameters())


class TestStateDict:
    def test_state_dict_roundtrip(self):
        net1, net2 = TinyNet(), TinyNet()
        net2.fc1.weight.data += 1.0
        net2.load_state_dict(net1.state_dict())
        assert np.allclose(net1.fc1.weight.data, net2.fc1.weight.data)

    def test_state_dict_is_a_copy(self):
        net = TinyNet()
        state = net.state_dict()
        state["fc1.weight"][:] = 99.0
        assert not np.allclose(net.fc1.weight.data, 99.0)

    def test_load_strict_rejects_missing_keys(self):
        net = TinyNet()
        state = net.state_dict()
        state.pop("fc1.bias")
        with pytest.raises(KeyError):
            net.load_state_dict(state)

    def test_load_non_strict_ignores_extras(self):
        net = TinyNet()
        state = net.state_dict()
        state["unknown.weight"] = np.zeros((1,))
        net.load_state_dict(state, strict=False)

    def test_load_rejects_shape_mismatch(self):
        net = TinyNet()
        state = net.state_dict()
        state["fc1.weight"] = np.zeros((3, 3))
        with pytest.raises(ValueError):
            net.load_state_dict(state, strict=False)


class TestTrainEvalAndGrad:
    def test_train_eval_propagates(self):
        net = nn.Sequential(nn.Linear(4, 4), nn.Dropout(0.5))
        net.eval()
        assert all(not m.training for _, m in net.named_modules())
        net.train()
        assert all(m.training for _, m in net.named_modules())

    def test_zero_grad_clears_all(self):
        net = TinyNet()
        out = net(Tensor(np.ones((2, 4), dtype=np.float32))).sum()
        out.backward()
        assert any(p.grad is not None for p in net.parameters())
        net.zero_grad()
        assert all(p.grad is None for p in net.parameters())

    def test_repr_nested(self):
        text = repr(TinyNet())
        assert "TinyNet" in text and "Linear" in text


class TestSequential:
    def test_forward_chains_layers(self):
        model = nn.Sequential(nn.Linear(3, 5, rng=np.random.default_rng(0)), nn.ReLU(),
                              nn.Linear(5, 2, rng=np.random.default_rng(1)))
        out = model(Tensor(np.ones((4, 3), dtype=np.float32)))
        assert out.shape == (4, 2)

    def test_len_iter_getitem(self):
        model = nn.Sequential(nn.Linear(3, 3), nn.ReLU())
        assert len(model) == 2
        assert isinstance(model[1], nn.ReLU)
        assert len(list(iter(model))) == 2

    def test_slice_returns_sequential(self):
        model = nn.Sequential(nn.Linear(3, 3), nn.ReLU(), nn.Linear(3, 2))
        head = model[:2]
        assert isinstance(head, nn.Sequential)
        assert len(head) == 2

    def test_append(self):
        model = nn.Sequential()
        model.append(nn.Linear(2, 2)).append(nn.ReLU())
        assert len(model) == 2
        assert model.num_parameters() > 0


class TestModuleList:
    def test_registration_and_indexing(self):
        layers = nn.ModuleList(nn.Linear(2, 2) for _ in range(3))
        assert len(layers) == 3
        assert isinstance(layers[0], nn.Linear)
        parent = nn.Module()
        parent.layers = layers
        assert len(list(parent.parameters())) == 6

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            nn.ModuleList([nn.Linear(2, 2)])(None)
