"""Plain-text table formatting for benchmark and experiment reports."""

from __future__ import annotations

from typing import Iterable, Sequence


def _stringify(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000 or magnitude < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = "") -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table.

    Used by the benchmark harness to print the rows/series each paper table
    or figure reports.
    """
    str_rows = [[_stringify(cell) for cell in row] for row in rows]
    headers = [str(h) for h in headers]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns: {row}"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(headers))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(render_row(row) for row in str_rows)
    return "\n".join(lines)
