"""The :class:`ShardableModel` interface.

A shardable model is an ordered sequence of *blocks*.  Hydra's sharding layer
groups consecutive blocks into shards; the real training engines execute
blocks one at a time (possibly interleaved with blocks of other models),
and the simulator schedules per-block cost estimates.  The only contract is
that running blocks 0..N-1 in order, threading the returned state through,
is exactly equivalent to calling ``forward``.
"""

from __future__ import annotations

from typing import Any, List, Optional

import numpy as np

from repro.autograd.tensor import Tensor, no_grad
from repro.data.dataloader import Batch
from repro.nn.module import Module
from repro.profiling.cost_model import ModelProfile


class ShardableModel(Module):
    """Base class for models that can be split into sequential blocks."""

    #: name used in profiles, schedules and experiment reports
    model_name: str = "model"

    # ------------------------------------------------------------------ #
    # Block interface
    # ------------------------------------------------------------------ #
    def block_modules(self) -> List[Module]:  # pragma: no cover - interface
        """Return the ordered list of block modules."""
        raise NotImplementedError

    def num_blocks(self) -> int:
        return len(self.block_modules())

    def run_block(self, index: int, state: Any, batch: Batch) -> Any:  # pragma: no cover
        """Run block ``index``.

        ``state`` is ``None`` for the first block (which reads its inputs
        from ``batch``) and otherwise whatever the previous block returned.
        """
        raise NotImplementedError

    def compute_loss(self, outputs: Any, batch: Batch) -> Tensor:  # pragma: no cover
        """Compute the scalar training loss from the final block's outputs."""
        raise NotImplementedError

    def predict(self, outputs: Any) -> np.ndarray:  # pragma: no cover
        """Convert final outputs into hard predictions (for accuracy metrics)."""
        raise NotImplementedError

    def profile(self, batch_size: int = 1) -> ModelProfile:  # pragma: no cover
        """Analytical per-block cost profile (see :mod:`repro.profiling`)."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Default whole-model execution in terms of blocks
    # ------------------------------------------------------------------ #
    def forward(self, batch: Batch) -> Any:
        state: Any = None
        for index in range(self.num_blocks()):
            state = self.run_block(index, state, batch)
        return state

    def loss_on_batch(self, batch: Batch) -> Tensor:
        """Convenience: forward plus loss."""
        return self.compute_loss(self.forward(batch), batch)

    def block_parameters(self, index: int) -> List:
        """Parameters owned by block ``index`` (used for per-shard optimizers)."""
        return list(self.block_modules()[index].parameters())

    def accuracy_on_batch(self, batch: Batch, label_field: str = "label") -> float:
        """Fraction of correct hard predictions on one batch (under ``no_grad``)."""
        with no_grad():
            outputs = self.forward(batch)
        predictions = self.predict(outputs)
        labels = np.asarray(batch[label_field])
        return float((predictions == labels).mean())
