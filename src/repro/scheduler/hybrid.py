"""Hybrid shard + data parallelism (the Cerebro integration of §4.1).

Cerebro keeps data partitions pinned to workers and *hops models* between
workers so every model sees every partition once per epoch without moving
training data.  The hybrid strategy combines that idea with Hydra's shard
parallelism:

* the cluster's devices are divided into ``num_groups`` equally sized groups,
  each large enough to host one sharded model;
* each epoch is split into ``num_groups`` sub-epochs; in sub-epoch ``s``,
  model ``m`` trains on the data partition owned by group ``(m + s) mod G``;
* moving a model between groups at a sub-epoch boundary pays the cost of
  transferring its parameters over the interconnect (data never moves);
* within a group and sub-epoch, execution is shard-parallel: ready shard
  tasks of whichever models currently sit on the group interleave freely.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.cluster import Cluster
from repro.exceptions import SchedulingError
from repro.scheduler.base import ScheduleResult, Strategy
from repro.scheduler.placement import Placement
from repro.scheduler.policies import backward_first_policy
from repro.scheduler.task import ShardTask, TaskKind, TrainingJob, build_task_graph


class HybridShardDataParallelStrategy(Strategy):
    """Cerebro-style model hopping over groups of devices, shard-parallel within a group."""

    name = "hybrid-shard-data-parallel"

    def __init__(self, num_groups: Optional[int] = None, policy=None):
        super().__init__(policy=policy if policy is not None else backward_first_policy)
        self.num_groups = num_groups

    # ------------------------------------------------------------------ #
    def schedule(self, jobs: Sequence[TrainingJob], cluster: Cluster) -> ScheduleResult:
        jobs = list(jobs)
        if not jobs:
            raise SchedulingError("no jobs to schedule")

        max_shards = max(job.num_shards for job in jobs)
        num_devices = len(cluster)
        if max_shards > num_devices:
            raise SchedulingError(
                f"a job uses {max_shards} shards but the cluster only has {num_devices} devices"
            )
        num_groups = self.num_groups
        if num_groups is None:
            num_groups = max(1, num_devices // max_shards)
        group_size = num_devices // num_groups
        if group_size == 0:
            raise SchedulingError(
                f"num_groups={num_groups} is larger than the device count {num_devices}"
            )
        if group_size < max_shards:
            raise SchedulingError(
                f"groups of {group_size} devices cannot host {max_shards}-shard models; "
                "reduce num_groups or the shard count"
            )
        device_names = cluster.device_names()
        groups: List[List[str]] = [
            device_names[g * group_size:(g + 1) * group_size] for g in range(num_groups)
        ]

        placement = Placement()
        all_tasks: List[ShardTask] = []
        extra_deps: Dict[str, List[str]] = {}
        peak_demand: Dict[str, int] = {name: 0 for name in device_names}

        for model_index, job in enumerate(jobs):
            chunk_sizes = self._split_batches(job.batches_per_epoch, num_groups)
            previous_last_task: Dict[int, str] = {}
            previous_group: Optional[int] = None
            for epoch in range(job.num_epochs):
                batch_offset = 0
                for sub_epoch, chunk in enumerate(chunk_sizes):
                    if chunk == 0:
                        continue
                    group_index = (model_index + sub_epoch) % num_groups
                    group_devices = groups[group_index]
                    chunk_id = f"{job.model_id}@e{epoch}p{sub_epoch}"
                    chunk_job = TrainingJob(
                        model_id=chunk_id,
                        plan=job.plan,
                        num_epochs=1,
                        batches_per_epoch=chunk,
                        samples_per_batch=job.samples_per_batch,
                    )
                    chunk_tasks = build_task_graph(chunk_job)
                    for shard in job.plan.shards:
                        device_name = group_devices[shard.index % len(group_devices)]
                        placement.assign(chunk_id, shard.index, device_name)
                        peak_demand[device_name] = max(
                            peak_demand[device_name],
                            self._group_demand(jobs, group_size),
                        )
                    # Sequence this chunk after the model's previous chunk, and
                    # charge the parameter hop between groups.
                    if previous_last_task:
                        for task in chunk_tasks:
                            if task.kind == TaskKind.FORWARD and task.batch_index == 0:
                                prior = previous_last_task.get(task.shard_index)
                                if prior is not None:
                                    extra_deps.setdefault(task.task_id, []).append(prior)
                    if previous_group is not None and previous_group != group_index:
                        self._charge_model_hop(
                            chunk_tasks, job, placement, groups[previous_group], chunk_id
                        )
                    last_by_shard: Dict[int, str] = {}
                    for task in chunk_tasks:
                        if task.kind == TaskKind.UPDATE:
                            last_by_shard[task.shard_index] = task.task_id
                    previous_last_task = last_by_shard
                    previous_group = group_index
                    batch_offset += chunk
                    all_tasks.extend(chunk_tasks)

        sim_tasks = self.to_sim_tasks(
            all_tasks, placement, extra_deps=extra_deps, track_activation_memory=False
        )
        trace = self._simulate(cluster, sim_tasks)
        trace.peak_memory_bytes = peak_demand
        return ScheduleResult(
            strategy=self.name, trace=trace, jobs=jobs, placements=[placement]
        )

    # ------------------------------------------------------------------ #
    @staticmethod
    def _split_batches(batches_per_epoch: int, num_groups: int) -> List[int]:
        base, remainder = divmod(batches_per_epoch, num_groups)
        return [base + (1 if i < remainder else 0) for i in range(num_groups)]

    @staticmethod
    def _group_demand(jobs: Sequence[TrainingJob], group_size: int) -> int:
        """Worst-case resident demand on one device of a group (analytic estimate)."""
        per_model = max(
            max(shard.working_bytes for shard in job.plan.shards) for job in jobs
        )
        return per_model

    @staticmethod
    def _charge_model_hop(
        chunk_tasks: List[ShardTask],
        job: TrainingJob,
        placement: Placement,
        previous_group_devices: List[str],
        chunk_id: str,
    ) -> None:
        """Attach the parameter-transfer cost of hopping a model between groups.

        The hop is modelled as extra input bytes on the first forward task of
        each shard in the new chunk, sourced from the shard's previous device.
        """
        for task in chunk_tasks:
            if task.kind != TaskKind.FORWARD or task.batch_index != 0:
                continue
            shard = job.plan.shards[task.shard_index]
            source_device = previous_group_devices[task.shard_index % len(previous_group_devices)]
            task.extra_transfers.append((source_device, shard.param_bytes))
