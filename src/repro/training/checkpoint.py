"""Model checkpointing to ``.npz`` archives."""

from __future__ import annotations

from pathlib import Path
from typing import Dict

import numpy as np

from repro.exceptions import CheckpointError
from repro.nn.module import Module


def save_checkpoint(
    model: Module,
    path: str | Path,
    metadata: Dict[str, object] | None = None,
    compressed: bool = False,
) -> Path:
    """Write the model's parameters (and optional metadata) to ``path``.

    With ``compressed=True`` the archive is deflate-compressed
    (``np.savez_compressed``) — markedly smaller artifacts for the
    model-hopping and selection examples, at a modest CPU cost on save.
    ``load_checkpoint`` reads both formats transparently.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    state = model.state_dict()
    payload = {f"param::{name}": values for name, values in state.items()}
    if metadata:
        for key, value in metadata.items():
            payload[f"meta::{key}"] = np.asarray(value)
    writer = np.savez_compressed if compressed else np.savez
    writer(path, **payload)
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_checkpoint(model: Module, path: str | Path) -> Dict[str, np.ndarray]:
    """Restore parameters saved by :func:`save_checkpoint`; returns metadata."""
    path = Path(path)
    if not path.exists() and path.with_suffix(path.suffix + ".npz").exists():
        path = path.with_suffix(path.suffix + ".npz")
    if not path.exists():
        raise CheckpointError(f"checkpoint file {path} does not exist")
    archive = np.load(path, allow_pickle=False)
    state = {}
    metadata = {}
    for key in archive.files:
        if key.startswith("param::"):
            state[key[len("param::"):]] = archive[key]
        elif key.startswith("meta::"):
            metadata[key[len("meta::"):]] = archive[key]
    if not state:
        raise CheckpointError(f"checkpoint {path} contains no parameters")
    model.load_state_dict(state)
    return metadata
