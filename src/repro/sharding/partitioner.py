"""Partitioning algorithms: choosing shard boundaries.

Three strategies are provided, matching the ablation in DESIGN.md (E9):

* :func:`partition_uniform` — equal numbers of blocks per shard (the naive
  baseline most hand-rolled model-parallel scripts use).
* :func:`partition_min_max` — contiguous partition minimising the maximum
  per-shard weight (memory or compute), via binary search over the bottleneck
  value.  This is the balanced partitioner Hydra's scheduler prefers.
* :func:`partition_by_memory_limit` — the fewest shards such that every shard
  fits a device memory budget; used to answer "does this model need model
  parallelism at all, and how many ways must it split?"
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

from repro.exceptions import PartitionError
from repro.profiling.cost_model import ModelProfile
from repro.sharding.plan import ShardingPlan

_WEIGHT_KINDS = ("memory", "flops", "params")


def _block_weights(profile: ModelProfile, weight: str, batch_size: int) -> List[float]:
    if weight not in _WEIGHT_KINDS:
        raise PartitionError(f"unknown weight kind {weight!r}; expected one of {_WEIGHT_KINDS}")
    weights: List[float] = []
    for index, block in enumerate(profile.blocks):
        if weight == "memory":
            weights.append(float(profile.block_memory_bytes(index, batch_size)))
        elif weight == "flops":
            weights.append(float(block.forward_flops_per_sample * batch_size))
        else:
            weights.append(float(block.param_count))
    return weights


def partition_uniform(profile: ModelProfile, num_shards: int) -> List[Tuple[int, int]]:
    """Split blocks into ``num_shards`` contiguous groups of near-equal count."""
    num_blocks = len(profile)
    if num_shards <= 0:
        raise PartitionError(f"num_shards must be positive, got {num_shards}")
    if num_shards > num_blocks:
        raise PartitionError(
            f"cannot split {num_blocks} blocks into {num_shards} non-empty shards"
        )
    base, remainder = divmod(num_blocks, num_shards)
    boundaries = []
    start = 0
    for shard_index in range(num_shards):
        size = base + (1 if shard_index < remainder else 0)
        boundaries.append((start, start + size))
        start += size
    return boundaries


def _feasible(weights: Sequence[float], num_shards: int, limit: float) -> bool:
    """Can the weights be grouped contiguously into ``num_shards`` groups each <= limit?"""
    groups = 1
    current = 0.0
    for value in weights:
        if value > limit:
            return False
        if current + value > limit:
            groups += 1
            current = value
            if groups > num_shards:
                return False
        else:
            current += value
    return True


def partition_min_max(
    profile: ModelProfile,
    num_shards: int,
    weight: str = "memory",
    batch_size: int = 1,
) -> List[Tuple[int, int]]:
    """Contiguous partition into ``num_shards`` groups minimising the largest group.

    Solves the classic linear-partitioning problem by binary-searching the
    bottleneck weight and greedily packing blocks, then rebalancing the tail
    so exactly ``num_shards`` non-empty groups are produced.
    """
    num_blocks = len(profile)
    if num_shards <= 0:
        raise PartitionError(f"num_shards must be positive, got {num_shards}")
    if num_shards > num_blocks:
        raise PartitionError(
            f"cannot split {num_blocks} blocks into {num_shards} non-empty shards"
        )
    weights = _block_weights(profile, weight, batch_size)

    low = max(weights)
    high = sum(weights)
    while low < high:
        middle = (low + high) / 2.0
        if _feasible(weights, num_shards, middle):
            high = middle
        else:
            low = middle * (1.0 + 1e-12) if middle == low else middle
        # Guard against floating-point stagnation.
        if abs(high - low) <= 1e-9 * max(1.0, high):
            break
    limit = high

    boundaries: List[Tuple[int, int]] = []
    start = 0
    current = 0.0
    for index, value in enumerate(weights):
        remaining_blocks = num_blocks - index
        remaining_groups = num_shards - len(boundaries)
        # Force a split if otherwise there would not be enough blocks left to
        # give every remaining shard at least one block.
        must_split = index > start and remaining_blocks == remaining_groups - 0
        over_limit = index > start and current + value > limit * (1.0 + 1e-9)
        if (over_limit or must_split) and len(boundaries) < num_shards - 1 and remaining_blocks >= remaining_groups:
            boundaries.append((start, index))
            start = index
            current = 0.0
        current += value
    boundaries.append((start, num_blocks))

    if len(boundaries) != num_shards:
        # Fall back: split the largest groups until the count matches.
        boundaries = _rebalance_to_count(boundaries, weights, num_shards)
    return boundaries


def _rebalance_to_count(
    boundaries: List[Tuple[int, int]], weights: Sequence[float], num_shards: int
) -> List[Tuple[int, int]]:
    """Split the heaviest multi-block groups until there are ``num_shards`` groups."""
    boundaries = list(boundaries)
    while len(boundaries) < num_shards:
        candidates = [
            (sum(weights[start:stop]), i)
            for i, (start, stop) in enumerate(boundaries)
            if stop - start > 1
        ]
        if not candidates:
            raise PartitionError("cannot rebalance: no splittable groups remain")
        _, target = max(candidates)
        start, stop = boundaries[target]
        middle = (start + stop) // 2
        boundaries[target:target + 1] = [(start, middle), (middle, stop)]
    return boundaries


def partition_by_memory_limit(
    profile: ModelProfile,
    memory_limit_bytes: int,
    batch_size: int = 1,
) -> List[Tuple[int, int]]:
    """Smallest number of contiguous shards such that each fits the memory budget."""
    if memory_limit_bytes <= 0:
        raise PartitionError(f"memory limit must be positive, got {memory_limit_bytes}")
    weights = _block_weights(profile, "memory", batch_size)
    oversized = [i for i, value in enumerate(weights) if value > memory_limit_bytes]
    if oversized:
        names = [profile.blocks[i].name for i in oversized]
        raise PartitionError(
            f"blocks {names} individually exceed the {memory_limit_bytes}-byte budget; "
            "the model cannot be partitioned at block granularity"
        )
    boundaries: List[Tuple[int, int]] = []
    start = 0
    current = 0.0
    for index, value in enumerate(weights):
        if index > start and current + value > memory_limit_bytes:
            boundaries.append((start, index))
            start = index
            current = 0.0
        current += value
    boundaries.append((start, len(weights)))
    return boundaries


def make_plan(
    model_id: str,
    profile: ModelProfile,
    batch_size: int = 1,
    num_shards: int | None = None,
    memory_limit_bytes: int | None = None,
    strategy: str = "min_max",
    weight: str = "memory",
) -> ShardingPlan:
    """Build a :class:`ShardingPlan` using the requested partitioner.

    Exactly one of ``num_shards`` or ``memory_limit_bytes`` must be given.
    ``strategy`` selects between ``"uniform"`` and ``"min_max"`` when a shard
    count is requested.
    """
    if (num_shards is None) == (memory_limit_bytes is None):
        raise PartitionError("specify exactly one of num_shards or memory_limit_bytes")
    if memory_limit_bytes is not None:
        boundaries = partition_by_memory_limit(profile, memory_limit_bytes, batch_size)
    elif strategy == "uniform":
        boundaries = partition_uniform(profile, num_shards)
    elif strategy == "min_max":
        boundaries = partition_min_max(profile, num_shards, weight=weight, batch_size=batch_size)
    else:
        raise PartitionError(f"unknown partitioning strategy {strategy!r}")
    return ShardingPlan(
        model_id=model_id, profile=profile, boundaries=boundaries, batch_size=batch_size
    )
