"""The paper's motivating scenario: a radiologist comparing many model configurations.

Run with:  python examples/xray_model_selection.py

A practitioner wants to compare dozens of configurations (architecture width,
depth, learning rate) on an image-features classification task.  The search is
embarrassingly parallel across models; Hydra's contribution is to make the
*training* side of that search efficient even when models are sharded.  This
example uses a synthetic stand-in for the X-ray feature dataset and drives:

* a grid search where every candidate is really trained on the numpy engine,
  with shard-parallel interleaving across simulated devices; and
* a successive-halving pass that prunes weak candidates early.
"""

import numpy as np

from repro.data import DataLoader, make_classification
from repro.models import FeedForwardConfig, FeedForwardNetwork
from repro.optim import Adam
from repro.selection import SearchSpace, successive_halving
from repro.sharding import partition_uniform
from repro.training import ShardParallelTrainer, Trainer
from repro.utils import format_table, seed_everything

NUM_DEVICES = 2
NUM_EPOCHS = 4


def make_dataset():
    """Synthetic stand-in for pre-extracted X-ray image features."""
    return make_classification(
        num_samples=512, num_features=64, num_classes=5,
        class_separation=1.5, noise=1.0, rng=np.random.default_rng(42),
    )


def grid_of_candidates():
    space = SearchSpace({
        "width": [32, 64, 128],
        "depth": [1, 2],
        "lr": [1e-2, 3e-3],
    })
    return list(space.grid())


def run_grid_with_shard_parallel_training(dataset) -> None:
    print("\n=== Grid search: every candidate really trained, shard-parallel ===")
    candidates = grid_of_candidates()
    trainer = ShardParallelTrainer(num_devices=NUM_DEVICES)
    eval_loader = DataLoader(dataset, batch_size=128)
    models = {}
    for index, params in enumerate(candidates):
        hidden = tuple([params["width"]] * params["depth"])
        config = FeedForwardConfig(input_dim=64, hidden_dims=hidden, num_classes=5)
        model = FeedForwardNetwork(config, seed=index)
        trial_id = f"w{params['width']}-d{params['depth']}-lr{params['lr']}"
        models[trial_id] = model
        boundaries = partition_uniform(model.profile(), min(model.num_blocks(), NUM_DEVICES))
        trainer.add_model(
            model,
            Adam(model.parameters(), lr=params["lr"]),
            DataLoader(dataset, batch_size=32, shuffle=True, seed=index),
            boundaries,
            model_id=trial_id,
        )

    reports = trainer.fit(num_epochs=NUM_EPOCHS)

    rows = []
    for trial_id, report in reports.items():
        evaluator = Trainer(models[trial_id], Adam(models[trial_id].parameters(), lr=1e-3),
                            DataLoader(dataset, batch_size=32))
        metrics = evaluator.evaluate(eval_loader)
        rows.append([trial_id, f"{report.final_loss:.4f}", f"{metrics['accuracy']:.3f}"])
    rows.sort(key=lambda row: -float(row[2]))
    print(format_table(["candidate", "train loss", "eval accuracy"], rows,
                       title=f"{len(rows)} candidates, {NUM_EPOCHS} epochs each"))
    print(f"Selected model: {rows[0][0]}")


def run_successive_halving(dataset) -> None:
    print("\n=== Successive halving: prune weak candidates early ===")
    eval_loader = DataLoader(dataset, batch_size=128)

    def train_fn(trial, num_epochs, state):
        if state is None:
            config = FeedForwardConfig(
                input_dim=64,
                hidden_dims=(int(trial.get("width")),) * int(trial.get("depth")),
                num_classes=5,
            )
            model = FeedForwardNetwork(config, seed=0)
            trainer = Trainer(
                model,
                Adam(model.parameters(), lr=float(trial.get("lr"))),
                DataLoader(dataset, batch_size=32, shuffle=True, seed=0),
                eval_loader=eval_loader,
            )
        else:
            trainer = state
        trainer.fit(num_epochs)
        metrics = trainer.evaluate()
        return {"loss": metrics["loss"], "accuracy": metrics["accuracy"]}, trainer

    space = SearchSpace({"width": [32, 64, 128], "depth": [1, 2], "lr": [1e-2, 3e-3, 1e-3]})
    result = successive_halving(space, train_fn, num_trials=8, min_epochs=1,
                                reduction_factor=2, objective="accuracy", mode="max", seed=7)
    best = result.best()
    rows = [[t.trial_id, t.hyperparameters["width"], t.hyperparameters["depth"],
             t.hyperparameters["lr"], t.epochs_trained, f"{t.metric('accuracy'):.3f}"]
            for t in result.ranked()[:5]]
    print(format_table(["trial", "width", "depth", "lr", "epochs", "accuracy"], rows,
                       title="Top 5 after successive halving"))
    print(f"Winner: {best.trial_id} with accuracy {best.metric('accuracy'):.3f}")


def main() -> None:
    seed_everything(0)
    dataset = make_dataset()
    run_grid_with_shard_parallel_training(dataset)
    run_successive_halving(dataset)


if __name__ == "__main__":
    main()
