"""Sharding plans: boundaries plus derived shard cost objects."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from repro.exceptions import PartitionError
from repro.profiling.cost_model import ModelProfile
from repro.sharding.shard import ModelShard


@dataclass
class ShardingPlan:
    """How one model is split into shards for a given batch size.

    ``boundaries`` is a list of half-open block ranges that must be
    contiguous, non-empty, and cover every block exactly once.
    """

    model_id: str
    profile: ModelProfile
    boundaries: List[Tuple[int, int]]
    batch_size: int = 1
    shards: List[ModelShard] = field(init=False)

    def __post_init__(self) -> None:
        self._check_boundaries()
        self.shards = [self._build_shard(i, rng) for i, rng in enumerate(self.boundaries)]

    def _check_boundaries(self) -> None:
        if not self.boundaries:
            raise PartitionError("a sharding plan needs at least one shard")
        if self.batch_size <= 0:
            raise PartitionError(f"batch_size must be positive, got {self.batch_size}")
        expected_start = 0
        for start, stop in self.boundaries:
            if start != expected_start:
                raise PartitionError(
                    f"shard boundaries must be contiguous: expected start {expected_start}, got {start}"
                )
            if stop <= start:
                raise PartitionError(f"empty shard range ({start}, {stop})")
            expected_start = stop
        if expected_start != len(self.profile):
            raise PartitionError(
                f"boundaries cover {expected_start} blocks but the model has {len(self.profile)}"
            )

    def _build_shard(self, index: int, block_range: Tuple[int, int]) -> ModelShard:
        start, stop = block_range
        blocks = self.profile.blocks[start:stop]
        param_count = sum(b.param_count for b in blocks)
        param_bytes = sum(b.param_bytes for b in blocks)
        optimizer_bytes = param_count * self.profile.optimizer_bytes_per_param
        activation_bytes = sum(b.activation_bytes_per_sample for b in blocks) * self.batch_size
        input_bytes = (
            self.profile.blocks[start - 1].output_bytes_per_sample * self.batch_size
            if start > 0
            else 0
        )
        output_bytes = blocks[-1].output_bytes_per_sample * self.batch_size
        forward_flops = sum(b.forward_flops_per_sample for b in blocks) * self.batch_size
        backward_flops = sum(b.backward_flops_per_sample for b in blocks) * self.batch_size
        return ModelShard(
            model_id=self.model_id,
            index=index,
            block_range=block_range,
            block_names=tuple(b.name for b in blocks),
            param_count=param_count,
            param_bytes=param_bytes,
            optimizer_bytes=optimizer_bytes,
            activation_bytes=activation_bytes,
            input_bytes=input_bytes,
            output_bytes=output_bytes,
            forward_flops=forward_flops,
            backward_flops=backward_flops,
        )

    # ------------------------------------------------------------------ #
    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @property
    def max_shard_working_bytes(self) -> int:
        return max(shard.working_bytes for shard in self.shards)

    @property
    def total_param_count(self) -> int:
        return sum(shard.param_count for shard in self.shards)

    def memory_reduction_factor(self) -> float:
        """Unsharded working memory divided by the largest shard's working memory.

        This is the quantity behind the paper's "3× reduction in per-device
        memory usage" headline for 4-way BERT-Large model parallelism.
        """
        total_working = sum(shard.working_bytes for shard in self.shards)
        return total_working / self.max_shard_working_bytes

    def shard_for_block(self, block_index: int) -> ModelShard:
        for shard in self.shards:
            start, stop = shard.block_range
            if start <= block_index < stop:
                return shard
        raise PartitionError(f"block index {block_index} outside model range")

    def __iter__(self):
        return iter(self.shards)

    def __len__(self) -> int:
        return len(self.shards)
