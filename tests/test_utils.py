"""Tests for utility modules: RNG, logging, table formatting, serialization."""

import json
import logging

import numpy as np
import pytest

from repro.utils import (
    RandomState,
    format_table,
    from_json,
    get_logger,
    get_rng,
    seed_everything,
    set_verbosity,
    temporary_seed,
    to_json,
)
from repro.utils.rng import get_seed


class TestRandomState:
    def test_same_seed_same_draws(self):
        a, b = RandomState(5), RandomState(5)
        assert np.array_equal(a.normal(size=4), b.normal(size=4))
        assert np.array_equal(a.integers(0, 10, size=4), b.integers(0, 10, size=4))

    def test_different_seeds_differ(self):
        assert not np.array_equal(RandomState(1).normal(size=8), RandomState(2).normal(size=8))

    def test_spawn_is_deterministic_and_independent(self):
        parent = RandomState(7, name="parent")
        child_a = parent.spawn("weights")
        child_b = RandomState(7, name="parent").spawn("weights")
        other = RandomState(7).spawn("dropout")
        assert child_a.seed == child_b.seed
        assert child_a.seed != other.seed
        assert "weights" in child_a.name

    def test_uniform_permutation_choice(self):
        state = RandomState(0)
        values = state.uniform(0, 1, size=10)
        assert np.all((0 <= values) & (values <= 1))
        assert sorted(state.permutation(5).tolist()) == [0, 1, 2, 3, 4]
        assert state.choice([1, 2, 3]) in (1, 2, 3)


class TestGlobalRng:
    def test_seed_everything_reproducible(self):
        seed_everything(42)
        first = get_rng().normal(size=3)
        seed_everything(42)
        second = get_rng().normal(size=3)
        assert np.array_equal(first, second)
        assert get_seed() == 42

    def test_temporary_seed_restores_previous_stream(self):
        seed_everything(1)
        get_rng().normal(size=2)
        before_state = get_rng().normal(size=2)
        seed_everything(1)
        get_rng().normal(size=2)
        with temporary_seed(99):
            get_rng().normal(size=100)
        after_state = get_rng().normal(size=2)
        assert np.array_equal(before_state, after_state)

    def test_temporary_seed_none_is_noop(self):
        seed_everything(3)
        with temporary_seed(None):
            pass
        assert get_seed() == 3


class TestLogging:
    def test_namespaced_loggers(self):
        assert get_logger().name == "repro"
        assert get_logger("scheduler").name == "repro.scheduler"

    def test_set_verbosity_accepts_string_and_int(self):
        set_verbosity("DEBUG")
        assert get_logger().level == logging.DEBUG
        set_verbosity(logging.WARNING)
        assert get_logger().level == logging.WARNING


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table(["name", "value"], [["alpha", 1], ["b", 123456]], title="Results")
        lines = text.splitlines()
        assert lines[0] == "Results"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5

    def test_float_formatting(self):
        text = format_table(["x"], [[0.000123456], [1234567.0], [0.5], [0]])
        assert "1.235e-04" in text
        assert "1.235e+06" in text
        assert "0.5" in text

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_alignment_consistent(self):
        text = format_table(["col"], [["short"], ["a-much-longer-cell"]])
        lines = text.splitlines()
        assert len(lines[0]) == len(lines[2])


class TestSerialization:
    def test_numpy_types_serialised(self):
        payload = {
            "int": np.int64(3),
            "float": np.float32(0.5),
            "bool": np.bool_(True),
            "array": np.arange(3),
        }
        parsed = json.loads(to_json(payload))
        assert parsed["int"] == 3
        assert parsed["float"] == 0.5
        assert parsed["bool"] is True
        assert parsed["array"] == [0, 1, 2]

    def test_dataclasses_serialised(self):
        from repro.profiling import linear_cost

        parsed = json.loads(to_json(linear_cost("fc", 4, 4)))
        assert parsed["name"] == "fc"
        assert parsed["param_count"] == 20

    def test_round_trip_through_file(self, tmp_path):
        path = tmp_path / "data.json"
        to_json({"a": [1, 2, 3]}, path=path)
        assert from_json(path) == {"a": [1, 2, 3]}
        assert from_json(str(path)) == {"a": [1, 2, 3]}

    def test_from_json_string(self):
        assert from_json('{"x": 1}') == {"x": 1}


class TestExceptions:
    def test_hierarchy(self):
        from repro import exceptions

        assert issubclass(exceptions.PartitionError, exceptions.ReproError)
        assert issubclass(exceptions.OutOfDeviceMemoryError, exceptions.SchedulingError)
        error = exceptions.OutOfDeviceMemoryError("gpu0", 100, 50)
        assert "gpu0" in str(error)
        assert error.requested_bytes == 100
