"""Tests for the concurrent runtime: pools, retries, faults, determinism.

Covers the ``repro.api.runtime`` subsystem (WorkerPool / AsyncTrialRunner /
ConcurrentBackend), the FailedTrial fault-tolerance path through the
TrialRunner, teardown discipline on failure paths, and callback/early-stop
semantics under concurrency.
"""

import threading
import time

import numpy as np
import pytest

from repro.api import (
    AsyncTrialRunner,
    Budget,
    Callback,
    CallbackList,
    CerebroBackend,
    ConcurrentBackend,
    Experiment,
    FunctionBackend,
    GridSearcher,
    ResumableFunctionBackend,
    RetryPolicy,
    SerialWorkerPool,
    ShardParallelBackend,
    SuccessiveHalvingSearcher,
    ThreadWorkerPool,
    TrialFault,
    TrialRunner,
    make_pool,
)
from repro.data import DataLoader, make_classification
from repro.exceptions import ConfigurationError
from repro.models import FeedForwardConfig, FeedForwardNetwork
from repro.optim import Adam
from repro.selection import ExperimentTracker, FailedTrial, SearchSpace, TrialConfig

DATASET = make_classification(
    num_samples=64, num_features=8, num_classes=3, class_separation=2.0,
    rng=np.random.default_rng(0),
)


def _build_trainable(trial):
    width = int(trial.get("width", 16))
    config = FeedForwardConfig(input_dim=8, hidden_dims=(width,), num_classes=3)
    model = FeedForwardNetwork(config, seed=0)
    optimizer = Adam(model.parameters(), lr=float(trial.get("lr", 1e-2)))
    loader = DataLoader(DATASET, batch_size=16, shuffle=True, seed=0)
    return model, optimizer, loader


def _build_hoppable(trial):
    model, optimizer, _ = _build_trainable(trial)
    return model, optimizer


# --------------------------------------------------------------------- #
# Worker pools
# --------------------------------------------------------------------- #
class TestWorkerPools:
    def test_make_pool_one_worker_is_serial(self):
        assert make_pool(1).kind == "serial"
        assert make_pool(1, kind="process").kind == "serial"

    def test_make_pool_validation(self):
        with pytest.raises(ConfigurationError):
            make_pool(0)
        with pytest.raises(ConfigurationError):
            make_pool(2, kind="fiber")
        with pytest.raises(ConfigurationError):
            ThreadWorkerPool(-1)

    def test_serial_pool_runs_inline_and_captures_exceptions(self):
        pool = SerialWorkerPool()
        assert pool.submit(lambda: 42).result() == 42
        future = pool.submit(lambda: 1 / 0)
        with pytest.raises(ZeroDivisionError):
            future.result()

    def test_thread_pool_actually_overlaps(self):
        with make_pool(4) as pool:
            started = time.monotonic()
            futures = [pool.submit(time.sleep, 0.05) for _ in range(4)]
            for future in futures:
                future.result()
            elapsed = time.monotonic() - started
        assert elapsed < 4 * 0.05  # four sleeps overlapped, not queued

    def test_pool_context_manager_shuts_down(self):
        with make_pool(2) as pool:
            assert pool.submit(abs, -1).result() == 1
        with pytest.raises(RuntimeError):
            pool.submit(abs, -1)

    def test_explicit_serial_kind_stays_serial_at_any_size(self):
        assert make_pool(4, kind="serial").kind == "serial"

    def test_process_pool_runs_tasks_in_child_processes(self):
        import os

        with make_pool(2, kind="process") as pool:
            futures = [pool.submit(os.getpid) for _ in range(4)]
            pids = {future.result(timeout=60) for future in futures}
        assert os.getpid() not in pids  # truly out-of-process
        assert 1 <= len(pids) <= 2  # persistent children, one per slot

    def test_process_pool_shutdown_reaps_children(self):
        import multiprocessing

        pool = make_pool(2, kind="process")
        assert pool.submit(abs, -1).result(timeout=60) == 1
        pool.shutdown()
        alive = [
            child for child in multiprocessing.active_children()
            if child.name.startswith("repro-pool-worker")
        ]
        assert alive == []


# --------------------------------------------------------------------- #
# Retry policy + async runner
# --------------------------------------------------------------------- #
class TestAsyncTrialRunner:
    def test_retry_policy_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_seconds=-0.1)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_multiplier=0.5)
        with pytest.raises(ConfigurationError):
            RetryPolicy(timeout_seconds=0)

    def test_backoff_schedule(self):
        policy = RetryPolicy(max_retries=3, backoff_seconds=0.1, backoff_multiplier=2.0)
        assert policy.delay(1) == pytest.approx(0.1)
        assert policy.delay(2) == pytest.approx(0.2)
        assert policy.delay(3) == pytest.approx(0.4)

    def test_flaky_task_retries_then_succeeds(self):
        attempts = {}

        def task(handle):
            attempts[handle.trial_id] = attempts.get(handle.trial_id, 0) + 1
            if attempts[handle.trial_id] < 2:
                raise RuntimeError("transient")
            return "ok"

        runner = AsyncTrialRunner(
            make_pool(2), RetryPolicy(max_retries=2, backoff_seconds=0.0)
        )
        handles = [TrialConfig(trial_id=f"t{i}", hyperparameters={}) for i in range(3)]
        outcomes = runner.run_cohort(task, handles)
        assert all(outcome == "ok" for outcome in outcomes.values())
        assert all(count == 2 for count in attempts.values())

    def test_exhausted_retries_become_fault_not_exception(self):
        def task(handle):
            raise ValueError("permanent")

        runner = AsyncTrialRunner(
            make_pool(2), RetryPolicy(max_retries=1, backoff_seconds=0.0)
        )
        handles = [TrialConfig(trial_id="t0", hyperparameters={})]
        outcomes = runner.run_cohort(task, handles)
        fault = outcomes["t0"]
        assert isinstance(fault, TrialFault)
        assert "permanent" in fault.error and fault.attempts == 2
        assert not fault.timed_out

    def test_straggler_deadline_faults_without_blocking_cohort(self):
        def task(handle):
            if handle.trial_id == "slow":
                time.sleep(0.5)
            return "ok"

        runner = AsyncTrialRunner(make_pool(4), RetryPolicy(timeout_seconds=0.1))
        handles = [
            TrialConfig(trial_id=name, hyperparameters={})
            for name in ("a", "slow", "b")
        ]
        started = time.monotonic()
        outcomes = runner.run_cohort(task, handles)
        assert time.monotonic() - started < 0.4  # did not wait out the straggler
        assert outcomes["a"] == "ok" and outcomes["b"] == "ok"
        assert isinstance(outcomes["slow"], TrialFault) and outcomes["slow"].timed_out

    def test_outcomes_keyed_in_handle_order(self):
        def task(handle):
            time.sleep(0.05 if handle.trial_id == "first" else 0.0)
            return handle.trial_id

        runner = AsyncTrialRunner(make_pool(2))
        handles = [
            TrialConfig(trial_id=name, hyperparameters={}) for name in ("first", "second")
        ]
        outcomes = runner.run_cohort(task, handles)
        # "second" completes first, but the map is in handle order.
        assert list(outcomes) == ["first", "second"]


# --------------------------------------------------------------------- #
# ConcurrentBackend through the Experiment API
# --------------------------------------------------------------------- #
class TestConcurrentBackend:
    def test_wraps_resumability_of_inner_backend(self):
        one_shot = ConcurrentBackend(FunctionBackend(lambda t, e: {"loss": 0.0}), workers=2)
        resumable = ConcurrentBackend(
            ResumableFunctionBackend(lambda t, e, s: ({"loss": 0.0}, s)), workers=2
        )
        try:
            assert not one_shot.resumable
            assert resumable.resumable
            assert one_shot.name == "concurrent(function)"
        finally:
            one_shot.close()
            resumable.close()

    def test_identical_ranking_serial_vs_pooled_real_training(self):
        experiment = Experiment(
            space=SearchSpace({"width": [16, 32], "lr": [1e-2, 1e-3]}),
            searcher="grid",
            objective="loss",
            budget=Budget(epochs_per_trial=2),
        )
        serial = experiment.run(
            backend=ShardParallelBackend(builder=_build_trainable, num_devices=2)
        )
        pooled = experiment.run(
            backend=ShardParallelBackend(builder=_build_trainable, num_devices=2),
            workers=4,
        )
        # Bit-identical losses: each model's own update sequence is unchanged.
        assert [t.metrics for t in serial.trials] == [t.metrics for t in pooled.trials]
        assert [t.trial_id for t in serial.ranked()] == [
            t.trial_id for t in pooled.ranked()
        ]

    def test_failed_trial_recorded_not_raised(self):
        def boom(trial, epochs):
            if trial.get("x") == 2:
                raise RuntimeError("engine crashed")
            return {"loss": float(trial.get("x"))}

        result = Experiment(
            space=SearchSpace({"x": [1, 2, 3]}), searcher="grid", objective="loss",
        ).run(backend=FunctionBackend(boom), workers=2)
        assert len(result) == 3  # failure kept in the trial list
        failures = result.failures
        assert len(failures) == 1 and isinstance(failures[0], FailedTrial)
        assert failures[0].trial_id == "grid-1"
        assert "engine crashed" in failures[0].error
        # Ranking and best() are over the survivors only.
        assert [t.trial_id for t in result.ranked()] == ["grid-0", "grid-2"]
        assert result.best().trial_id == "grid-0"

    def test_retries_recover_transient_failures(self):
        attempts = {}

        def flaky(trial, epochs):
            attempts[trial.trial_id] = attempts.get(trial.trial_id, 0) + 1
            if attempts[trial.trial_id] == 1:
                raise RuntimeError("transient")
            return {"loss": 0.0}

        result = Experiment(
            space=SearchSpace({"x": [1, 2]}), searcher="grid", objective="loss",
        ).run(
            backend=FunctionBackend(flaky),
            workers=2,
            retry=RetryPolicy(max_retries=1, backoff_seconds=0.0),
        )
        assert not result.failures
        assert all(count == 2 for count in attempts.values())

    def test_failed_trial_not_resumed_by_multirung_searcher(self):
        def boom(trial, epochs, state):
            if trial.trial_id == "sha-0":
                raise RuntimeError("dead on arrival")
            epochs_done = (state or 0) + epochs
            return {"loss": 1.0 / epochs_done}, epochs_done

        result = Experiment(
            space=SearchSpace({"x": [1, 2, 3, 4]}),
            searcher=SuccessiveHalvingSearcher(num_trials=4, seed=0),
            objective="loss",
        ).run(backend=ResumableFunctionBackend(boom), workers=2)
        failed = [t.trial_id for t in result.failures]
        assert failed.count("sha-0") == 1  # failed once, never retried in later rungs
        assert result.best().trial_id != "sha-0"

    def test_deferred_prepare_runs_in_workers_and_overlaps(self):
        prepare_threads = []

        def slow_build(trial):
            prepare_threads.append(threading.get_ident())
            time.sleep(0.05)
            return _build_trainable(trial)

        backend = ShardParallelBackend(builder=slow_build, num_devices=2)
        started = time.monotonic()
        result = Experiment(
            space=SearchSpace({"width": [16, 32], "lr": [1e-2, 1e-3]}),
            searcher="grid",
            objective="loss",
        ).run(backend=backend, workers=4)
        elapsed = time.monotonic() - started
        assert len(result) == 4
        # Four 0.05s prepares off the caller's thread, overlapped.
        assert threading.get_ident() not in prepare_threads
        assert elapsed < 4 * 0.05 + 1.0

    def test_inner_state_torn_down_after_run(self):
        torn_down = []

        class _Tracking(FunctionBackend):
            def teardown(self, handle):
                torn_down.append(handle.trial_id)
                super().teardown(handle)

        Experiment(
            space=SearchSpace({"x": [1, 2]}), searcher="grid", objective="loss",
        ).run(backend=_Tracking(lambda t, e: {"loss": 0.0}), workers=2)
        assert sorted(torn_down) == ["grid-0", "grid-1"]

    def test_failed_trial_inner_state_torn_down(self):
        torn_down = []

        class _Tracking(FunctionBackend):
            def teardown(self, handle):
                torn_down.append(handle.trial_id)
                super().teardown(handle)

        def boom(trial, epochs):
            raise RuntimeError("always fails")

        result = Experiment(
            space=SearchSpace({"x": [1]}), searcher="grid", objective="loss",
        ).run(backend=_Tracking(boom), workers=2)
        assert [t.trial_id for t in result.failures] == ["grid-0"]
        assert torn_down == ["grid-0"]

    def test_caller_supplied_pool_is_not_shut_down(self):
        pool = ThreadWorkerPool(2)
        try:
            backend = ConcurrentBackend(
                FunctionBackend(lambda t, e: {"loss": 0.0}), pool=pool
            )
            Experiment(
                space=SearchSpace({"x": [1]}), searcher="grid", objective="loss",
            ).run(backend=backend)
            backend.close()  # no-op: the pool belongs to the caller
            assert pool.submit(abs, -5).result() == 5
        finally:
            pool.shutdown()

    def test_retry_honoured_at_one_worker(self):
        # Regression: retry used to be silently dropped unless workers > 1,
        # so the same experiment aborted at workers=1 but survived at 2+.
        attempts = {}

        def flaky(trial, epochs):
            attempts[trial.trial_id] = attempts.get(trial.trial_id, 0) + 1
            if attempts[trial.trial_id] == 1:
                raise RuntimeError("transient")
            return {"loss": 0.0}

        experiment = Experiment(
            space=SearchSpace({"x": [1, 2]}), searcher="grid", objective="loss",
        )
        result = experiment.run(
            backend=FunctionBackend(flaky),
            workers=1,
            retry=RetryPolicy(max_retries=1, backoff_seconds=0.0),
        )
        assert not result.failures and all(c == 2 for c in attempts.values())
        # retry alone implies the serial fault-tolerant runtime.
        def boom(trial, epochs):
            raise RuntimeError("permanent")

        survived = experiment.run(
            backend=FunctionBackend(boom), retry=RetryPolicy(max_retries=0)
        )
        assert len(survived.failures) == 2  # recorded, not raised

    def test_prewrapped_backend_rejects_per_call_runtime_knobs(self):
        backend = ConcurrentBackend(FunctionBackend(lambda t, e: {"loss": 0.0}), workers=2)
        experiment = Experiment(
            space=SearchSpace({"x": [1]}), searcher="grid", objective="loss",
        )
        try:
            with pytest.raises(ConfigurationError):
                experiment.run(backend=backend, workers=4)
            with pytest.raises(ConfigurationError):
                experiment.run(backend=backend, retry=RetryPolicy())
            with pytest.raises(ConfigurationError):
                # Experiment-level workers must not be silently dropped either.
                Experiment(
                    space=SearchSpace({"x": [1]}), searcher="grid",
                    objective="loss", workers=8,
                ).run(backend=backend)
            assert len(experiment.run(backend=backend)) == 1  # bare run is fine
        finally:
            backend.close()

    def test_cohort_measuring_backend_refuses_concurrency(self):
        # SimulationBackend's metrics ARE the cohort schedule; wrapping it
        # would silently change what it reports (and nothing would speed up).
        from repro.api import SimulationBackend
        from repro.models import FeedForwardConfig

        sim = SimulationBackend(
            profile_fn=lambda t: FeedForwardConfig(
                input_dim=8, hidden_dims=(16,), num_classes=3
            ).profile(),
            batches_per_epoch=1,
        )
        experiment = Experiment(
            space=SearchSpace({"x": [1, 2]}), searcher="grid",
            objective="makespan_seconds",
        )
        with pytest.raises(ConfigurationError):
            experiment.run(backend=sim, workers=2)
        with pytest.raises(ConfigurationError):
            ConcurrentBackend(sim, workers=2)
        assert len(experiment.run(backend=sim)) == 2  # unwrapped still fine

    def test_process_pool_gated_by_picklability_probe_not_wholesale(self):
        # Regression: process pools used to be rejected for *every* inner
        # backend.  The real constraint is narrower — the backend must
        # round-trip pickle to reach worker children — so the gate is now a
        # probe: lambda-carrying backends still fail (with a message naming
        # the fix), module-level-builder backends pass.
        from repro.api import ProcessWorkerPool

        pool = ProcessWorkerPool(2)
        try:
            with pytest.raises(ConfigurationError, match="process boundary"):
                ConcurrentBackend(FunctionBackend(lambda t, e: {"loss": 0.0}), pool=pool)
            picklable = ConcurrentBackend(
                ShardParallelBackend(builder=_build_trainable, num_devices=2),
                pool=pool,
            )
            picklable.close()  # the caller-supplied pool stays up
            assert pool.submit(abs, -3).result(timeout=60) == 3
        finally:
            pool.shutdown()

    def test_process_pool_trials_bit_identical_and_published(self, tmp_path):
        from repro.serving import ModelRegistry

        experiment = Experiment(
            space=SearchSpace({"width": [16, 32], "lr": [1e-2, 1e-3]}),
            searcher="grid",
            objective="loss",
            budget=Budget(epochs_per_trial=2),
        )
        serial = experiment.run(
            backend=ShardParallelBackend(builder=_build_trainable, num_devices=2)
        )
        registry = ModelRegistry(tmp_path / "registry")
        pooled = experiment.run(
            backend=ShardParallelBackend(
                builder=_build_trainable, num_devices=2, registry=registry
            ),
            workers=2,
            pool="process",
        )
        # Bit-identical: the trial round-tripped a child process through a
        # checkpoint snapshot, and no bit of its update sequence changed.
        assert [t.metrics for t in serial.trials] == [t.metrics for t in pooled.trials]
        assert [t.trial_id for t in serial.ranked()] == [
            t.trial_id for t in pooled.ranked()
        ]
        # Publish-at-retirement survived the process boundary: the parent
        # publishes each trial exactly once from its returned snapshot.
        assert sorted(registry.names()) == sorted(t.trial_id for t in pooled.trials)
        for trial in pooled.trials:
            assert registry.latest_version(trial.trial_id) == 1

    def test_resumable_searcher_across_process_cohorts(self):
        # Successive halving re-trains survivors in later rungs: each rung's
        # child must resume from the previous rung's snapshot, not restart.
        def run(**runtime):
            return Experiment(
                space=SearchSpace({"width": [16, 32], "lr": [1e-2, 1e-3]}),
                searcher=SuccessiveHalvingSearcher(num_trials=4, seed=0),
                objective="loss",
                budget=Budget(epochs_per_trial=2),
            ).run(
                backend=ShardParallelBackend(builder=_build_trainable, num_devices=2),
                **runtime,
            )

        serial = run()
        pooled = run(workers=2, pool="process")
        assert [t.metrics for t in serial.trials] == [t.metrics for t in pooled.trials]
        assert [t.epochs_trained for t in serial.trials] == [
            t.epochs_trained for t in pooled.trials
        ]

    def test_teardown_does_not_deadlock_on_saturated_pool(self):
        # Regression: teardown used to be dispatched through the pool; with
        # every slot held by abandoned stragglers, retiring the finished
        # trial deadlocked the experiment.
        def slowpoke(trial, epochs):
            if trial.get("x") > 0:
                time.sleep(0.6)
            return {"loss": float(trial.get("x"))}

        started = time.monotonic()
        result = Experiment(
            space=SearchSpace({"x": [0, 1, 2]}), searcher="grid", objective="loss",
        ).run(
            backend=FunctionBackend(slowpoke),
            workers=2,
            retry=RetryPolicy(timeout_seconds=0.15),
        )
        assert time.monotonic() - started < 0.5  # returned despite stragglers
        assert len(result.succeeded()) == 1
        assert {f.trial_id for f in result.failures} == {"grid-1", "grid-2"}

    def test_non_positive_workers_rejected(self):
        experiment = Experiment(
            space=SearchSpace({"x": [1]}), searcher="grid", objective="loss",
        )
        backend = FunctionBackend(lambda t, e: {"loss": 0.0})
        with pytest.raises(ConfigurationError):
            experiment.run(backend=backend, workers=0)
        with pytest.raises(ConfigurationError):
            experiment.run(backend=backend, workers=-2)

    def test_run_model_selection_with_workers(self):
        from repro.hydra import run_model_selection

        builders = {
            f"mlp-{width}": (
                lambda width=width: _build_trainable(
                    TrialConfig(trial_id=f"mlp-{width}", hyperparameters={"width": width})
                )
            )
            for width in (16, 32)
        }
        serial = run_model_selection(dict(builders), num_devices=2)
        pooled = run_model_selection(dict(builders), num_devices=2, workers=2)
        assert [t.metrics for t in serial.trials] == [t.metrics for t in pooled.trials]
        assert serial.best().trial_id == pooled.best().trial_id


# --------------------------------------------------------------------- #
# Cerebro hop-parallelism
# --------------------------------------------------------------------- #
class TestCerebroHopParallelism:
    def test_hop_parallel_is_bit_identical_to_serial(self):
        experiment = Experiment(
            space=SearchSpace({"width": [16, 32], "lr": [1e-2, 1e-3]}),
            searcher="grid",
            objective="loss",
            budget=Budget(epochs_per_trial=2),
        )
        serial = experiment.run(
            backend=CerebroBackend(
                DATASET, builder=_build_hoppable, num_workers=2, batch_size=16
            )
        )
        parallel_backend = CerebroBackend(
            DATASET, builder=_build_hoppable, num_workers=2, batch_size=16,
            hop_parallel=True,
        )
        try:
            parallel = experiment.run(backend=parallel_backend)
        finally:
            parallel_backend.close()
        # Each model's update order is identical, so losses match exactly.
        assert [t.metrics for t in serial.trials] == [t.metrics for t in parallel.trials]

    def test_hop_pool_is_shared_across_cohorts(self):
        backend = CerebroBackend(
            DATASET, builder=_build_hoppable, num_workers=2, batch_size=16,
            hop_parallel=True,
        )
        try:
            first = backend._pool()
            second = backend._pool()
            assert first is second
        finally:
            backend.close()
        assert backend._hop_pool is None


# --------------------------------------------------------------------- #
# Teardown discipline on failure paths (regression for the handle leak)
# --------------------------------------------------------------------- #
class TestTeardownOnFailure:
    def _runner(self, backend):
        tracker = ExperimentTracker(objective="loss", mode="min")
        return TrialRunner(
            backend, SearchSpace({"x": [1]}), Budget(epochs_per_trial=5),
            tracker, CallbackList([]),
        )

    def test_resumable_backend_crash_mid_epoch_tears_down_handles(self):
        # Regression: a ResumableFunctionBackend trial that raises mid-epoch
        # used to leak its handle (teardown only ran via Experiment.finish).
        torn_down = []

        class _Tracking(ResumableFunctionBackend):
            def teardown(self, handle):
                torn_down.append(handle.trial_id)
                super().teardown(handle)

        def crashes_second_epoch(trial, epochs, state):
            epochs_done = (state or 0) + epochs
            if epochs_done >= 2:
                raise RuntimeError("mid-epoch crash")
            return {"loss": 1.0}, epochs_done

        runner = self._runner(_Tracking(crashes_second_epoch))
        trials = [TrialConfig(trial_id="t0", hyperparameters={"x": 1})]
        # Callbacks present -> epoch stepping -> the crash happens mid-cohort.
        runner.callbacks.callbacks.append(Callback())
        with pytest.raises(RuntimeError):
            runner.run_trials(trials, 5)
        assert torn_down == ["t0"]  # torn down on the failure path itself

    def test_one_shot_backend_crash_tears_down_whole_cohort(self):
        torn_down = []

        class _Tracking(FunctionBackend):
            def teardown(self, handle):
                torn_down.append(handle.trial_id)
                super().teardown(handle)

        def boom(trial, epochs):
            raise RuntimeError("crash")

        runner = self._runner(_Tracking(boom))
        trials = [
            TrialConfig(trial_id=f"t{i}", hyperparameters={"x": 1}) for i in range(3)
        ]
        with pytest.raises(RuntimeError):
            runner.run_trials(trials, 1)
        assert sorted(torn_down) == ["t0", "t1", "t2"]

    def test_runner_context_manager_retires_leftovers(self):
        torn_down = []

        class _Tracking(FunctionBackend):
            def teardown(self, handle):
                torn_down.append(handle.trial_id)
                super().teardown(handle)

        runner = self._runner(_Tracking(lambda t, e: {"loss": 1.0}))
        with runner:
            runner.run_trials(
                [TrialConfig(trial_id="t0", hyperparameters={"x": 1})], 1
            )
            # Searcher "forgot" to retire; __exit__ must do it.
            assert torn_down == []
        assert torn_down == ["t0"]


# --------------------------------------------------------------------- #
# Callback ordering and early stopping under concurrency
# --------------------------------------------------------------------- #
class _Recorder(Callback):
    def __init__(self):
        self.events = []
        self.threads = set()

    def on_trial_start(self, trial):
        self.threads.add(threading.get_ident())
        self.events.append(f"trial_start:{trial.trial_id}")

    def on_epoch_end(self, trial, epoch, metrics):
        self.threads.add(threading.get_ident())
        self.events.append(f"epoch_end:{trial.trial_id}:{epoch}")
        return None

    def on_trial_end(self, result):
        self.threads.add(threading.get_ident())
        self.events.append(f"trial_end:{result.trial_id}")


class TestCallbacksUnderConcurrency:
    def _resumable_sleeper(self):
        def train_fn(trial, epochs, state):
            time.sleep(0.01)
            epochs_done = (state or 0) + epochs
            return {"loss": 1.0 / epochs_done}, epochs_done

        return ResumableFunctionBackend(train_fn)

    def test_event_order_is_deterministic_at_any_worker_count(self):
        def run(workers):
            recorder = _Recorder()
            Experiment(
                space=SearchSpace({"x": [1, 2, 3, 4]}),
                searcher="grid",
                objective="loss",
                budget=Budget(epochs_per_trial=2),
                callbacks=[recorder],
            ).run(backend=self._resumable_sleeper(), workers=workers)
            return recorder

        serial = run(None)
        pooled = run(4)
        assert pooled.events == serial.events  # identical order, not just set

    def test_callbacks_fire_on_the_driving_thread_only(self):
        recorder = _Recorder()
        Experiment(
            space=SearchSpace({"x": [1, 2]}),
            searcher="grid",
            objective="loss",
            budget=Budget(epochs_per_trial=2),
            callbacks=[recorder],
        ).run(backend=self._resumable_sleeper(), workers=2)
        # Workers train; callbacks observe from the experiment's own thread,
        # so user callbacks need no locking.
        assert recorder.threads == {threading.get_ident()}

    def test_stop_vote_retires_trial_without_blocking_cohort_peers(self):
        class _StopOne(Callback):
            def on_epoch_end(self, trial, epoch, metrics):
                return trial.trial_id == "grid-0" and epoch >= 1

        recorder = _Recorder()
        result = Experiment(
            space=SearchSpace({"x": [1, 2, 3]}),
            searcher="grid",
            objective="loss",
            budget=Budget(epochs_per_trial=3),
            callbacks=[_StopOne(), recorder],
        ).run(backend=self._resumable_sleeper(), workers=3)
        by_id = {t.trial_id: t for t in result.trials}
        assert by_id["grid-0"].epochs_trained == 1  # stopped after its vote
        assert by_id["grid-1"].epochs_trained == 3  # peers kept training
        assert by_id["grid-2"].epochs_trained == 3
        # The stopped trial saw no further epochs but was still retired.
        assert "epoch_end:grid-0:2" not in recorder.events
        assert "trial_end:grid-0" in recorder.events
        assert len(result) == 3  # stopped trial still ranked

    def test_early_stop_metrics_survive_concurrency(self):
        from repro.api import EarlyStopping

        result = Experiment(
            space=SearchSpace({"x": [1, 2, 3, 4]}),
            searcher="grid",
            objective="loss",
            budget=Budget(epochs_per_trial=10),
            callbacks=[EarlyStopping(monitor="loss", mode="min", threshold=0.35)],
        ).run(backend=self._resumable_sleeper(), workers=4)
        # 1/epochs hits <= 0.35 at epoch 3 for every trial, at any worker count.
        assert [t.epochs_trained for t in result.trials] == [3, 3, 3, 3]
