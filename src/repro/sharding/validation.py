"""Plan validation against device constraints."""

from __future__ import annotations

from typing import List

from repro.cluster.device import DeviceSpec
from repro.exceptions import PartitionError
from repro.sharding.plan import ShardingPlan


def validate_plan(plan: ShardingPlan, device_spec: DeviceSpec, strict: bool = True) -> List[str]:
    """Check that every shard of ``plan`` fits on a device of type ``device_spec``.

    Returns a list of human-readable problems.  With ``strict=True`` (the
    default) a non-empty problem list raises :class:`PartitionError` instead.
    """
    problems: List[str] = []
    for shard in plan.shards:
        if shard.working_bytes > device_spec.memory_bytes:
            problems.append(
                f"{shard.shard_id}: needs {shard.working_bytes / 2**30:.2f} GiB but "
                f"{device_spec.name} has {device_spec.memory_bytes / 2**30:.2f} GiB"
            )
    covered = sum(stop - start for start, stop in plan.boundaries)
    if covered != len(plan.profile):
        problems.append(
            f"plan covers {covered} blocks but the model has {len(plan.profile)}"
        )
    if strict and problems:
        raise PartitionError("; ".join(problems))
    return problems
