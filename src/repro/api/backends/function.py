"""Backends that adapt plain train functions to the backend protocol.

These exist mainly so the legacy ``grid_search``/``random_search``/
``successive_halving`` entry points (which take raw callables) run through
the same :class:`~repro.api.experiment.TrialRunner` machinery as the engine
backends — and they remain handy for tests and surrogate objectives.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.api.backend import ExecutionBackend, TrialHandle
from repro.selection.experiment import TrialConfig

#: one-shot train function: (config, num_epochs) -> metrics
TrainFn = Callable[[TrialConfig, int], Dict[str, float]]

#: resumable train function: (config, num_epochs, previous_state) -> (metrics, state)
ResumableTrainFn = Callable[[TrialConfig, int, object], Tuple[Dict[str, float], object]]


class FunctionBackend(ExecutionBackend):
    """Wraps a one-shot ``TrainFn``; each trial is trained in a single call.

    One-shot means not resumable: multi-rung searchers (successive halving)
    reject this backend, and the whole epoch budget arrives in one call.

    Example::

        backend = FunctionBackend(
            lambda trial, epochs: {"loss": float(trial.get("width")) / epochs}
        )
        Experiment(space=space, searcher="grid", backend=backend).run()
    """

    name = "function"
    resumable = False

    def __init__(self, train_fn: TrainFn):
        self.train_fn = train_fn

    def train(self, handle: TrialHandle, epochs: int) -> Dict[str, float]:
        return dict(self.train_fn(handle.trial, epochs))


class ResumableFunctionBackend(ExecutionBackend):
    """Wraps a ``ResumableTrainFn``; the opaque state lives on the handle.

    The function receives the state it last returned (``None`` on the first
    call), which makes the backend resumable — eligible for successive
    halving and per-epoch callbacks.

    Example::

        def train_fn(trial, epochs, state):
            done = (state or 0) + epochs
            return {"loss": 1.0 / done}, done

        backend = ResumableFunctionBackend(train_fn)
    """

    name = "resumable-function"
    resumable = True

    def __init__(self, train_fn: ResumableTrainFn):
        self.train_fn = train_fn

    def train(self, handle: TrialHandle, epochs: int) -> Dict[str, float]:
        metrics, state = self.train_fn(handle.trial, epochs, handle.state)
        handle.state = state
        return dict(metrics)
