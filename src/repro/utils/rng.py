"""Deterministic random-number management.

All stochastic components of the library (weight initialisation, synthetic
data generation, dropout masks, random search) draw from numpy ``Generator``
objects created here, so a single :func:`seed_everything` call makes an
entire experiment reproducible.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Optional

import numpy as np

_DEFAULT_SEED = 0
_global_rng: np.random.Generator = np.random.default_rng(_DEFAULT_SEED)
_global_seed: int = _DEFAULT_SEED


class RandomState:
    """A named, independently seeded random stream.

    Components that need isolated randomness (e.g. each model's weight
    initialisation in a selection run) construct their own ``RandomState``
    so that adding a new consumer of randomness does not perturb the draws
    seen by existing consumers.
    """

    def __init__(self, seed: int, name: str = "anonymous"):
        self.seed = int(seed)
        self.name = name
        self._rng = np.random.default_rng(self.seed)

    @property
    def generator(self) -> np.random.Generator:
        """The underlying numpy generator."""
        return self._rng

    def normal(self, loc=0.0, scale=1.0, size=None) -> np.ndarray:
        return self._rng.normal(loc=loc, scale=scale, size=size)

    def uniform(self, low=0.0, high=1.0, size=None) -> np.ndarray:
        return self._rng.uniform(low=low, high=high, size=size)

    def integers(self, low, high=None, size=None) -> np.ndarray:
        return self._rng.integers(low, high=high, size=size)

    def permutation(self, n) -> np.ndarray:
        return self._rng.permutation(n)

    def choice(self, a, size=None, replace=True, p=None):
        return self._rng.choice(a, size=size, replace=replace, p=p)

    def spawn(self, name: str) -> "RandomState":
        """Derive a child stream whose seed depends on this stream's seed and ``name``."""
        child_seed = int(np.random.SeedSequence([self.seed, _stable_hash(name)]).generate_state(1)[0])
        return RandomState(child_seed, name=f"{self.name}/{name}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomState(seed={self.seed}, name={self.name!r})"


def _stable_hash(text: str) -> int:
    """A deterministic 32-bit hash of ``text`` (Python's ``hash`` is salted)."""
    value = 2166136261
    for ch in text.encode("utf-8"):
        value = (value ^ ch) * 16777619 & 0xFFFFFFFF
    return value


def seed_everything(seed: int) -> None:
    """Reset the global RNG used by default throughout the library."""
    global _global_rng, _global_seed
    _global_seed = int(seed)
    _global_rng = np.random.default_rng(_global_seed)


def get_rng() -> np.random.Generator:
    """Return the global numpy generator."""
    return _global_rng


def get_seed() -> int:
    """Return the seed most recently passed to :func:`seed_everything`."""
    return _global_seed


@contextlib.contextmanager
def temporary_seed(seed: Optional[int]) -> Iterator[None]:
    """Context manager that temporarily reseeds the global RNG.

    Passing ``None`` is a no-op, which lets callers write
    ``with temporary_seed(maybe_seed):`` without branching.
    """
    global _global_rng, _global_seed
    if seed is None:
        yield
        return
    saved_rng, saved_seed = _global_rng, _global_seed
    seed_everything(seed)
    try:
        yield
    finally:
        _global_rng, _global_seed = saved_rng, saved_seed
