"""Optimizer base class."""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np

from repro.nn.parameter import Parameter


class Optimizer:
    """Base class: holds parameters and per-parameter state.

    ``state_bytes_per_parameter`` reports how many extra bytes of optimizer
    state each trained scalar requires (0 for plain SGD, 8 for Adam with two
    float32 moments); the cluster memory model uses this to charge optimizer
    state to the device that owns a shard.
    """

    state_bytes_per_parameter: int = 0

    def __init__(self, parameters: Iterable[Parameter], lr: float):
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = float(lr)
        self.state: Dict[int, Dict[str, np.ndarray]] = {}
        self.step_count = 0

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        """Apply one update using the gradients currently stored on the parameters."""
        self.step_count += 1
        for param in self.parameters:
            if param.grad is None:
                continue
            self._update(param, param.grad.astype(param.data.dtype))

    def _update(self, param: Parameter, grad: np.ndarray) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def _param_state(self, param: Parameter) -> Dict[str, np.ndarray]:
        return self.state.setdefault(id(param), {})

    def state_dict(self) -> Dict[str, object]:
        """Serialisable snapshot of hyper-parameters and step count."""
        return {"lr": self.lr, "step_count": self.step_count}

    def __repr__(self) -> str:
        return f"{type(self).__name__}(lr={self.lr}, params={len(self.parameters)})"
