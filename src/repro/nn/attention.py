"""Multi-head self-attention, as used in the BERT encoder blocks."""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.autograd import ops
from repro.autograd.tensor import Tensor
from repro.nn.dropout import Dropout
from repro.nn.linear import Linear
from repro.nn.module import Module


class MultiHeadSelfAttention(Module):
    """Scaled dot-product self-attention with ``num_heads`` parallel heads.

    Input and output shape: ``(batch, seq_len, hidden_size)``.  An optional
    boolean ``attention_mask`` of shape ``(batch, seq_len)`` marks valid
    (True) versus padding (False) positions.
    """

    def __init__(
        self,
        hidden_size: int,
        num_heads: int,
        dropout: float = 0.1,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        if hidden_size % num_heads != 0:
            raise ValueError(
                f"hidden_size {hidden_size} is not divisible by num_heads {num_heads}"
            )
        self.hidden_size = int(hidden_size)
        self.num_heads = int(num_heads)
        self.head_dim = self.hidden_size // self.num_heads
        self.query = Linear(hidden_size, hidden_size, rng=rng)
        self.key = Linear(hidden_size, hidden_size, rng=rng)
        self.value = Linear(hidden_size, hidden_size, rng=rng)
        self.output = Linear(hidden_size, hidden_size, rng=rng)
        self.attention_dropout = Dropout(dropout, rng=rng)

    def _split_heads(self, x: Tensor, batch: int, seq_len: int) -> Tensor:
        """(B, S, H) -> (B, heads, S, head_dim)."""
        return x.reshape(batch, seq_len, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def forward(self, x: Tensor, attention_mask: Optional[np.ndarray] = None) -> Tensor:
        batch, seq_len, _ = x.shape
        q = self._split_heads(self.query(x), batch, seq_len)
        k = self._split_heads(self.key(x), batch, seq_len)
        v = self._split_heads(self.value(x), batch, seq_len)
        scale = 1.0 / math.sqrt(self.head_dim)

        mask = None
        if attention_mask is not None:
            mask = np.asarray(attention_mask, dtype=bool)
            if mask.shape != (batch, seq_len):
                raise ValueError(
                    f"attention_mask shape {mask.shape} does not match (batch, seq_len)="
                    f"{(batch, seq_len)}"
                )
            if mask.all():
                # All positions valid: `where(True, scores, ...)` is the
                # identity for both values and gradients, so the mask
                # machinery can be skipped entirely.
                mask = None

        dropout_active = self.attention_dropout.p > 0.0 and self.attention_dropout.training
        if mask is None and not dropout_active:
            # Fast path: fused scaled-dot-product kernel (bit-identical to
            # the composition below, one graph node, no score stash).
            context = ops.attention_core(q, k, v, scale=scale)
        else:
            scores = q.matmul(k.transpose(0, 1, 3, 2)) * scale
            if mask is not None:
                # Broadcast to (B, 1, 1, S): every query may attend only to valid keys.
                broadcast_mask = mask[:, None, None, :]
                scores = ops.where(
                    np.broadcast_to(broadcast_mask, scores.shape), scores, scores * 0.0 - 1e9
                )
            weights = ops.softmax(scores, axis=-1)
            weights = self.attention_dropout(weights)
            context = weights.matmul(v)
        context = context.transpose(0, 2, 1, 3).reshape(batch, seq_len, self.hidden_size)
        return self.output(context)

    def __repr__(self) -> str:
        return (
            f"MultiHeadSelfAttention(hidden_size={self.hidden_size}, "
            f"num_heads={self.num_heads})"
        )
