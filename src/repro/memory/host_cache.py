"""The host-side shard store: where evicted shards live.

A :class:`HostShardCache` maps ``(model_id, shard_index)`` keys to the byte
payload of an evicted shard — its parameter arrays plus optimizer state, in
a stable order.  Payloads live in host DRAM by default; with a
``memory_limit_bytes`` and a ``spill_dir``, the oldest entries overflow to
``.npz`` archives on disk using the exact serialization that
:mod:`repro.training.checkpoint` uses for checkpoints, so a disk-tiered
shard and a checkpoint are the same format.
"""

from __future__ import annotations

import hashlib
import re
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.exceptions import ConfigurationError
from repro.training.checkpoint import load_array_bundle, save_array_bundle

ShardKey = Tuple[str, int]


def _entry_bytes(arrays: List[np.ndarray]) -> int:
    return sum(int(a.nbytes) for a in arrays)


def _file_stem(key: ShardKey) -> str:
    model_id, shard_index = key
    safe = re.sub(r"[^\w.-]", "_", model_id)
    # Sanitisation can collide ("m/1" and "m_1" both become "m_1"); a short
    # digest of the raw id keeps distinct models' archives distinct.
    digest = hashlib.sha1(model_id.encode()).hexdigest()[:8]
    return f"{safe}-{digest}__shard{shard_index}"


class HostShardCache:
    """Pinned host store for evicted shard payloads, with an optional disk tier.

    ``put`` stores *copies* of the given arrays (the device-side arrays stay
    mutable without corrupting the stash); ``take`` removes and returns the
    payload.  When ``memory_limit_bytes`` is set, entries overflow
    oldest-first to ``spill_dir`` so host DRAM usage stays bounded — the
    archives reuse :func:`repro.training.checkpoint.save_array_bundle`, i.e.
    the checkpoint ``.npz`` format.

    Example::

        cache = HostShardCache()
        cache.put(("mlp", 0), [weights, moments])
        restored = cache.take(("mlp", 0))

    Raises:
        ConfigurationError: if ``memory_limit_bytes`` is set without a
            ``spill_dir`` (nowhere to overflow), or a key is taken/dropped
            that the cache does not hold.
    """

    def __init__(
        self,
        memory_limit_bytes: Optional[int] = None,
        spill_dir: Optional[str | Path] = None,
        compressed: bool = False,
    ):
        if memory_limit_bytes is not None and memory_limit_bytes <= 0:
            raise ConfigurationError(
                f"memory_limit_bytes must be positive, got {memory_limit_bytes}"
            )
        if memory_limit_bytes is not None and spill_dir is None:
            raise ConfigurationError(
                "a memory-limited HostShardCache needs a spill_dir to overflow into"
            )
        self.memory_limit_bytes = memory_limit_bytes
        self.spill_dir = Path(spill_dir) if spill_dir is not None else None
        self.compressed = compressed
        self._memory: "OrderedDict[ShardKey, List[np.ndarray]]" = OrderedDict()
        self._disk: Dict[ShardKey, Path] = {}
        self._lock = threading.RLock()

    # ------------------------------------------------------------------ #
    @property
    def bytes_in_memory(self) -> int:
        """Bytes of shard payload currently held in host DRAM."""
        with self._lock:
            return sum(_entry_bytes(arrays) for arrays in self._memory.values())

    def keys(self) -> List[ShardKey]:
        """Every key with a stashed payload (memory tier first, then disk)."""
        with self._lock:
            return list(self._memory) + list(self._disk)

    def holds(self, key: ShardKey) -> bool:
        """Whether a payload is stashed for ``key`` (either tier)."""
        with self._lock:
            return key in self._memory or key in self._disk

    def put(self, key: ShardKey, arrays: List[np.ndarray]) -> None:
        """Stash copies of ``arrays`` under ``key``, replacing any prior stash."""
        copies = [np.array(a, copy=True) for a in arrays]
        with self._lock:
            self._drop_locked(key, missing_ok=True)
            self._memory[key] = copies
            self._overflow_locked()

    def take(self, key: ShardKey) -> List[np.ndarray]:
        """Remove and return the payload stashed under ``key``."""
        with self._lock:
            if key in self._memory:
                return self._memory.pop(key)
            if key in self._disk:
                path = self._disk.pop(key)
                bundle = load_array_bundle(path)
                path.unlink(missing_ok=True)
                return [bundle[name] for name in sorted(bundle)]
            raise ConfigurationError(f"host cache holds no payload for {key!r}")

    def drop(self, key: ShardKey) -> None:
        """Discard the payload for ``key`` (both tiers)."""
        with self._lock:
            self._drop_locked(key, missing_ok=False)

    def drop_model(self, model_id: str) -> None:
        """Discard every payload belonging to ``model_id`` (e.g. at teardown)."""
        with self._lock:
            for key in [k for k in self.keys() if k[0] == model_id]:
                self._drop_locked(key, missing_ok=True)

    # ------------------------------------------------------------------ #
    def _drop_locked(self, key: ShardKey, missing_ok: bool) -> None:
        if key in self._memory:
            del self._memory[key]
            return
        if key in self._disk:
            self._disk.pop(key).unlink(missing_ok=True)
            return
        if not missing_ok:
            raise ConfigurationError(f"host cache holds no payload for {key!r}")

    def _overflow_locked(self) -> None:
        if self.memory_limit_bytes is None:
            return
        # Even the newest entry overflows when it alone exceeds the limit —
        # the DRAM bound must hold exactly in the over-memory scenarios the
        # subsystem exists for.
        while (
            self._memory
            and sum(_entry_bytes(a) for a in self._memory.values()) > self.memory_limit_bytes
        ):
            key, arrays = self._memory.popitem(last=False)
            self.spill_dir.mkdir(parents=True, exist_ok=True)
            path = save_array_bundle(
                self.spill_dir / _file_stem(key),
                {f"arr{i:04d}": a for i, a in enumerate(arrays)},
                compressed=self.compressed,
            )
            self._disk[key] = path

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"HostShardCache({len(self._memory)} in memory, "
                f"{len(self._disk)} on disk)"
            )
