"""E8 (ablation) — task-selection policy inside the shard-parallel scheduler.

The paper does not prescribe how an idle device should choose among ready
shard tasks; this ablation compares the policies shipped with the
reproduction (FIFO, backward-first, critical-path, random) on the standard
multi-model BERT-Large workload.
"""

import pytest

from benchmarks.conftest import bert_large_jobs, print_report
from repro.scheduler import ShardParallelStrategy, get_policy

POLICIES = ("fifo", "backward_first", "critical_path", "random")
NUM_MODELS = 6
BATCHES = 3


@pytest.mark.benchmark(group="ablation-policy")
def test_policy_ablation(benchmark, paper_cluster):
    def sweep():
        results = {}
        for name in POLICIES:
            paper_cluster.reset()
            strategy = ShardParallelStrategy(policy=get_policy(name))
            results[name] = strategy.schedule(
                bert_large_jobs(NUM_MODELS, batches=BATCHES, batch_size=16), paper_cluster
            )
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    best = min(result.makespan for result in results.values())
    rows = [
        [name, f"{result.makespan:.2f}", f"{result.cluster_utilization:.3f}",
         f"{result.makespan / best:.3f}x"]
        for name, result in results.items()
    ]
    print_report(
        "Ablation — shard-parallel task-selection policy (6 BERT-Large models, 4 GPUs)",
        ["policy", "makespan_s", "utilization", "slowdown_vs_best"],
        rows,
    )

    # The default (critical-path) policy should be at least as good as FIFO and random.
    assert results["critical_path"].makespan <= results["fifo"].makespan * 1.02
    assert results["critical_path"].makespan <= results["random"].makespan * 1.02
    # All policies produce valid schedules with identical task counts.
    counts = {len(result.trace.records) for result in results.values()}
    assert len(counts) == 1
