"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.data import DataLoader, SyntheticSpanDataset, make_classification
from repro.models import BertConfig, FeedForwardConfig, FeedForwardNetwork
from repro.utils.rng import seed_everything


@pytest.fixture(autouse=True)
def _seed_global_rng():
    """Every test starts from the same global RNG state."""
    seed_everything(1234)
    yield


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(7)


@pytest.fixture
def tiny_mlp_config() -> FeedForwardConfig:
    return FeedForwardConfig.tiny(input_dim=16, num_classes=4)


@pytest.fixture
def tiny_mlp(tiny_mlp_config) -> FeedForwardNetwork:
    return FeedForwardNetwork(tiny_mlp_config, seed=3)


@pytest.fixture
def classification_data():
    return make_classification(
        num_samples=96, num_features=16, num_classes=4, rng=np.random.default_rng(11)
    )


@pytest.fixture
def classification_loader(classification_data) -> DataLoader:
    return DataLoader(classification_data, batch_size=16, shuffle=False)


@pytest.fixture
def classification_batch(classification_loader):
    return next(iter(classification_loader))


@pytest.fixture
def tiny_bert_config() -> BertConfig:
    return BertConfig.tiny(vocab_size=64, seq_len=32)


@pytest.fixture
def span_dataset() -> SyntheticSpanDataset:
    return SyntheticSpanDataset(
        num_samples=24, seq_len=32, vocab_size=64, rng=np.random.default_rng(5)
    )


@pytest.fixture
def span_batch(span_dataset):
    return next(iter(DataLoader(span_dataset, batch_size=8)))


@pytest.fixture
def four_gpu_cluster() -> Cluster:
    return Cluster.single_server(4, "v100-16gb")


@pytest.fixture
def two_gpu_cluster() -> Cluster:
    return Cluster.single_server(2, "v100-16gb")


@pytest.fixture
def bert_large_profile():
    return BertConfig.bert_large().profile(seq_len=384)


@pytest.fixture
def mlp_profile():
    return FeedForwardConfig.paper_1_2m().profile()
