"""A cluster: a named set of devices plus their interconnect."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cluster.device import Device, DeviceSpec, GPU_PRESETS
from repro.cluster.interconnect import Interconnect, INTERCONNECT_PRESETS, LinkSpec
from repro.exceptions import ConfigurationError


class Cluster:
    """The simulated training hardware.

    :meth:`single_server` builds the paper's testbed (``n`` identical GPUs on
    one PCIe server).  Device names are ``gpu0``, ``gpu1``, ... .
    """

    def __init__(self, devices: List[Device], interconnect: Optional[Interconnect] = None):
        if not devices:
            raise ConfigurationError("a cluster needs at least one device")
        names = [d.name for d in devices]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate device names in cluster: {names}")
        self.devices: List[Device] = list(devices)
        self._by_name: Dict[str, Device] = {d.name: d for d in devices}
        self.interconnect = interconnect if interconnect is not None else Interconnect()

    @classmethod
    def single_server(
        cls,
        num_devices: int = 4,
        gpu: str | DeviceSpec = "v100-16gb",
        link: str | LinkSpec = "pcie-gen3",
    ) -> "Cluster":
        """Build an ``num_devices``-GPU single-server cluster.

        The default (4 × 16 GB V100 over PCIe gen3) is the configuration the
        paper evaluates on.
        """
        if num_devices <= 0:
            raise ConfigurationError(f"num_devices must be positive, got {num_devices}")
        spec = GPU_PRESETS[gpu] if isinstance(gpu, str) else gpu
        link_spec = INTERCONNECT_PRESETS[link] if isinstance(link, str) else link
        devices = [Device(spec, name=f"gpu{i}") for i in range(num_devices)]
        return cls(devices, Interconnect(default_link=link_spec))

    # ------------------------------------------------------------------ #
    def device(self, name: str) -> Device:
        if name not in self._by_name:
            raise ConfigurationError(
                f"unknown device {name!r}; cluster has {sorted(self._by_name)}"
            )
        return self._by_name[name]

    def device_names(self) -> List[str]:
        return [d.name for d in self.devices]

    def __len__(self) -> int:
        return len(self.devices)

    @property
    def total_memory_bytes(self) -> int:
        return sum(d.spec.memory_bytes for d in self.devices)

    def reset(self) -> None:
        """Clear all device memory ledgers (between experiments)."""
        for device in self.devices:
            device.reset()

    def transfer_time(self, num_bytes: int, src: str, dst: str) -> float:
        return self.interconnect.transfer_time(num_bytes, src, dst)

    def __repr__(self) -> str:
        kinds = ", ".join(f"{d.name}:{d.spec.name}" for d in self.devices)
        return f"Cluster([{kinds}])"
