"""Latency and throughput accounting for the serving subsystem.

One :class:`LatencyStats` instance accumulates per-request latencies (and
the counters around them) behind a lock, so replica threads, the admission
path, and metric readers never race.  Percentiles are computed on demand
from the raw samples.  By default every sample is kept — serving runs here
are thousands of requests, not millions, and exact p99 beats a sketch at
that scale.  For long-lived servers, ``max_samples`` caps memory with
reservoir sampling (Vitter's Algorithm R, deterministic seed): below the
cap behaviour is bit-identical to the unbounded default; above it, each
sample survives with probability ``max_samples / n`` so percentiles stay
an unbiased estimate of the full history while the counters remain exact.

:class:`ServerStats` is the fleet-level aggregation the
:class:`~repro.serving.router.FleetRouter` reports through: one fleet-wide
:class:`LatencyStats` plus one per model, fed together so a single request
lands in both its model's distribution and the fleet's.
"""

from __future__ import annotations

import random
import threading
import time
from typing import Dict, List, Optional

import numpy as np

#: the latency percentiles every report carries, in order
PERCENTILES = (50.0, 95.0, 99.0)


def latency_summary(latencies_seconds: List[float]) -> Dict[str, float]:
    """p50/p95/p99/mean of a latency sample, in milliseconds.

    Empty samples yield zeros (a server that has answered nothing has no
    latency distribution to report, and callers prefer a well-formed dict
    over an exception in that window).
    """
    if not latencies_seconds:
        return {
            "latency_p50_ms": 0.0,
            "latency_p95_ms": 0.0,
            "latency_p99_ms": 0.0,
            "latency_mean_ms": 0.0,
        }
    values = np.asarray(latencies_seconds, dtype=np.float64) * 1e3
    p50, p95, p99 = np.percentile(values, PERCENTILES)
    return {
        "latency_p50_ms": float(p50),
        "latency_p95_ms": float(p95),
        "latency_p99_ms": float(p99),
        "latency_mean_ms": float(values.mean()),
    }


class LatencyStats:
    """Thread-safe accumulator of request outcomes and latencies.

    ``record`` takes one completed request's end-to-end latency (queue wait
    plus inference) in seconds; the failure counters classify everything
    that never produced a response.  ``snapshot`` freezes the counters and
    percentiles into a plain dict for reports and benchmarks.

    ``max_samples=None`` (default) keeps every latency sample; a positive
    cap switches to reservoir sampling so a long-lived server's footprint
    stays bounded while ``completed``/``throughput_rps`` stay exact.

    Example::

        stats = LatencyStats()
        stats.record(0.004)
        assert stats.snapshot()["completed"] == 1
    """

    def __init__(self, max_samples: Optional[int] = None) -> None:
        if max_samples is not None and max_samples <= 0:
            raise ValueError(f"max_samples must be positive, got {max_samples}")
        self._lock = threading.Lock()
        self._latencies: List[float] = []
        self._max_samples = max_samples
        # Deterministic reservoir: snapshots are reproducible under the
        # repo-wide exactness bar, and tests can assert on them.
        self._rng = random.Random(0x5EED)
        self._completed = 0
        self.rejected = 0
        self.timed_out = 0
        self.failed = 0
        self.batches = 0
        self.batch_rows = 0
        self.queue_depth_max = 0
        self._queue_depth_sum = 0
        self._queue_depth_samples = 0
        self._started = time.monotonic()

    # ------------------------------------------------------------------ #
    def record(self, latency_seconds: float) -> None:
        """Record one completed request's end-to-end latency."""
        with self._lock:
            self._completed += 1
            if self._max_samples is None or len(self._latencies) < self._max_samples:
                self._latencies.append(float(latency_seconds))
            else:
                # Algorithm R: the n-th sample replaces a reservoir slot
                # with probability max_samples / n.
                slot = self._rng.randrange(self._completed)
                if slot < self._max_samples:
                    self._latencies[slot] = float(latency_seconds)

    def count(self, *, rejected: int = 0, timed_out: int = 0, failed: int = 0) -> None:
        """Bump the failure counters (requests that produced no response)."""
        with self._lock:
            self.rejected += rejected
            self.timed_out += timed_out
            self.failed += failed

    def record_batch(self, rows: int, queue_depth: Optional[int] = None) -> None:
        """Record one executed micro-batch of ``rows`` coalesced rows.

        ``queue_depth`` is the number of requests still waiting when the
        batch was formed — the scheduler metric that, next to the batch fill,
        says whether the server is keeping up or falling behind.
        """
        with self._lock:
            self.batches += 1
            self.batch_rows += int(rows)
            if queue_depth is not None:
                depth = int(queue_depth)
                self._queue_depth_sum += depth
                self._queue_depth_samples += 1
                if depth > self.queue_depth_max:
                    self.queue_depth_max = depth

    @property
    def completed(self) -> int:
        """Number of requests that received a response (exact, not sampled)."""
        with self._lock:
            return self._completed

    # ------------------------------------------------------------------ #
    def snapshot(self, window_seconds: Optional[float] = None) -> Dict[str, float]:
        """Counters, percentiles, and throughput as one plain dict.

        ``throughput_rps`` divides completed requests by ``window_seconds``
        when given, otherwise by the time since this collector was created.
        """
        with self._lock:
            latencies = list(self._latencies)
            completed = self._completed
            elapsed = (
                float(window_seconds)
                if window_seconds is not None
                else max(time.monotonic() - self._started, 1e-9)
            )
            report: Dict[str, float] = {
                "completed": float(completed),
                "rejected": float(self.rejected),
                "timed_out": float(self.timed_out),
                "failed": float(self.failed),
                "batches": float(self.batches),
                "mean_batch_rows": (
                    self.batch_rows / self.batches if self.batches else 0.0
                ),
                "queue_depth_max": float(self.queue_depth_max),
                "queue_depth_mean": (
                    self._queue_depth_sum / self._queue_depth_samples
                    if self._queue_depth_samples
                    else 0.0
                ),
                "throughput_rps": completed / elapsed,
            }
        report.update(latency_summary(latencies))
        return report


class ServerStats:
    """Two-level accounting: per-model distributions plus the fleet total.

    Every recording call names the model it belongs to; the sample lands in
    that model's :class:`LatencyStats` *and* the fleet-wide one, so
    ``snapshot()`` reports p50/p95/p99 at both granularities from one pass
    over the traffic.  Model collectors are created on first touch — the
    router registers models dynamically, and a model that never saw traffic
    still deserves a (zeroed) row in the report.

    Example::

        stats = ServerStats()
        stats.record("mlp-a", 0.004)
        snap = stats.snapshot()
        assert snap["fleet"]["completed"] == 1
        assert snap["models"]["mlp-a"]["completed"] == 1
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.fleet = LatencyStats()
        self._models: Dict[str, LatencyStats] = {}

    def for_model(self, model: str) -> LatencyStats:
        """The named model's collector (created on first use)."""
        with self._lock:
            if model not in self._models:
                self._models[model] = LatencyStats()
            return self._models[model]

    def model_names(self) -> List[str]:
        """Models with a collector, sorted."""
        with self._lock:
            return sorted(self._models)

    # ------------------------------------------------------------------ #
    def record(self, model: str, latency_seconds: float) -> None:
        """Record one completed request against its model and the fleet."""
        self.for_model(model).record(latency_seconds)
        self.fleet.record(latency_seconds)

    def count(
        self, model: str, *, rejected: int = 0, timed_out: int = 0, failed: int = 0
    ) -> None:
        """Bump failure counters on the model and the fleet together."""
        self.for_model(model).count(
            rejected=rejected, timed_out=timed_out, failed=failed
        )
        self.fleet.count(rejected=rejected, timed_out=timed_out, failed=failed)

    def record_batch(
        self, model: str, rows: int, queue_depth: Optional[int] = None
    ) -> None:
        """Record one dispatched micro-batch (scheduler metrics included).

        ``queue_depth`` is the *fleet-wide* number of requests still queued
        at dispatch; it is recorded on the fleet collector only, since a
        per-model depth at fleet-batch granularity would double count.
        """
        self.for_model(model).record_batch(rows)
        self.fleet.record_batch(rows, queue_depth=queue_depth)

    # ------------------------------------------------------------------ #
    def snapshot(self, window_seconds: Optional[float] = None) -> Dict[str, Dict]:
        """``{"fleet": {...}, "models": {name: {...}}}`` — plain dicts."""
        with self._lock:
            models = dict(self._models)
        return {
            "fleet": self.fleet.snapshot(window_seconds=window_seconds),
            "models": {
                name: stats.snapshot(window_seconds=window_seconds)
                for name, stats in sorted(models.items())
            },
        }
