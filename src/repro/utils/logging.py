"""Lightweight logging helpers.

The library logs through the standard :mod:`logging` module under the
``"repro"`` namespace; :func:`set_verbosity` configures a sensible default
handler for scripts and benchmarks without forcing a configuration on
applications that embed the library.
"""

from __future__ import annotations

import logging
import sys

_ROOT_LOGGER_NAME = "repro"
_configured = False


def get_logger(name: str = "") -> logging.Logger:
    """Return a logger under the ``repro`` namespace.

    ``get_logger("scheduler")`` returns the ``repro.scheduler`` logger;
    ``get_logger()`` returns the package root logger.
    """
    if name:
        return logging.getLogger(f"{_ROOT_LOGGER_NAME}.{name}")
    return logging.getLogger(_ROOT_LOGGER_NAME)


def set_verbosity(level: int | str = logging.INFO) -> None:
    """Attach a stderr handler to the package logger and set its level."""
    global _configured
    logger = logging.getLogger(_ROOT_LOGGER_NAME)
    if isinstance(level, str):
        level = logging.getLevelName(level.upper())
    logger.setLevel(level)
    if not _configured:
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s: %(message)s")
        )
        logger.addHandler(handler)
        _configured = True
