"""E1 — Figure 1: device idling under classic model parallelism.

The paper's Figure 1 illustrates that sharding a model across devices leaves
every device idle while it waits for its neighbour's activations/gradients.
This benchmark shards one BERT-Large fine-tuning job over the 4-GPU paper
testbed under classic model parallelism and reports the per-device
utilization plus the Gantt-style timeline summary — at most one device is
ever busy, so cluster utilization sits near 1/num_devices.
"""

import pytest

from benchmarks.conftest import bert_large_jobs, print_report
from repro.scheduler import ModelParallelStrategy


@pytest.mark.benchmark(group="figure1")
def test_figure1_model_parallel_idling(benchmark, paper_cluster):
    jobs = bert_large_jobs(num_models=1, batches=4)

    def run():
        paper_cluster.reset()
        return ModelParallelStrategy().schedule(jobs, paper_cluster)

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    per_device = result.trace.per_device_utilization()
    rows = [
        [device, f"{utilization:.3f}", f"{result.trace.busy_seconds(device):.2f}",
         f"{result.trace.idle_seconds(device):.2f}"]
        for device, utilization in per_device.items()
    ]
    rows.append(["cluster", f"{result.cluster_utilization:.3f}",
                 f"{result.trace.busy_seconds():.2f}", "-"])
    print_report(
        "Figure 1 — BERT-Large, classic model parallelism on 4x V100-16GB "
        "(per-device utilization; devices idle while waiting on neighbours)",
        ["device", "utilization", "busy_s", "idle_s"],
        rows,
    )

    # Paper shape: with 4 devices and a strictly sequential pipeline, cluster
    # utilization is near 25% and no device comes close to full utilization.
    assert result.cluster_utilization < 0.45
    assert max(per_device.values()) < 0.75
    # The work itself is spread over all four devices (that's the point of
    # model parallelism), it is just never concurrent.
    assert len([u for u in per_device.values() if u > 0]) == 4
