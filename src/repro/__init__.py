"""repro — reproduction of "Model-Parallel Model Selection for Deep Learning Systems".

The package implements Hydra-style *shard parallelism* for multi-model deep
learning training, together with every substrate the paper depends on:

* :mod:`repro.autograd` / :mod:`repro.nn` / :mod:`repro.optim` — a numpy
  deep-learning engine standing in for PyTorch.
* :mod:`repro.models`, :mod:`repro.data` — the paper's workloads (1.2 M-param
  feedforward net, BERT-style encoders, synthetic SQuAD-like span data).
* :mod:`repro.profiling`, :mod:`repro.cluster` — layer cost models and a
  discrete-event multi-GPU cluster simulator (4×16 GB V100 preset).
* :mod:`repro.sharding`, :mod:`repro.scheduler` — the paper's contribution:
  model partitioning plus the shard-parallel (Hydra) scheduler and its
  task-parallel / model-parallel baselines.
* :mod:`repro.selection`, :mod:`repro.training` — model-selection drivers
  (grid/random/ASHA, Cerebro-style model hopper) and real training engines.

See ``DESIGN.md`` for the full system inventory and experiment index.
"""

from repro.version import __version__
from repro import exceptions

__all__ = [
    "__version__",
    "exceptions",
]


#: names re-exported lazily from the declarative experiment API; kept in
#: sync with ``repro.api.__all__`` (asserted by tests/test_api.py)
_API_EXPORTS = (
    "AsyncTrialRunner",
    "Budget",
    "Callback",
    "CallbackList",
    "CerebroBackend",
    "CohortEngineBackend",
    "ConcurrentBackend",
    "EarlyStopping",
    "ExecutionBackend",
    "Experiment",
    "FixedSearcher",
    "FunctionBackend",
    "GridSearcher",
    "LoggingCallback",
    "ModelSpec",
    "ProcessReplica",
    "ProcessWorkerPool",
    "RandomSearcher",
    "ResumableFunctionBackend",
    "RetryPolicy",
    "Searcher",
    "SerialWorkerPool",
    "ShardParallelBackend",
    "SimulationBackend",
    "SuccessiveHalvingSearcher",
    "ThreadWorkerPool",
    "TrialFault",
    "TrialHandle",
    "TrialRunner",
    "TrialTimer",
    "WorkerPool",
    "make_pool",
    "make_searcher",
    "serve",
    "serve_fleet",
)


def __getattr__(name):
    """Lazily expose the facade APIs to avoid importing heavy modules eagerly."""
    if name in ("HydraSession", "HydraConfig", "run_model_selection"):
        from repro import hydra
        return getattr(hydra, name)
    if name in ("Telemetry", "NullTelemetry", "NULL_TELEMETRY"):
        from repro import telemetry
        return getattr(telemetry, name)
    if name in _API_EXPORTS:
        from repro import api
        return getattr(api, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
