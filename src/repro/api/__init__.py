"""Declarative experiment API: searchers × execution backends.

This package is the single front door for model selection (see
``DESIGN.md``).  Declare an :class:`Experiment` — search space, objective,
budget, searcher — and run it on any :class:`ExecutionBackend`:

* :class:`~repro.api.backends.SimulationBackend` — cost-model execution on
  the simulated GPU cluster under any scheduling strategy;
* :class:`~repro.api.backends.ShardParallelBackend` — real numpy-engine
  training with Hydra-style shard-parallel interleaving;
* :class:`~repro.api.backends.CerebroBackend` — real training with
  Cerebro-style model hopping over data partitions;
* :class:`~repro.api.backends.FunctionBackend` /
  :class:`~repro.api.backends.ResumableFunctionBackend` — plain callables
  (surrogate objectives, tests, legacy ``TrainFn`` shims).

Any searcher composes with any backend; callbacks observe every trial and
can stop trials early.  The :mod:`~repro.api.runtime` subsystem adds
concurrent, fault-tolerant trial execution to any backend:
``Experiment.run(backend=..., workers=N)`` fans each cohort out across a
:class:`~repro.api.runtime.WorkerPool` (see ``docs/runtime.md``).

Selection's output feeds straight into online inference: :func:`serve`
deploys a model behind a dynamically batched replica pool
(:mod:`repro.serving`), :func:`serve_fleet` deploys *every* published model
of a registry through one shared :class:`~repro.serving.FleetRouter`
(one replica pool, one memory budget — see ``docs/router.md``), and
``SelectionResult.deploy`` rebuilds an experiment's winner — weights from a
:class:`~repro.serving.ModelRegistry` — and serves it, standalone or into a
fleet (see ``docs/serving.md``).
"""

from repro.api.backend import CohortEngineBackend, ExecutionBackend, TrialHandle
from repro.api.runtime import (
    AsyncTrialRunner,
    ConcurrentBackend,
    ModelSpec,
    ProcessReplica,
    ProcessWorkerPool,
    RetryPolicy,
    SerialWorkerPool,
    ThreadWorkerPool,
    TrialFault,
    WorkerPool,
    make_pool,
)
from repro.api.backends import (
    CerebroBackend,
    FunctionBackend,
    ResumableFunctionBackend,
    ShardParallelBackend,
    SimulationBackend,
)
from repro.api.callbacks import (
    Callback,
    CallbackList,
    EarlyStopping,
    LoggingCallback,
    TrialTimer,
)
from repro.api.experiment import Budget, Experiment, TrialRunner
from repro.api.serving import serve, serve_fleet
from repro.api.searchers import (
    FixedSearcher,
    GridSearcher,
    RandomSearcher,
    Searcher,
    SuccessiveHalvingSearcher,
    make_searcher,
)

__all__ = [
    "AsyncTrialRunner",
    "Budget",
    "Callback",
    "CallbackList",
    "CerebroBackend",
    "CohortEngineBackend",
    "ConcurrentBackend",
    "EarlyStopping",
    "ExecutionBackend",
    "Experiment",
    "FixedSearcher",
    "FunctionBackend",
    "GridSearcher",
    "LoggingCallback",
    "ModelSpec",
    "ProcessReplica",
    "ProcessWorkerPool",
    "RandomSearcher",
    "ResumableFunctionBackend",
    "RetryPolicy",
    "Searcher",
    "SerialWorkerPool",
    "ShardParallelBackend",
    "SimulationBackend",
    "SuccessiveHalvingSearcher",
    "ThreadWorkerPool",
    "TrialFault",
    "TrialHandle",
    "TrialRunner",
    "TrialTimer",
    "WorkerPool",
    "make_pool",
    "make_searcher",
    "serve",
    "serve_fleet",
]
