"""Visualise device timelines: why model parallelism idles and Hydra does not.

Run with:  python examples/utilization_timeline.py

Prints a text Gantt chart of each device's activity for a 2-model BERT-Large
workload on 4 simulated GPUs under (a) classic model parallelism and (b)
Hydra's shard parallelism — a direct, inspectable rendering of the paper's
Figure 1 versus the shard-parallel alternative.
"""

from repro.cluster import Cluster, ExecutionTrace
from repro.models import BertConfig
from repro.scheduler import ModelParallelStrategy, ShardParallelStrategy, TrainingJob
from repro.sharding import make_plan
from repro.utils import format_table, seed_everything

TIMELINE_WIDTH = 88


def make_jobs(num_models: int):
    profile = BertConfig.bert_large().profile(seq_len=384)
    jobs = []
    for index in range(num_models):
        plan = make_plan(f"bert-{index}", profile, batch_size=16, num_shards=4)
        jobs.append(TrainingJob(model_id=f"bert-{index}", plan=plan, num_epochs=1,
                                batches_per_epoch=2, samples_per_batch=16))
    return jobs


def render_timeline(trace: ExecutionTrace, title: str) -> None:
    """Draw one character column per time slice; letters identify the model."""
    print(f"\n--- {title} ---")
    makespan = trace.makespan
    slice_width = makespan / TIMELINE_WIDTH
    for device in trace.device_names:
        line = []
        records = trace.records_for(device=device)
        for column in range(TIMELINE_WIDTH):
            t = (column + 0.5) * slice_width
            symbol = "."
            for record in records:
                if record.start <= t < record.end:
                    model = str(record.tags.get("model", "?"))
                    symbol = model[len("bert-")] if model.startswith("bert-") else model[0]
                    break
            line.append(symbol)
        print(f"{device}: {''.join(line)}")
    print(f"(each column = {slice_width:.3f}s, '.' = idle, digits = model index; "
          f"makespan {makespan:.1f}s)")


def main() -> None:
    seed_everything(0)
    cluster = Cluster.single_server(4, "v100-16gb")

    cluster.reset()
    model_parallel = ModelParallelStrategy().schedule(make_jobs(2), cluster)
    cluster.reset()
    shard_parallel = ShardParallelStrategy().schedule(make_jobs(2), cluster)

    render_timeline(model_parallel.trace,
                    "Classic model parallelism (Figure 1): one model at a time")
    render_timeline(shard_parallel.trace,
                    "Hydra shard parallelism: shards of both models interleaved")

    rows = []
    for result in (model_parallel, shard_parallel):
        rows.append([result.strategy, f"{result.makespan:.1f}",
                     f"{result.cluster_utilization:.2f}",
                     f"{result.throughput_samples_per_second:.1f}"])
    print()
    print(format_table(["strategy", "makespan (s)", "utilization", "samples/s"], rows))


if __name__ == "__main__":
    main()
