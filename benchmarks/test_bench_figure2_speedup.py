"""E2 — Figure 2: shard vs task vs model parallelism (schematic speedups).

The paper's Figure 2 considers 3 models of uniform-cost shards on 2 GPUs
(models fit in memory) and annotates ~33% speedup for task parallelism and
~50% for shard parallelism over classic model parallelism.  This benchmark
rebuilds exactly that schematic with the cost-model simulator and reports the
measured makespans and speedups.
"""

import pytest

from benchmarks.conftest import print_report
from repro.cluster import Cluster
from repro.profiling import ModelProfile, linear_cost
from repro.scheduler import (
    ModelParallelStrategy,
    ShardParallelStrategy,
    TaskParallelStrategy,
    TrainingJob,
)
from repro.sharding import ShardingPlan

NUM_MODELS = 3
NUM_SHARDS = 2
BLOCK_WIDTH = 8192  # keeps compute well above PCIe transfer time, as in the schematic


def schematic_jobs():
    jobs = []
    for index in range(NUM_MODELS):
        profile = ModelProfile(
            model_name=f"model-{index}",
            blocks=[linear_cost(f"b{i}", BLOCK_WIDTH, BLOCK_WIDTH) for i in range(NUM_SHARDS)],
        )
        plan = ShardingPlan(f"model-{index}", profile,
                            [(i, i + 1) for i in range(NUM_SHARDS)], batch_size=32)
        jobs.append(TrainingJob(model_id=f"model-{index}", plan=plan, num_epochs=1,
                                batches_per_epoch=1, samples_per_batch=32))
    return jobs


@pytest.mark.benchmark(group="figure2")
def test_figure2_speedup_schematic(benchmark):
    cluster = Cluster.single_server(2, "v100-16gb")
    strategies = {
        "model-parallel": ModelParallelStrategy(),
        "task-parallel": TaskParallelStrategy(),
        "shard-parallel": ShardParallelStrategy(),
    }

    def run_all():
        results = {}
        for name, strategy in strategies.items():
            cluster.reset()
            results[name] = strategy.schedule(schematic_jobs(), cluster)
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    baseline = results["model-parallel"].makespan
    rows = []
    for name, result in results.items():
        speedup = 1.0 - result.makespan / baseline
        rows.append([
            name,
            f"{result.makespan * 1e3:.3f}",
            f"{result.cluster_utilization:.2f}",
            f"{speedup * 100:.1f}%",
        ])
    print_report(
        "Figure 2 — 3 models x 2 uniform shards on 2 GPUs "
        "(paper schematic: ~33% task-parallel, ~50% shard-parallel speedup)",
        ["strategy", "makespan_ms", "utilization", "speedup_vs_model_parallel"],
        rows,
    )

    task_speedup = 1.0 - results["task-parallel"].makespan / baseline
    shard_speedup = 1.0 - results["shard-parallel"].makespan / baseline
    # Shape check: shard > task > nothing, in the ballparks the figure annotates.
    assert 0.20 <= task_speedup <= 0.45
    assert 0.35 <= shard_speedup <= 0.62
    assert shard_speedup > task_speedup
