"""E11 — hot-path overhaul: steps/sec and peak step memory, before vs after.

Measures one full optimisation step (forward, backward, optimizer update)
for the two real workloads the repo trains — the paper's ~1.2 M-parameter
MLP and a scaled-down BERT-style transformer (hidden 128, 2 layers,
sequence 128: the same shape family as the paper's BERT fine-tuning
workload) — each both unsharded and through :class:`ShardedModelExecutor`.

``BEFORE`` holds the numbers measured at the pre-overhaul commit on the
reference container (same shapes, same methodology: best wall-clock window
of repeated runs, ``tracemalloc`` peak for one step).  Each run re-measures
the current tree and asserts the overhaul's headline claim: the transformer
training step is at least ``REPRO_HOTPATH_MIN_SPEEDUP``x (default 1.5;
the committed JSON shows >= 2.5x) faster than the seed on reference-grade
hardware (strict mode: REPRO_PERF_STRICT / REPRO_PERF_CHECK /
REPRO_PERF_LONG), with a large peak-memory reduction asserted everywhere.
The committed ``benchmarks/BENCH_hotpath.json`` is only rewritten by an
explicit ``REPRO_PERF_LONG=1`` regeneration run.

Perf-regression gate (the CI ``perf`` job): with ``REPRO_PERF_CHECK=1`` an
additional test compares the freshly measured steps/sec against the
*committed* JSON's after-numbers and fails on regressions beyond
``REPRO_PERF_TOLERANCE`` (default: measured must stay above 50% of the
committed number — generous because CI hardware differs from the reference
container).  Label a PR ``skip-perf`` to skip the job for unrelated changes.
"""

from __future__ import annotations

import json
import os
import time
import tracemalloc
from pathlib import Path

import numpy as np
import pytest

from repro.data import DataLoader
from repro.data.dataset import ArrayDataset
from repro.models import BertConfig, BertForSpanPrediction, FeedForwardConfig, FeedForwardNetwork
from repro.optim import Adam
from repro.training import ShardedModelExecutor

from conftest import print_report

BENCH_PATH = Path(__file__).resolve().parent / "BENCH_hotpath.json"

MLP_BATCH = 64
BERT_BATCH = 8
BERT_SEQ = 128
BERT_VOCAB = 256

#: Pre-overhaul numbers, measured at the seed commit on the reference
#: container with this file's workloads and ``_measure`` methodology
#: (best of repeated >=3 s windows; ``tracemalloc`` peak over one step).
BEFORE = {
    "mlp_single": {"steps_per_sec": 54.87, "peak_step_bytes": 29325504},
    "mlp_sharded": {"steps_per_sec": 52.90, "peak_step_bytes": 29457088},
    "transformer_single": {"steps_per_sec": 5.04, "peak_step_bytes": 93541356},
    "transformer_sharded": {"steps_per_sec": 5.19, "peak_step_bytes": 94066308},
}

_PERF_CHECK = os.environ.get("REPRO_PERF_CHECK", "") not in ("", "0")
_PERF_LONG = os.environ.get("REPRO_PERF_LONG", "") not in ("", "0")

#: Floor asserted on the transformer speedup.  The BEFORE constants are
#: absolute numbers from the reference container, so a throughput *ratio*
#: against them only means something on comparable hardware: it is asserted
#: when REPRO_PERF_STRICT / REPRO_PERF_CHECK / REPRO_PERF_LONG is set (the
#: reference container and the CI perf job) and merely reported elsewhere;
#: the peak-memory assertions are allocation ratios and hold everywhere.
MIN_SPEEDUP = float(os.environ.get("REPRO_HOTPATH_MIN_SPEEDUP", "1.5"))
_STRICT = (
    _PERF_CHECK or _PERF_LONG
    or os.environ.get("REPRO_PERF_STRICT", "") not in ("", "0")
)

#: Fraction of the committed steps/sec the perf job requires.
PERF_TOLERANCE = float(os.environ.get("REPRO_PERF_TOLERANCE", "0.5"))


# --------------------------------------------------------------------------- #
# Workloads
# --------------------------------------------------------------------------- #
def _mlp():
    return FeedForwardNetwork(FeedForwardConfig.paper_1_2m(), seed=7)


def _mlp_batch():
    rng = np.random.default_rng(13)
    data = ArrayDataset(
        features=rng.normal(size=(MLP_BATCH, 512)).astype(np.float32),
        label=rng.integers(0, 10, size=(MLP_BATCH,)).astype(np.int64),
    )
    return next(iter(DataLoader(data, batch_size=MLP_BATCH)))


def _transformer():
    config = BertConfig(
        vocab_size=BERT_VOCAB, hidden_size=128, num_layers=2, num_heads=4,
        intermediate_size=512, max_seq_len=BERT_SEQ, dropout=0.0,
        name="bert-hotpath",
    )
    return BertForSpanPrediction(config, seed=7)


def _transformer_batch():
    rng = np.random.default_rng(13)
    data = ArrayDataset(
        input_ids=rng.integers(0, BERT_VOCAB, size=(BERT_BATCH, BERT_SEQ)).astype(np.int64),
        attention_mask=np.ones((BERT_BATCH, BERT_SEQ), dtype=bool),
        start_position=rng.integers(0, BERT_SEQ, size=(BERT_BATCH,)).astype(np.int64),
        end_position=rng.integers(0, BERT_SEQ, size=(BERT_BATCH,)).astype(np.int64),
    )
    return next(iter(DataLoader(data, batch_size=BERT_BATCH)))


def _whole_step(model, batch, optimizer):
    loss = model.loss_on_batch(batch)
    model.zero_grad()
    loss.backward()
    optimizer.step()
    return loss.item()


def _workloads():
    """name -> zero-argument step callable (fresh model + optimizer each)."""
    mlp, mlp_batch = _mlp(), _mlp_batch()
    mlp_opt = Adam(mlp.parameters(), lr=1e-3)

    mlp_sharded = _mlp()
    mlp_sharded_opt = Adam(mlp_sharded.parameters(), lr=1e-3)
    mlp_executor = ShardedModelExecutor(mlp_sharded, [(0, 2), (2, 4)])

    tf, tf_batch = _transformer(), _transformer_batch()
    tf_opt = Adam(tf.parameters(), lr=1e-4)

    tf_sharded = _transformer()
    tf_sharded_opt = Adam(tf_sharded.parameters(), lr=1e-4)
    tf_executor = ShardedModelExecutor(tf_sharded, [(0, 1), (1, 3), (3, 4)])

    return {
        "mlp_single": lambda: _whole_step(mlp, mlp_batch, mlp_opt),
        "mlp_sharded": lambda: mlp_executor.train_step(mlp_batch, mlp_sharded_opt),
        "transformer_single": lambda: _whole_step(tf, tf_batch, tf_opt),
        "transformer_sharded": lambda: tf_executor.train_step(tf_batch, tf_sharded_opt),
    }


# --------------------------------------------------------------------------- #
# Measurement
# --------------------------------------------------------------------------- #
def _measure(step, warmup: int = 2, min_seconds: float = 0.5, repeats: int = 1) -> float:
    """Best steps/sec over ``repeats`` wall-clock windows of >= ``min_seconds``."""
    best = 0.0
    for _ in range(repeats):
        for _ in range(warmup):
            step()
        count = 0
        started = time.perf_counter()
        while True:
            step()
            count += 1
            elapsed = time.perf_counter() - started
            if elapsed >= min_seconds and count >= 3:
                break
        best = max(best, count / elapsed)
    return best


def _peak_bytes(step) -> int:
    """tracemalloc peak across one step (after a warm-up step)."""
    step()
    tracemalloc.start()
    step()
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak


def _run_benchmark() -> dict:
    # The perf job pays for longer windows; the tier-1 run stays quick.
    if _PERF_CHECK or _PERF_LONG:
        kwargs = {"warmup": 2, "min_seconds": 3.0, "repeats": 3}
    else:
        kwargs = {"warmup": 2, "min_seconds": 0.5, "repeats": 1}
    results = {}
    for name, step in _workloads().items():
        results[name] = {
            "steps_per_sec": round(_measure(step, **kwargs), 2),
            "peak_step_bytes": _peak_bytes(step),
        }
    return results


# --------------------------------------------------------------------------- #
# Tests
# --------------------------------------------------------------------------- #
def test_hotpath_speedup_and_memory():
    """E11: emits BENCH_hotpath.json; asserts the overhaul's speed/memory wins."""
    after = _run_benchmark()

    rows = []
    payload = {}
    for name in BEFORE:
        before_sps = BEFORE[name]["steps_per_sec"]
        after_sps = after[name]["steps_per_sec"]
        speedup = after_sps / before_sps
        before_peak = BEFORE[name]["peak_step_bytes"]
        after_peak = after[name]["peak_step_bytes"]
        payload[name] = {
            "before_steps_per_sec": before_sps,
            "after_steps_per_sec": after_sps,
            "speedup": round(speedup, 2),
            "before_peak_step_bytes": before_peak,
            "after_peak_step_bytes": after_peak,
            "peak_memory_ratio": round(after_peak / before_peak, 3),
        }
        rows.append([
            name,
            f"{before_sps:.2f}",
            f"{after_sps:.2f}",
            f"{speedup:.2f}x",
            f"{before_peak / 2**20:.1f}",
            f"{after_peak / 2**20:.1f}",
        ])

    # The JSON is the version-controlled baseline the CI perf gate compares
    # against, so only an explicit regeneration (REPRO_PERF_LONG=1, long
    # measurement windows) may overwrite it — an ordinary tier-1 run on a
    # slow laptop must not silently lower the committed floor.
    if _PERF_LONG or not BENCH_PATH.exists():
        BENCH_PATH.write_text(
            json.dumps(
                {
                    "experiment": "E11-hotpath",
                    "workloads": payload,
                    "note": (
                        "before = seed commit on the reference container; "
                        "after = this tree.  One step = forward + backward + "
                        "Adam update at fixed shapes (MLP 1.2M params/batch 64; "
                        "transformer hidden 128/seq 128/batch 8).  Regenerate "
                        "with REPRO_PERF_LONG=1."
                    ),
                },
                indent=2,
            )
            + "\n"
        )
    print_report(
        "E11 · hot-path overhaul: training-step throughput and peak step memory",
        ["workload", "before st/s", "after st/s", "speedup",
         "before MiB", "after MiB"],
        rows,
    )

    # Headline acceptance: the transformer training step (the paper's heavy
    # workload) is >= MIN_SPEEDUP faster, sharded and unsharded.  The ratio
    # divides a local measurement by the reference container's absolute
    # steps/sec, so it is only asserted in strict mode (reference container,
    # CI perf job, regeneration runs); ordinary tier-1 runs on arbitrary
    # hardware just report it.
    if _STRICT:
        for name in ("transformer_single", "transformer_sharded"):
            assert payload[name]["speedup"] >= MIN_SPEEDUP, (
                f"{name}: {payload[name]['speedup']:.2f}x < {MIN_SPEEDUP}x"
            )
        # The MLP also gained materially on reference hardware.
        assert payload["mlp_single"]["speedup"] >= 1.1
    # Peak step memory dropped sharply on every workload — tracemalloc
    # counts allocations, so this holds on any machine.
    for name, record in payload.items():
        assert record["peak_memory_ratio"] <= 0.8, (
            f"{name}: peak memory only dropped to {record['peak_memory_ratio']:.2f}x"
        )


@pytest.mark.skipif(not _PERF_CHECK, reason="perf gate runs with REPRO_PERF_CHECK=1")
def test_no_regression_versus_committed_json():
    """CI perf gate: fresh steps/sec must stay within tolerance of the JSON."""
    committed = json.loads(BENCH_PATH.read_text())["workloads"]
    fresh = _run_benchmark()
    failures = []
    for name, record in committed.items():
        floor = record["after_steps_per_sec"] * PERF_TOLERANCE
        measured = fresh[name]["steps_per_sec"]
        if measured < floor:
            failures.append(
                f"{name}: {measured:.2f} steps/s < {floor:.2f} "
                f"({PERF_TOLERANCE:.0%} of committed {record['after_steps_per_sec']:.2f})"
            )
    assert not failures, "performance regressions: " + "; ".join(failures)
