"""Spilled execution: shard residency management with host offload.

Hydra's headline scenario — models larger than any one device, and more
models than aggregate device memory, trained at full task parallelism —
depends on *spilling*: idle shards (parameters + optimizer state) live in
host DRAM and move onto devices just in time.  This package is that
subsystem:

* :class:`DeviceArena` — a per-device byte ledger (optionally bridged to a
  simulated :class:`~repro.cluster.device.Device`);
* :class:`HostShardCache` — the pinned host store for evicted shard
  payloads, with an optional disk tier in checkpoint format;
* :class:`SpillManager` — the residency state machine (resident → evicted →
  prefetching) with pluggable eviction (:class:`LRUEvictionPolicy`,
  :class:`ScheduleAwareEvictionPolicy`);
* :class:`Prefetcher` — double-buffered async host→device transfers that
  overlap the next shard's fetch with the current shard's compute.

The real engines opt in through
``ShardedModelExecutor.bind_memory`` / ``ShardParallelTrainer(memory_manager=...)``
(or declaratively via ``Experiment.run(memory_budget=...)``); the simulator
models the same behaviour through the ``spilled-shard-parallel`` strategy.
Spilled training is bit-identical to fully-resident training — restores put
the exact bytes back — which the memory tests enforce with ``array_equal``.
See ``docs/memory.md``.
"""

from repro.memory.arena import DeviceArena
from repro.memory.host_cache import HostShardCache
from repro.memory.prefetch import Prefetcher
from repro.memory.spill import (
    EvictionPolicy,
    LRUEvictionPolicy,
    ResidencyState,
    ScheduleAwareEvictionPolicy,
    ShardResidency,
    SpillManager,
    SpillStats,
    make_eviction_policy,
)

__all__ = [
    "DeviceArena",
    "EvictionPolicy",
    "HostShardCache",
    "LRUEvictionPolicy",
    "Prefetcher",
    "ResidencyState",
    "ScheduleAwareEvictionPolicy",
    "ShardResidency",
    "SpillManager",
    "SpillStats",
    "make_eviction_policy",
]
