"""Sharded execution with exact gradient equivalence.

:class:`ShardedModelExecutor` runs one model *shard by shard*, the way a
model-parallel system would: the autograd graph is cut at every shard
boundary, shards keep their own activation stashes, and gradients are handed
across boundaries explicitly during the backward pass.  Because only the
graph structure changes — not the arithmetic — the resulting parameter
gradients are identical to whole-model backpropagation, which is the paper's
"exact replication of model training output" desideratum (D3) and what the
parity tests/benchmark verify.

:class:`ShardParallelTrainer` layers the multi-model part on top: it drives
several executors at shard-task granularity in a Hydra-like interleaved
order over a set of simulated devices, so the examples can show real
training happening under shard parallelism.

Both opt into *spilled* execution through a
:class:`~repro.memory.spill.SpillManager` (see ``docs/memory.md``): bound
executors lease each shard around every use (forward / loss / backward +
update) instead of assuming residency, announce their access schedule for
schedule-aware eviction, prefetch the next shard while the current one
computes, and apply the optimizer *per shard* while it is pinned — which is
bit-identical to a whole-model step because each parameter's update depends
only on its own gradient, state, and the shared step counter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

import numpy as np

from repro.autograd.tensor import Tensor, no_grad
from repro.data.dataloader import Batch, DataLoader
from repro.exceptions import ConfigurationError, SchedulingError
from repro.models.base import ShardableModel
from repro.optim.optimizer import Optimizer
from repro.telemetry import NULL_TELEMETRY
from repro.training.metrics import MetricTracker
from repro.training.trainer import TrainingReport

if TYPE_CHECKING:  # imported lazily at runtime to avoid an api/training cycle
    from repro.memory.spill import SpillManager


def _detach_state(state: Any) -> Any:
    """Detach a boundary state from the upstream graph, re-enabling gradients.

    Supports a single tensor or a tuple/list of tensors (non-tensor entries
    pass through unchanged, e.g. attention masks carried as numpy arrays).
    """
    if isinstance(state, Tensor):
        detached = state.detach()
        detached.requires_grad = True
        return detached
    if isinstance(state, (tuple, list)):
        return type(state)(_detach_state(item) for item in state)
    return state


def _state_tensors(state: Any) -> List[Tensor]:
    if isinstance(state, Tensor):
        return [state]
    if isinstance(state, (tuple, list)):
        tensors: List[Tensor] = []
        for item in state:
            tensors.extend(_state_tensors(item))
        return tensors
    return []


@dataclass
class _ShardContext:
    """Activation stash for one shard of one in-flight mini-batch."""

    boundary_input: Any = None
    output: Any = None


class ShardedModelExecutor:
    """Executes one shardable model as a pipeline of graph-disconnected shards."""

    def __init__(self, model: ShardableModel, boundaries: Sequence[Tuple[int, int]]):
        self.model = model
        self.boundaries = [tuple(b) for b in boundaries]
        self._validate_boundaries()
        self._contexts: List[_ShardContext] = []
        self._loss: Optional[Tensor] = None
        self._memory: Optional["SpillManager"] = None
        self._memory_optimizer: Optional[Optimizer] = None
        self._memory_model_id: Optional[str] = None
        self._advance_pending = False
        self.telemetry = NULL_TELEMETRY

    def _validate_boundaries(self) -> None:
        expected = 0
        for start, stop in self.boundaries:
            if start != expected or stop <= start:
                raise SchedulingError(
                    f"invalid shard boundaries {self.boundaries} for model "
                    f"{self.model.model_name!r}"
                )
            expected = stop
        if expected != self.model.num_blocks():
            raise SchedulingError(
                f"boundaries cover {expected} blocks but model has {self.model.num_blocks()}"
            )

    @property
    def num_shards(self) -> int:
        return len(self.boundaries)

    # ------------------------------------------------------------------ #
    # Spilled execution (opt-in)
    # ------------------------------------------------------------------ #
    def bind_memory(
        self,
        manager: "SpillManager",
        optimizer: Optional[Optimizer] = None,
        model_id: Optional[str] = None,
        device_of: Optional[Callable[[int], str]] = None,
    ) -> None:
        """Route every shard access through a spill manager.

        Registers each shard with its arena (``device_of`` maps shard index
        to arena name; default: round-robin over the manager's arenas) and
        its byte footprint — parameter bytes plus the optimizer's per-scalar
        state bytes.  From then on forward/loss/backward lease the shard
        (restoring it from host when evicted), the next shard is prefetched
        while the current one computes, and the optimizer update runs *per
        shard* inside its backward lease, so no more than one of this
        model's shards needs to be resident per device at a time.

        ``optimizer=None`` binds the executor for *inference only* (the
        serving subsystem's spilled replicas): shards carry just their
        parameter bytes, :meth:`forward_only` leases them as usual, and a
        backward pass raises instead of silently training without per-shard
        updates.
        """
        model_id = model_id if model_id is not None else self.model.model_name
        names = manager.arena_names
        if device_of is None:
            device_of = lambda shard_index: names[shard_index % len(names)]  # noqa: E731
        # ``state_bytes_per_parameter`` counts float32 scalars (4 bytes each);
        # the actual state arrays are ``zeros_like(param)``, so what matters
        # is how many param-shaped arrays the optimizer keeps — charging
        # ``count × param.nbytes`` stays honest for float64 parameters too.
        state_arrays = (
            0 if optimizer is None else (optimizer.state_bytes_per_parameter + 3) // 4
        )
        for shard_index in range(self.num_shards):
            params = self.shard_parameters(shard_index)
            nbytes = sum(p.data.nbytes for p in params) * (1 + state_arrays)
            manager.register(
                (model_id, shard_index),
                device_of(shard_index),
                nbytes,
                self._shard_arrays_fn(params, optimizer),
            )
        self._memory = manager
        self._memory_optimizer = optimizer
        self._memory_model_id = model_id

    @staticmethod
    def _shard_arrays_fn(params: List, optimizer: Optional[Optimizer]):
        """Stable-order view of a shard's live arrays (params, then state)."""

        def arrays() -> List[np.ndarray]:
            collected: List[np.ndarray] = []
            for param in params:
                collected.append(param.data)
                state = optimizer.state.get(id(param)) if optimizer is not None else None
                if state:
                    collected.extend(state[key] for key in sorted(state))
            return collected

        return arrays

    @property
    def updates_inline(self) -> bool:
        """Whether optimizer updates happen per shard inside ``run_backward``."""
        return self._memory is not None and self._memory_optimizer is not None

    def _shard_key(self, shard_index: int) -> Tuple[str, int]:
        return (self._memory_model_id, shard_index)

    def _announce_schedule(self) -> None:
        """Declare this batch's access order: forward chain, the loss's lease
        of the final shard, then the backward chain — every acquire consumes
        one announced slot, so the loss access must appear or the
        schedule-aware policy would see the final shard as hop-less right
        before its backward and evict exactly the shard needed next."""
        forward = [self._shard_key(i) for i in range(self.num_shards)]
        loss = [self._shard_key(self.num_shards - 1)]
        backward = [self._shard_key(i) for i in reversed(range(self.num_shards))]
        self._memory.announce(self._memory_model_id, forward + loss + backward)

    # ------------------------------------------------------------------ #
    # Fine-grained task API (mirrors the scheduler's FORWARD/BACKWARD/UPDATE)
    # ------------------------------------------------------------------ #
    def begin_batch(self) -> None:
        """Reset per-batch activation stashes."""
        self._contexts = [_ShardContext() for _ in self.boundaries]
        self._loss = None
        if self._memory is not None:
            self._advance_pending = True
            self._announce_schedule()

    def end_batch(self) -> None:
        """Drop the activation stashes and loss of the finished batch.

        The boundary inputs/outputs (and through them whatever autograd
        state survived the backward pass) would otherwise stay alive until
        the next ``begin_batch``, keeping one batch's worth of activation
        memory resident between optimisation steps.
        """
        self._contexts = []
        self._loss = None

    def run_forward(self, shard_index: int, batch: Batch) -> Any:
        """Forward pass of one shard; stores the boundary input and output.

        With a bound spill manager the shard is leased for the duration of
        the pass (restored from host if evicted) and the *next* shard's
        fetch is kicked off first so it overlaps this shard's compute.
        """
        if self._memory is None:
            return self._forward_body(shard_index, batch)
        with self._memory.lease(self._shard_key(shard_index)):
            if shard_index + 1 < self.num_shards:
                self._memory.prefetch(self._shard_key(shard_index + 1))
            return self._forward_body(shard_index, batch)

    def _forward_body(self, shard_index: int, batch: Batch) -> Any:
        context = self._contexts[shard_index]
        if shard_index == 0:
            state: Any = None
        else:
            upstream = self._contexts[shard_index - 1].output
            state = _detach_state(upstream)
        context.boundary_input = state
        start, stop = self.boundaries[shard_index]
        for block_index in range(start, stop):
            state = self.model.run_block(block_index, state, batch)
        context.output = state
        return state

    def compute_loss(self, batch: Batch) -> Tensor:
        """Loss on the final shard's output (graph still attached to that shard only)."""
        if self._memory is None:
            final_output = self._contexts[-1].output
            self._loss = self.model.compute_loss(final_output, batch)
            return self._loss
        # Leased in case the loss head reads parameters of the final shard.
        with self._memory.lease(self._shard_key(self.num_shards - 1)):
            final_output = self._contexts[-1].output
            self._loss = self.model.compute_loss(final_output, batch)
            return self._loss

    def run_backward(self, shard_index: int) -> None:
        """Backward pass of one shard, consuming the downstream boundary gradient.

        With a bound spill manager the shard is leased for the pass, the
        *previous* shard's fetch is started first (it is the next one the
        backward chain needs), and the shard's optimizer update runs inline
        before the lease ends — the only window in which its parameters,
        gradients, and optimizer state are all guaranteed resident.
        """
        if self._memory is None:
            self._backward_body(shard_index)
            return
        if self._memory_optimizer is None:
            raise SchedulingError(
                "this executor was bound for inference only (bind_memory "
                "without an optimizer); spilled backward passes need the "
                "optimizer registered so per-shard updates can run inline"
            )
        with self._memory.lease(self._shard_key(shard_index)):
            if shard_index > 0:
                self._memory.prefetch(self._shard_key(shard_index - 1))
            self._backward_body(shard_index)
            if self._advance_pending:
                self._memory_optimizer.advance_step()
                self._advance_pending = False
            self._memory_optimizer.step_params(self.shard_parameters(shard_index))

    def _backward_body(self, shard_index: int) -> None:
        context = self._contexts[shard_index]
        if shard_index == self.num_shards - 1:
            if self._loss is None:
                raise SchedulingError("compute_loss must run before the last shard's backward")
            self._loss.backward()
        else:
            downstream_input = self._contexts[shard_index + 1].boundary_input
            boundary_grads = [
                tensor.grad for tensor in _state_tensors(downstream_input)
            ]
            output_tensors = _state_tensors(context.output)
            if len(boundary_grads) != len(output_tensors):
                raise SchedulingError(
                    "boundary gradient structure does not match shard output structure"
                )
            pending = [
                (tensor, grad)
                for tensor, grad in zip(output_tensors, boundary_grads)
                if grad is not None
            ]
            for position, (tensor, grad) in enumerate(pending):
                # Multi-tensor boundary states may share a subgraph: only the
                # last backward may free contexts, or the earlier passes would
                # silently detach the shared portion for the later ones.
                tensor.backward(grad, retain_graph=position < len(pending) - 1)

    def shard_parameters(self, shard_index: int) -> List:
        """Parameters owned by the blocks of one shard."""
        start, stop = self.boundaries[shard_index]
        params: List = []
        for block_index in range(start, stop):
            params.extend(self.model.block_parameters(block_index))
        return params

    # ------------------------------------------------------------------ #
    # Whole-step convenience
    # ------------------------------------------------------------------ #
    def train_step(self, batch: Batch, optimizer: Optimizer) -> float:
        """One full sharded optimisation step (forward chain, loss, backward chain, update).

        Under a bound spill manager the update happens per shard inside each
        backward lease (bit-identical arithmetic; see :meth:`bind_memory`),
        so no whole-model ``optimizer.step`` runs here.
        """
        if self._memory is not None and self._memory_optimizer is None:
            raise ConfigurationError(
                "this executor was bound for inference only (bind_memory "
                "without an optimizer); it cannot run training steps"
            )
        if self._memory is not None and optimizer is not self._memory_optimizer:
            raise ConfigurationError(
                "train_step received a different optimizer than bind_memory; "
                "spilled updates must go through the registered optimizer"
            )
        tel = self.telemetry
        if tel.enabled:
            with tel.span("step", cat="training", model=self.model.model_name):
                return self._train_step_impl(batch, optimizer)
        return self._train_step_impl(batch, optimizer)

    def _train_step_impl(self, batch: Batch, optimizer: Optimizer) -> float:
        """The uninstrumented step body (E16 benchmarks this directly)."""
        self.begin_batch()
        self.model.zero_grad()
        for shard_index in range(self.num_shards):
            self.run_forward(shard_index, batch)
        loss = self.compute_loss(batch)
        for shard_index in reversed(range(self.num_shards)):
            self.run_backward(shard_index)
        if not self.updates_inline:
            optimizer.step()
        loss_value = loss.item()
        self.end_batch()
        return loss_value

    def forward_only(self, batch: Batch) -> Any:
        """Sharded inference under ``no_grad`` (no autograd graph is built).

        Output values are bit-identical to the graph-building forward — only
        the recording is skipped — and with a bound spill manager only the
        forward chain is announced, so schedule-aware eviction never plans
        for a backward pass that will not happen.
        """
        self.begin_batch()
        if self._memory is not None:
            self._memory.announce(
                self._memory_model_id,
                [self._shard_key(i) for i in range(self.num_shards)],
            )
        with no_grad():
            output = None
            for shard_index in range(self.num_shards):
                output = self.run_forward(shard_index, batch)
        self.end_batch()
        return output


@dataclass
class _ModelSlot:
    """Book-keeping for one model managed by the shard-parallel trainer."""

    model_id: str
    executor: ShardedModelExecutor
    optimizer: Optimizer
    loader: DataLoader
    report: TrainingReport
    tracker: MetricTracker = field(default_factory=MetricTracker)
    shard_devices: List[int] = field(default_factory=list)


class ShardParallelTrainer:
    """Hydra-style interleaved training of several sharded models.

    ``num_devices`` simulated devices execute shard tasks; shard ``i`` of
    model ``j`` is pinned to device ``(i + j) % num_devices``.  The trainer
    walks mini-batches of all models concurrently, issuing forward/backward
    shard tasks in a round-robin over models — the numerical results are
    independent of the interleaving because models share no state, which is
    exactly why Hydra's fine-grained schedule is safe.

    With ``memory_manager`` set, every registered model executes *spilled*:
    shards are leased through the manager around each task (shard ``i`` of
    model ``j`` charges the arena of its device, ``arena_names[(i + j) %
    len(arena_names)]``), optimizer updates happen per shard inside the
    backward lease, and idle shards are evicted to the host cache under
    memory pressure — which is how models whose resident bytes exceed every
    device budget still train, bit-identically to fully-resident runs.
    """

    def __init__(
        self,
        num_devices: int = 2,
        memory_manager: Optional["SpillManager"] = None,
        telemetry=None,
    ):
        if num_devices <= 0:
            raise ValueError("num_devices must be positive")
        self.num_devices = int(num_devices)
        self.memory = memory_manager
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._slots: List[_ModelSlot] = []

    def add_model(
        self,
        model: ShardableModel,
        optimizer: Optimizer,
        loader: DataLoader,
        boundaries: Sequence[Tuple[int, int]],
        model_id: Optional[str] = None,
    ) -> None:
        """Register a model (with its sharding boundaries) for interleaved training."""
        executor = ShardedModelExecutor(model, boundaries)
        executor.telemetry = self.telemetry
        model_id = model_id or model.model_name
        slot_index = len(self._slots)
        shard_devices = [
            (shard + slot_index) % self.num_devices for shard in range(executor.num_shards)
        ]
        if self.memory is not None:
            names = self.memory.arena_names
            executor.bind_memory(
                self.memory,
                optimizer,
                model_id=model_id,
                device_of=lambda shard: names[shard_devices[shard] % len(names)],
            )
        self._slots.append(
            _ModelSlot(
                model_id=model_id,
                executor=executor,
                optimizer=optimizer,
                loader=loader,
                report=TrainingReport(model_id=model_id),
                shard_devices=shard_devices,
            )
        )

    @property
    def num_models(self) -> int:
        return len(self._slots)

    def device_of(self, model_index: int, shard_index: int) -> int:
        return self._slots[model_index].shard_devices[shard_index]

    def train_epoch(self, epoch: int = 0) -> Dict[str, Dict[str, float]]:
        """Run one epoch for every registered model, interleaving shard tasks."""
        if not self._slots:
            raise SchedulingError("no models registered")
        iterators = []
        for slot in self._slots:
            slot.loader.set_epoch(epoch)
            iterators.append(iter(slot.loader))

        # Per-model in-flight batch state machine.
        batches: List[Optional[Batch]] = [None] * len(self._slots)
        phases: List[str] = ["fetch"] * len(self._slots)
        cursors: List[int] = [0] * len(self._slots)
        finished = [False] * len(self._slots)
        tel = self.telemetry
        # Interleaved steps of different models overlap in time, so they use
        # begin/end tokens (flat spans) instead of the nesting context manager.
        tokens: List[Optional[Any]] = [None] * len(self._slots)

        while not all(finished):
            progressed = False
            for index, slot in enumerate(self._slots):
                if finished[index]:
                    continue
                progressed = True
                if phases[index] == "fetch":
                    try:
                        batches[index] = next(iterators[index])
                    except StopIteration:
                        finished[index] = True
                        continue
                    if tel.enabled:
                        tokens[index] = tel.begin(
                            "step", cat="training", model=slot.model_id, epoch=epoch
                        )
                    slot.executor.begin_batch()
                    slot.executor.model.zero_grad()
                    phases[index] = "forward"
                    cursors[index] = 0
                elif phases[index] == "forward":
                    slot.executor.run_forward(cursors[index], batches[index])
                    cursors[index] += 1
                    if cursors[index] == slot.executor.num_shards:
                        loss = slot.executor.compute_loss(batches[index])
                        slot.tracker.update(loss=loss.item())
                        phases[index] = "backward"
                        cursors[index] = slot.executor.num_shards - 1
                elif phases[index] == "backward":
                    slot.executor.run_backward(cursors[index])
                    cursors[index] -= 1
                    if cursors[index] < 0:
                        # Spilled executors already updated each shard inside
                        # its backward lease (the only window it is resident).
                        if not slot.executor.updates_inline:
                            slot.optimizer.step()
                        # Free the finished batch's activation stashes before
                        # the next fetch so peak memory spans one batch, not two.
                        slot.executor.end_batch()
                        if tokens[index] is not None:
                            tel.end(tokens[index])
                            tokens[index] = None
                        batches[index] = None
                        phases[index] = "fetch"
            if not progressed:
                break

        results: Dict[str, Dict[str, float]] = {}
        for slot in self._slots:
            epoch_metrics = slot.tracker.end_epoch()
            slot.report.epochs.append(epoch_metrics)
            results[slot.model_id] = epoch_metrics
        return results

    def fit(self, num_epochs: int = 1) -> Dict[str, TrainingReport]:
        """Train every registered model for ``num_epochs`` epochs."""
        for epoch in range(num_epochs):
            self.train_epoch(epoch)
        return {slot.model_id: slot.report for slot in self._slots}
