"""Discrete-event execution of task graphs on a simulated cluster.

The simulator is deliberately generic: it executes :class:`SimTask` items —
each pinned to a device, with dependencies, transfer inputs, compute work,
and memory effects — and produces an :class:`ExecutionTrace`.  The scheduling
*strategies* in :mod:`repro.scheduler` decide placement and task priorities;
the simulator only enforces dependencies, device exclusivity, transfer
delays, and memory capacity.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.cluster.cluster import Cluster
from repro.cluster.trace import ExecutionTrace, TaskRecord
from repro.exceptions import SimulationError


@dataclass
class SimTask:
    """A unit of schedulable work pinned to one device.

    Attributes
    ----------
    task_id:
        Unique identifier.
    device:
        Name of the device this task must run on (strategies fix placement).
    compute_flops:
        Floating-point work; converted to seconds via the device spec.
    duration_seconds:
        Optional explicit duration overriding the FLOP-based estimate.
    input_transfers:
        ``(source_device, num_bytes)`` pairs; bytes arriving from a different
        device add interconnect transfer time before compute starts.
    memory_allocations / memory_releases:
        Keys (and sizes) charged to the device ledger at task start and
        released at task end — used for activation/buffer accounting.
    deps:
        Task ids that must complete before this task may start.
    tags:
        Free-form metadata (model id, shard index, pass kind, batch index)
        used by scheduling policies and by trace analysis.
    """

    task_id: str
    device: str
    compute_flops: float = 0.0
    duration_seconds: Optional[float] = None
    input_transfers: List[Tuple[str, int]] = field(default_factory=list)
    memory_allocations: List[Tuple[str, int]] = field(default_factory=list)
    memory_releases: List[str] = field(default_factory=list)
    deps: List[str] = field(default_factory=list)
    tags: Dict[str, object] = field(default_factory=dict)


#: a policy orders the ready tasks of one device; the first element runs next
PolicyFn = Callable[[str, List[SimTask]], SimTask]


def fifo_policy(device: str, ready: List[SimTask]) -> SimTask:
    """Run ready tasks in submission order (the default)."""
    return ready[0]


class ClusterSimulator:
    """Event-driven simulator for :class:`SimTask` graphs."""

    def __init__(self, cluster: Cluster, policy: Optional[PolicyFn] = None):
        self.cluster = cluster
        self.policy = policy if policy is not None else fifo_policy

    def run(self, tasks: Sequence[SimTask]) -> ExecutionTrace:
        """Execute ``tasks`` respecting dependencies; returns the trace.

        Raises :class:`SimulationError` on unknown devices, duplicate or
        missing task ids, or dependency cycles (detected as a deadlock).
        """
        tasks = list(tasks)
        by_id: Dict[str, SimTask] = {}
        for task in tasks:
            if task.task_id in by_id:
                raise SimulationError(f"duplicate task id {task.task_id!r}")
            if task.device not in self.cluster.device_names():
                raise SimulationError(
                    f"task {task.task_id!r} targets unknown device {task.device!r}"
                )
            by_id[task.task_id] = task

        dependents: Dict[str, List[str]] = {task_id: [] for task_id in by_id}
        unmet: Dict[str, int] = {}
        for task in tasks:
            for dep in task.deps:
                if dep not in by_id:
                    raise SimulationError(
                        f"task {task.task_id!r} depends on unknown task {dep!r}"
                    )
                dependents[dep].append(task.task_id)
            unmet[task.task_id] = len(task.deps)

        submission_order = {task.task_id: index for index, task in enumerate(tasks)}
        ready: Dict[str, List[SimTask]] = {name: [] for name in self.cluster.device_names()}
        for task in tasks:
            if unmet[task.task_id] == 0:
                ready[task.device].append(task)

        device_busy: Dict[str, bool] = {name: False for name in self.cluster.device_names()}
        running: List[Tuple[float, int, SimTask]] = []
        sequence = itertools.count()
        records: List[TaskRecord] = []
        completed = 0
        now = 0.0

        def try_start(device_name: str) -> None:
            if device_busy[device_name] or not ready[device_name]:
                return
            queue = ready[device_name]
            queue.sort(key=lambda t: submission_order[t.task_id])
            task = self.policy(device_name, queue)
            queue.remove(task)
            device = self.cluster.device(task.device)
            transfer = sum(
                self.cluster.transfer_time(num_bytes, src, task.device)
                for src, num_bytes in task.input_transfers
            )
            compute = (
                task.duration_seconds
                if task.duration_seconds is not None
                else device.compute_time(task.compute_flops)
            )
            for key, num_bytes in task.memory_allocations:
                device.allocate(key, num_bytes)
            start = now
            end = start + transfer + compute
            device_busy[device_name] = True
            heapq.heappush(running, (end, next(sequence), task))
            records.append(
                TaskRecord(
                    task_id=task.task_id,
                    device=task.device,
                    start=start,
                    end=end,
                    compute_seconds=compute,
                    transfer_seconds=transfer,
                    tags=dict(task.tags),
                )
            )

        for name in self.cluster.device_names():
            try_start(name)

        while completed < len(tasks):
            if not running:
                pending = [task_id for task_id, count in unmet.items() if count > 0]
                raise SimulationError(
                    "simulation deadlocked: no runnable tasks but "
                    f"{len(pending)} tasks still blocked (cycle in dependencies?)"
                )
            end_time, _, task = heapq.heappop(running)
            now = end_time
            completed += 1
            device = self.cluster.device(task.device)
            for key in task.memory_releases:
                device.release(key)
            device_busy[task.device] = False
            for dependent_id in dependents[task.task_id]:
                unmet[dependent_id] -= 1
                if unmet[dependent_id] == 0:
                    dependent = by_id[dependent_id]
                    ready[dependent.device].append(dependent)
            # Drain any completions that happen at exactly the same instant
            # before making new scheduling decisions, so policies see the
            # full ready set (keeps traces deterministic).
            while running and running[0][0] == now:
                end_time, _, finished = heapq.heappop(running)
                completed += 1
                finished_device = self.cluster.device(finished.device)
                for key in finished.memory_releases:
                    finished_device.release(key)
                device_busy[finished.device] = False
                for dependent_id in dependents[finished.task_id]:
                    unmet[dependent_id] -= 1
                    if unmet[dependent_id] == 0:
                        dependent = by_id[dependent_id]
                        ready[dependent.device].append(dependent)
            for name in self.cluster.device_names():
                try_start(name)

        peak_memory = {d.name: d.peak_bytes for d in self.cluster.devices}
        return ExecutionTrace(
            device_names=self.cluster.device_names(),
            records=sorted(records, key=lambda r: (r.start, r.device)),
            peak_memory_bytes=peak_memory,
        )
