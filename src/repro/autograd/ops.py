"""Differentiable primitive operations and their functional wrappers.

Every class here is a :class:`~repro.autograd.function.Function` subclass
whose ``forward`` works on raw numpy arrays and whose ``backward`` returns
one gradient per input.  The lowercase functions at the bottom are the public
functional API used by :class:`~repro.autograd.tensor.Tensor` methods and by
the :mod:`repro.nn` layers.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.autograd.function import Function, unbroadcast
from repro.exceptions import ShapeError


# --------------------------------------------------------------------------- #
# Elementwise arithmetic
# --------------------------------------------------------------------------- #
class Add(Function):
    def forward(self, a, b):
        self.a_shape, self.b_shape = np.shape(a), np.shape(b)
        return a + b

    def backward(self, grad_output):
        return (
            unbroadcast(grad_output, self.a_shape) if self.needs_input_grad[0] else None,
            unbroadcast(grad_output, self.b_shape) if self.needs_input_grad[1] else None,
        )


class Sub(Function):
    def forward(self, a, b):
        self.a_shape, self.b_shape = np.shape(a), np.shape(b)
        return a - b

    def backward(self, grad_output):
        return (
            unbroadcast(grad_output, self.a_shape) if self.needs_input_grad[0] else None,
            unbroadcast(-grad_output, self.b_shape) if self.needs_input_grad[1] else None,
        )


class Mul(Function):
    def forward(self, a, b):
        # Python scalars are kept as scalars: `np.asarray(0.5)` would create
        # a 0-d float64 array whose dtype "wins" numpy promotion, silently
        # upcasting the whole downstream backward pass (gradients, GEMMs) to
        # float64.  Weak scalar promotion keeps gradients in the tensor dtype.
        self.save_for_backward(
            a if np.isscalar(a) else np.asarray(a),
            b if np.isscalar(b) else np.asarray(b),
        )
        return a * b

    def backward(self, grad_output):
        a, b = self.saved_tensors
        grad_a = unbroadcast(grad_output * b, np.shape(a)) if self.needs_input_grad[0] else None
        grad_b = unbroadcast(grad_output * a, np.shape(b)) if self.needs_input_grad[1] else None
        return grad_a, grad_b


class Div(Function):
    def forward(self, a, b):
        # See Mul: scalars stay scalars so backward keeps the tensor dtype.
        self.save_for_backward(
            a if np.isscalar(a) else np.asarray(a),
            b if np.isscalar(b) else np.asarray(b),
        )
        return a / b

    def backward(self, grad_output):
        a, b = self.saved_tensors
        grad_a = unbroadcast(grad_output / b, np.shape(a)) if self.needs_input_grad[0] else None
        grad_b = (
            unbroadcast(-grad_output * a / (b * b), np.shape(b))
            if self.needs_input_grad[1]
            else None
        )
        return grad_a, grad_b


class Neg(Function):
    def forward(self, a):
        return -a

    def backward(self, grad_output):
        return (-grad_output,)


class Pow(Function):
    """Elementwise power with a constant (non-differentiated) exponent."""

    def forward(self, a, exponent: float = 2.0):
        self.exponent = float(exponent)
        self.save_for_backward(np.asarray(a))
        return a ** self.exponent

    def backward(self, grad_output):
        (a,) = self.saved_tensors
        return (grad_output * self.exponent * a ** (self.exponent - 1.0),)


class Exp(Function):
    def forward(self, a):
        out = np.exp(a)
        self.save_for_backward(out)
        return out

    def backward(self, grad_output):
        (out,) = self.saved_tensors
        return (grad_output * out,)


class Log(Function):
    def forward(self, a):
        self.save_for_backward(np.asarray(a))
        return np.log(a)

    def backward(self, grad_output):
        (a,) = self.saved_tensors
        return (grad_output / a,)


class Sqrt(Function):
    def forward(self, a):
        out = np.sqrt(a)
        self.save_for_backward(out)
        return out

    def backward(self, grad_output):
        (out,) = self.saved_tensors
        return (grad_output / (2.0 * out),)


# --------------------------------------------------------------------------- #
# Matrix multiplication
# --------------------------------------------------------------------------- #
def _stacked_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``a @ b`` where ``b`` is a 2-D matrix shared across ``a``'s batch dims.

    numpy dispatches ``(B, ..., M, K) @ (K, N)`` as one GEMM call per batch
    row; collapsing the leading dimensions issues a single large GEMM, which
    is meaningfully faster on every BLAS.  Each output element is the same
    row-times-column dot product either way (the reduction axis and its
    blocking are unchanged), so the result is bit-identical.
    """
    if a.ndim <= 2 or b.ndim != 2:
        return a @ b
    lead = a.shape[:-1]
    flat = a.reshape(-1, a.shape[-1]) @ b
    return flat.reshape(*lead, b.shape[1])


class MatMul(Function):
    """Batched matrix multiplication following numpy ``@`` semantics."""

    def forward(self, a, b):
        a, b = np.asarray(a), np.asarray(b)
        if a.ndim < 1 or b.ndim < 1:
            raise ShapeError("matmul requires at least 1-dimensional operands")
        self.save_for_backward(a, b)
        return _stacked_matmul(a, b)

    def backward(self, grad_output):
        a, b = self.saved_tensors
        grad_a = grad_b = None
        if self.needs_input_grad[0]:
            if b.ndim == 1:
                grad_a = np.outer(grad_output, b) if a.ndim > 1 else grad_output * b
            else:
                grad_a = _stacked_matmul(grad_output, np.swapaxes(b, -1, -2))
            grad_a = unbroadcast(np.asarray(grad_a), a.shape)
        if self.needs_input_grad[1]:
            if a.ndim == 1:
                grad_b = np.outer(a, grad_output) if b.ndim > 1 else a * grad_output
            else:
                grad_b = np.swapaxes(a, -1, -2) @ grad_output
            grad_b = unbroadcast(np.asarray(grad_b), b.shape)
        return grad_a, grad_b


class LinearFunction(Function):
    """Fused affine map ``y = x @ W.T + b`` in a single graph node.

    Replaces the three-op composition ``matmul(x, transpose(W)) + b`` with
    one :class:`Function`, saving two graph nodes, the pre-bias matmul
    output, and the transpose bookkeeping per layer call.  Forward and
    backward execute exactly the numpy operations the composition executes
    (same operands, same reduction order), so both outputs and gradients are
    bit-for-bit identical to the unfused path — verified by
    ``tests/test_fused_kernels.py``.
    """

    def forward(self, x, weight, bias=None):
        x = np.asarray(x)
        weight = np.asarray(weight)
        self.save_for_backward(x, weight)
        self.bias_shape = np.shape(bias) if bias is not None else None
        out = _stacked_matmul(x, weight.T)
        if bias is not None:
            bias = np.asarray(bias)
            if (np.result_type(out.dtype, bias.dtype) == out.dtype
                    and np.broadcast_shapes(out.shape, bias.shape) == out.shape):
                # Same rounding as `out + bias`, one fewer allocation.
                out += bias
            else:
                # Promoting or out-broadcasting bias: match the composition.
                out = out + bias
        return out

    def backward(self, grad_output):
        x, weight = self.saved_tensors
        grad_x = grad_w = grad_b = None
        if self.needs_input_grad[0]:
            grad_x = _stacked_matmul(grad_output, weight)
        if self.needs_input_grad[1]:
            if x.ndim == 1:
                grad_wt = np.outer(x, grad_output)
            else:
                grad_wt = np.swapaxes(x, -1, -2) @ grad_output
                if grad_wt.ndim > 2:
                    grad_wt = grad_wt.sum(axis=tuple(range(grad_wt.ndim - 2)))
            grad_w = grad_wt.T
        if len(self.needs_input_grad) > 2 and self.needs_input_grad[2]:
            grad_b = unbroadcast(grad_output, self.bias_shape)
        if len(self.needs_input_grad) == 2:
            return grad_x, grad_w
        return grad_x, grad_w, grad_b


class AttentionCore(Function):
    """Fused scaled-dot-product attention: ``softmax(q @ k^T * scale) @ v``.

    One graph node instead of the five-op composition (two matmuls, a
    transpose, the scale multiply, softmax).  Every GEMM and ufunc is issued
    on the same operands in the same order as the composition, so outputs
    and all three gradients are bit-for-bit identical; the pre-softmax score
    matrix is not stashed, which removes one ``(B, H, S, S)`` buffer per
    layer from the backward-pass working set.  Used on the unmasked /
    no-dropout fast path of :class:`~repro.nn.attention.MultiHeadSelfAttention`.
    """

    def forward(self, q, k, v, scale: float = 1.0):
        q, k, v = np.asarray(q), np.asarray(k), np.asarray(v)
        scores = q @ np.swapaxes(k, -1, -2)
        np.multiply(scores, scale, out=scores)  # same rounding as `scores * scale`
        # Exact Softmax.forward sequence, reusing the owned buffer.
        shifted = np.subtract(scores, np.max(scores, axis=-1, keepdims=True), out=scores)
        exps = np.exp(shifted, out=shifted)
        weights = np.divide(exps, np.sum(exps, axis=-1, keepdims=True), out=exps)
        self.scale = float(scale)
        self.save_for_backward(q, k, v, weights)
        return weights @ v

    def backward(self, grad_output):
        q, k, v, weights = self.saved_tensors
        d_weights = grad_output @ np.swapaxes(v, -1, -2)
        d_v = np.swapaxes(weights, -1, -2) @ grad_output
        # Exact Softmax.backward sequence...
        work = d_weights * weights
        dot = np.sum(work, axis=-1, keepdims=True)
        np.subtract(d_weights, dot, out=work)
        np.multiply(weights, work, out=work)
        # ...then the scale multiply's backward, folded into the same buffer.
        np.multiply(work, self.scale, out=work)
        d_q = work @ k
        d_k = np.swapaxes(np.swapaxes(q, -1, -2) @ work, -1, -2)
        return d_q, d_k, d_v


class LayerNormFunction(Function):
    """Single-pass layer normalisation over the last axis, with affine.

    One graph node instead of the nine-op composition
    ``(x - mean) / sqrt(var + eps) * weight + bias``.  Every intermediate is
    computed with the identical numpy expressions (and the identical
    gradient-accumulation grouping) the composition produces, so outputs and
    all three gradients are bit-for-bit equal to the unfused path.
    """

    def forward(self, x, weight, bias, eps: float = 1e-5):
        x = np.asarray(x)
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        variance = (centered * centered).mean(axis=-1, keepdims=True)
        std = np.sqrt(variance + eps)
        normalised = centered / std
        self.save_for_backward(centered, std, normalised, np.asarray(weight))
        self.bias_shape = np.shape(bias)
        out = normalised * weight
        bias = np.asarray(bias)
        if (np.result_type(out.dtype, bias.dtype) == out.dtype
                and np.broadcast_shapes(out.shape, bias.shape) == out.shape):
            np.add(out, bias, out=out)  # same rounding as `out + bias`
        else:
            out = out + bias
        return out

    def backward(self, grad_output):
        centered, std, normalised, weight = self.saved_tensors
        width = centered.shape[-1]
        grad_x = grad_w = grad_b = None
        if self.needs_input_grad[1]:
            grad_w = unbroadcast(grad_output * normalised, weight.shape)
        if self.needs_input_grad[2]:
            grad_b = unbroadcast(grad_output, self.bias_shape)
        if self.needs_input_grad[0]:
            # Mirrors the composed graph's backward exactly: Div, Sqrt, Mean,
            # Mul and Sub backwards in topological order, with the composed
            # accumulation grouping ((d_div + d_sq) + d_sq into `centered`,
            # then + the mean term into `x`).  Intermediates reuse their own
            # buffers (`out=` on arrays this backward allocated), which keeps
            # the ufunc sequence — and therefore every bit — unchanged.
            grad_n = grad_output * weight
            work = -grad_n
            np.multiply(work, centered, out=work)
            np.divide(work, std * std, out=work)
            d_std = work.sum(axis=-1, keepdims=True)
            d_var = np.divide(d_std, 2.0 * std, out=d_std)
            d_sq = np.broadcast_to(d_var, centered.shape) / width
            d_sq_c = np.multiply(d_sq, centered, out=d_sq)
            d_centered = np.divide(grad_n, std, out=grad_n)
            grad_c = d_centered + d_sq_c
            grad_c += d_sq_c
            d_mean = (-grad_c).sum(axis=-1, keepdims=True)
            grad_x = np.broadcast_to(d_mean, centered.shape) / width
            np.add(grad_c, grad_x, out=grad_x)
        return grad_x, grad_w, grad_b


# --------------------------------------------------------------------------- #
# Activations
# --------------------------------------------------------------------------- #
class ReLU(Function):
    def forward(self, a):
        mask = a > 0
        self.save_for_backward(mask)
        return a * mask

    def backward(self, grad_output):
        (mask,) = self.saved_tensors
        return (grad_output * mask,)


class Tanh(Function):
    def forward(self, a):
        out = np.tanh(a)
        self.save_for_backward(out)
        return out

    def backward(self, grad_output):
        (out,) = self.saved_tensors
        work = out * out
        np.subtract(1.0, work, out=work)
        np.multiply(grad_output, work, out=work)
        return (work,)


class Sigmoid(Function):
    def forward(self, a):
        a = np.asarray(a)
        if not np.issubdtype(a.dtype, np.floating):
            out = 1.0 / (1.0 + np.exp(-a))
        else:
            # 1 / (1 + exp(-a)) with the intermediate buffer reused in place:
            # identical ufunc sequence, three fewer allocations.
            out = np.negative(a)
            np.exp(out, out=out)
            np.add(out, 1.0, out=out)
            np.divide(1.0, out, out=out)
        self.save_for_backward(out)
        return out

    def backward(self, grad_output):
        (out,) = self.saved_tensors
        return (grad_output * out * (1.0 - out),)


class GELU(Function):
    """Gaussian Error Linear Unit using the tanh approximation (as in BERT)."""

    _COEFF = 0.7978845608028654  # sqrt(2 / pi)

    def forward(self, a):
        a = np.asarray(a)
        if not np.issubdtype(a.dtype, np.floating):
            a = a.astype(np.float64)
        # `_COEFF * (a + 0.044715 * a*a*a)` followed by `0.5 * a * (1 + tanh)`
        # with intermediates folded into owned buffers.  The cube is computed
        # as two multiplies (as in PyTorch's tanh-GELU) rather than libm
        # `pow(a, 3)`: ~100x faster under numpy and equal to within 1 ulp.
        inner = a * a
        np.multiply(inner, a, out=inner)
        np.multiply(inner, 0.044715, out=inner)
        np.add(inner, a, out=inner)
        np.multiply(inner, self._COEFF, out=inner)
        tanh_inner = np.tanh(inner, out=inner)
        self.save_for_backward(a, tanh_inner)
        out = tanh_inner + 1.0
        np.multiply(out, 0.5 * a, out=out)
        return out

    def backward(self, grad_output):
        # Identical grouping to
        #   sech2 = 1 - tanh^2; d_inner = COEFF * (1 + 3*0.044715*a^2)
        #   grad  = 0.5*(1 + tanh) + 0.5*a * sech2 * d_inner
        # with intermediates folded into owned buffers.
        a, tanh_inner = self.saved_tensors
        sech2 = tanh_inner ** 2
        np.subtract(1.0, sech2, out=sech2)
        d_inner = a ** 2
        np.multiply(d_inner, 3.0 * 0.044715, out=d_inner)
        np.add(d_inner, 1.0, out=d_inner)
        np.multiply(d_inner, self._COEFF, out=d_inner)
        grad = tanh_inner + 1.0
        np.multiply(grad, 0.5, out=grad)
        term = 0.5 * a
        np.multiply(term, sech2, out=term)
        np.multiply(term, d_inner, out=term)
        np.add(grad, term, out=grad)
        np.multiply(grad_output, grad, out=grad)
        return (grad,)


class Softmax(Function):
    def forward(self, a, axis: int = -1):
        self.axis = axis
        # The shifted/exp/normalised intermediates share one buffer (we own
        # it); the ufunc sequence and therefore the values are unchanged.
        shifted = a - np.max(a, axis=axis, keepdims=True)
        if not np.issubdtype(shifted.dtype, np.floating):
            shifted = shifted.astype(np.float64)
        exps = np.exp(shifted, out=shifted)
        out = np.divide(exps, np.sum(exps, axis=axis, keepdims=True), out=exps)
        self.save_for_backward(out)
        return out

    def backward(self, grad_output):
        (out,) = self.saved_tensors
        # Same `out * (grad - sum(grad*out))` arithmetic with the big
        # intermediate reused in place (`grad_output` itself is never mutated).
        work = grad_output * out
        dot = np.sum(work, axis=self.axis, keepdims=True)
        np.subtract(grad_output, dot, out=work)
        np.multiply(out, work, out=work)
        return (work,)


class LogSoftmax(Function):
    def forward(self, a, axis: int = -1):
        self.axis = axis
        shifted = a - np.max(a, axis=axis, keepdims=True)
        if not np.issubdtype(shifted.dtype, np.floating):
            shifted = shifted.astype(np.float64)
        log_sum = np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))
        out = np.subtract(shifted, log_sum, out=shifted)  # we own `shifted`
        self.save_for_backward(np.exp(out))
        return out

    def backward(self, grad_output):
        (softmax_out,) = self.saved_tensors
        summed = np.sum(grad_output, axis=self.axis, keepdims=True)
        work = softmax_out * summed
        np.subtract(grad_output, work, out=work)
        return (work,)


# --------------------------------------------------------------------------- #
# Reductions
# --------------------------------------------------------------------------- #
def _normalize_axis(axis, ndim: int) -> Optional[Tuple[int, ...]]:
    if axis is None:
        return None
    if isinstance(axis, int):
        axis = (axis,)
    return tuple(a % ndim for a in axis)


class Sum(Function):
    def forward(self, a, axis=None, keepdims: bool = False):
        a = np.asarray(a)
        self.input_shape = a.shape
        self.axis = _normalize_axis(axis, a.ndim)
        self.keepdims = keepdims
        return a.sum(axis=self.axis, keepdims=keepdims)

    def backward(self, grad_output):
        grad = np.asarray(grad_output)
        if self.axis is not None and not self.keepdims:
            grad = np.expand_dims(grad, self.axis)
        return (np.broadcast_to(grad, self.input_shape).copy(),)


class Mean(Function):
    def forward(self, a, axis=None, keepdims: bool = False):
        a = np.asarray(a)
        self.input_shape = a.shape
        self.axis = _normalize_axis(axis, a.ndim)
        self.keepdims = keepdims
        if self.axis is None:
            self.count = a.size
        else:
            self.count = int(np.prod([a.shape[i] for i in self.axis]))
        return a.mean(axis=self.axis, keepdims=keepdims)

    def backward(self, grad_output):
        grad = np.asarray(grad_output)
        if self.axis is not None and not self.keepdims:
            grad = np.expand_dims(grad, self.axis)
        return (np.broadcast_to(grad, self.input_shape).copy() / self.count,)


class Max(Function):
    def forward(self, a, axis=None, keepdims: bool = False):
        a = np.asarray(a)
        self.axis = _normalize_axis(axis, a.ndim)
        self.keepdims = keepdims
        out = a.max(axis=self.axis, keepdims=True)
        mask = (a == out)
        # Split gradient equally among ties, matching a subgradient choice
        # that keeps the parity experiments deterministic.
        self.save_for_backward(mask / mask.sum(axis=self.axis, keepdims=True))
        if not keepdims and self.axis is not None:
            out = np.squeeze(out, axis=self.axis)
        elif not keepdims and self.axis is None:
            out = out.reshape(())
        return out

    def backward(self, grad_output):
        (weights,) = self.saved_tensors
        grad = np.asarray(grad_output)
        if self.axis is not None and not self.keepdims:
            grad = np.expand_dims(grad, self.axis)
        return (weights * grad,)


# --------------------------------------------------------------------------- #
# Shape manipulation
# --------------------------------------------------------------------------- #
class Reshape(Function):
    def forward(self, a, shape: Tuple[int, ...] = ()):
        a = np.asarray(a)
        self.input_shape = a.shape
        return a.reshape(shape)

    def backward(self, grad_output):
        return (np.asarray(grad_output).reshape(self.input_shape),)


class Transpose(Function):
    def forward(self, a, axes: Optional[Tuple[int, ...]] = None):
        a = np.asarray(a)
        if axes is None:
            axes = tuple(reversed(range(a.ndim)))
        self.axes = tuple(axes)
        return np.transpose(a, self.axes)

    def backward(self, grad_output):
        inverse = np.argsort(self.axes)
        return (np.transpose(np.asarray(grad_output), inverse),)


def _index_may_repeat(index) -> bool:
    """Whether an index could select the same element twice (needs add.at)."""
    if isinstance(index, tuple):
        return any(_index_may_repeat(item) for item in index)
    return not (index is None or index is Ellipsis
                or isinstance(index, (int, np.integer, slice)))


class GetItem(Function):
    def forward(self, a, index=None):
        a = np.asarray(a)
        self.input_shape = a.shape
        self.input_dtype = a.dtype
        self.index = index
        return a[index]

    def backward(self, grad_output):
        grad = np.zeros(self.input_shape, dtype=np.result_type(self.input_dtype, np.float32))
        if _index_may_repeat(self.index):
            np.add.at(grad, self.index, grad_output)
        else:
            # Basic (slice/int) indexing selects disjoint positions, so the
            # scatter-add degenerates to one assignment into fresh zeros —
            # identical values, far faster than `np.add.at`.
            grad[self.index] = grad_output
        return (grad,)


class Concat(Function):
    """Concatenate along an axis; gradients are split back to the inputs."""

    def forward(self, *arrays, axis: int = 0):
        arrays = [np.asarray(a) for a in arrays]
        self.axis = axis
        self.sizes = [a.shape[axis] for a in arrays]
        return np.concatenate(arrays, axis=axis)

    def backward(self, grad_output):
        splits = np.cumsum(self.sizes)[:-1]
        pieces = np.split(np.asarray(grad_output), splits, axis=self.axis)
        return tuple(
            piece if needed else None
            for piece, needed in zip(pieces, self.needs_input_grad)
        )


class Embedding(Function):
    """Row gather: ``weight[indices]`` with scatter-add backward."""

    def forward(self, weight, indices=None):
        weight = np.asarray(weight)
        self.indices = np.asarray(indices)
        self.weight_shape = weight.shape
        return weight[self.indices]

    def backward(self, grad_output):
        grad = np.zeros(self.weight_shape, dtype=np.asarray(grad_output).dtype)
        np.add.at(grad, self.indices, grad_output)
        return (grad,)


class Where(Function):
    """``np.where`` with a constant condition (condition is not differentiated)."""

    def forward(self, a, b, condition=None):
        self.condition = np.asarray(condition, dtype=bool)
        self.a_shape, self.b_shape = np.shape(a), np.shape(b)
        return np.where(self.condition, a, b)

    def backward(self, grad_output):
        grad_a = grad_b = None
        if self.needs_input_grad[0]:
            grad_a = unbroadcast(grad_output * self.condition, self.a_shape)
        if self.needs_input_grad[1]:
            grad_b = unbroadcast(grad_output * (~self.condition), self.b_shape)
        return grad_a, grad_b


class DropoutOp(Function):
    """Inverted dropout with an externally supplied keep mask."""

    def forward(self, a, mask=None, keep_prob: float = 1.0):
        self.mask = np.asarray(mask)
        self.keep_prob = float(keep_prob)
        return a * self.mask / self.keep_prob

    def backward(self, grad_output):
        return (grad_output * self.mask / self.keep_prob,)


# --------------------------------------------------------------------------- #
# Losses
# --------------------------------------------------------------------------- #
class CrossEntropyWithLogits(Function):
    """Fused log-softmax + negative log-likelihood over integer class targets.

    ``logits`` has shape (N, C); ``targets`` is an int array of shape (N,).
    ``ignore_index`` rows contribute zero loss and zero gradient.
    """

    def forward(self, logits, targets=None, ignore_index: int = -100):
        logits = np.asarray(logits)
        targets = np.asarray(targets)
        if logits.ndim != 2:
            raise ShapeError(f"cross_entropy expects 2-D logits, got shape {logits.shape}")
        if targets.shape != (logits.shape[0],):
            raise ShapeError(
                f"targets shape {targets.shape} incompatible with logits shape {logits.shape}"
            )
        shifted = logits - logits.max(axis=1, keepdims=True)
        log_probs = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True))
        valid = targets != ignore_index
        safe_targets = np.where(valid, targets, 0)
        picked = log_probs[np.arange(logits.shape[0]), safe_targets]
        count = int(valid.sum()) or 1
        loss = -(picked * valid).sum() / count
        self.save_for_backward(np.exp(log_probs), safe_targets, valid)
        self.count = count
        return np.asarray(loss, dtype=logits.dtype)

    def backward(self, grad_output):
        probs, targets, valid = self.saved_tensors
        grad = probs.copy()
        grad[np.arange(grad.shape[0]), targets] -= 1.0
        grad *= valid[:, None]
        grad /= self.count
        return (grad * grad_output,)


class MSELoss(Function):
    """Mean squared error between predictions and constant targets."""

    def forward(self, predictions, targets=None):
        predictions = np.asarray(predictions)
        targets = np.asarray(targets)
        if predictions.shape != targets.shape:
            raise ShapeError(
                f"mse shapes differ: {predictions.shape} vs {targets.shape}"
            )
        diff = predictions - targets
        self.save_for_backward(diff)
        return np.asarray((diff ** 2).mean(), dtype=predictions.dtype)

    def backward(self, grad_output):
        (diff,) = self.saved_tensors
        return (grad_output * 2.0 * diff / diff.size,)


# --------------------------------------------------------------------------- #
# Functional API
# --------------------------------------------------------------------------- #
def add(a, b):
    return Add.apply(a, b)


def sub(a, b):
    return Sub.apply(a, b)


def mul(a, b):
    return Mul.apply(a, b)


def div(a, b):
    return Div.apply(a, b)


def neg(a):
    return Neg.apply(a)


def pow(a, exponent: float):  # noqa: A001 - mirrors the Tensor.__pow__ operator
    return Pow.apply(a, exponent=exponent)


def exp(a):
    return Exp.apply(a)


def log(a):
    return Log.apply(a)


def sqrt(a):
    return Sqrt.apply(a)


def matmul(a, b):
    return MatMul.apply(a, b)


def linear(x, weight, bias=None):
    """Fused affine map ``x @ weight.T + bias`` (one graph node)."""
    if bias is None:
        return LinearFunction.apply(x, weight)
    return LinearFunction.apply(x, weight, bias)


def layer_norm(x, weight, bias, eps: float = 1e-5):
    """Fused layer normalisation over the last axis with affine transform."""
    return LayerNormFunction.apply(x, weight, bias, eps=eps)


def attention_core(q, k, v, scale: float = 1.0):
    """Fused ``softmax(q @ k^T * scale) @ v`` (one graph node)."""
    return AttentionCore.apply(q, k, v, scale=scale)


def relu(a):
    return ReLU.apply(a)


def tanh(a):
    return Tanh.apply(a)


def sigmoid(a):
    return Sigmoid.apply(a)


def gelu(a):
    return GELU.apply(a)


def softmax(a, axis: int = -1):
    return Softmax.apply(a, axis=axis)


def log_softmax(a, axis: int = -1):
    return LogSoftmax.apply(a, axis=axis)


def sum(a, axis=None, keepdims: bool = False):  # noqa: A001 - functional mirror of Tensor.sum
    return Sum.apply(a, axis=axis, keepdims=keepdims)


def mean(a, axis=None, keepdims: bool = False):
    return Mean.apply(a, axis=axis, keepdims=keepdims)


def max(a, axis=None, keepdims: bool = False):  # noqa: A001
    return Max.apply(a, axis=axis, keepdims=keepdims)


def reshape(a, shape: Sequence[int]):
    return Reshape.apply(a, shape=tuple(shape))


def transpose(a, axes: Optional[Sequence[int]] = None):
    return Transpose.apply(a, axes=tuple(axes) if axes is not None else None)


def getitem(a, index):
    return GetItem.apply(a, index=index)


def concat(tensors: Sequence, axis: int = 0):
    return Concat.apply(*tensors, axis=axis)


def embedding(weight, indices):
    indices = indices.data if hasattr(indices, "data") else np.asarray(indices)
    return Embedding.apply(weight, indices=indices)


def where(condition, a, b):
    condition = condition.data if hasattr(condition, "data") else np.asarray(condition)
    return Where.apply(a, b, condition=condition)


def dropout(a, mask, keep_prob: float):
    return DropoutOp.apply(a, mask=mask, keep_prob=keep_prob)


def cross_entropy(logits, targets, ignore_index: int = -100):
    targets = targets.data if hasattr(targets, "data") else np.asarray(targets)
    return CrossEntropyWithLogits.apply(logits, targets=targets, ignore_index=ignore_index)


def mse_loss(predictions, targets):
    targets = targets.data if hasattr(targets, "data") else np.asarray(targets)
    return MSELoss.apply(predictions, targets=targets)
