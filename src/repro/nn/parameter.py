"""Trainable parameter tensors."""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Tensor


class Parameter(Tensor):
    """A :class:`Tensor` that is registered as trainable by :class:`Module`.

    Parameters always require gradients and always store float32 data unless
    explicitly constructed from float64 (used by the gradient-parity tests).
    """

    def __init__(self, data, name: str | None = None):
        array = np.asarray(data.data if isinstance(data, Tensor) else data)
        if not np.issubdtype(array.dtype, np.floating):
            array = array.astype(np.float32)
        super().__init__(array, requires_grad=True, name=name)

    def __repr__(self) -> str:
        label = f", name={self.name!r}" if self.name else ""
        return f"Parameter(shape={self.shape}, dtype={self.dtype}{label})"
