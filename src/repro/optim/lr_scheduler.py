"""Learning-rate schedules."""

from __future__ import annotations

from typing import Dict

from repro.optim.optimizer import Optimizer


class LRScheduler:
    """Base class: adjusts an optimizer's learning rate once per step."""

    def __init__(self, optimizer: Optimizer):
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.step_count = 0

    def step(self) -> float:
        """Advance the schedule and return the new learning rate."""
        self.step_count += 1
        lr = self.compute_lr(self.step_count)
        self.optimizer.lr = lr
        return lr

    def compute_lr(self, step: int) -> float:  # pragma: no cover - interface
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Checkpointing
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, float]:
        """Serialisable snapshot of the schedule's dynamic state.

        ``step_count`` is where the schedule is; ``base_lr`` is the anchor
        every ``compute_lr`` derives from (captured at construction, so it
        must survive a round trip through a *fresh* optimizer whose ``lr``
        is mid-schedule).  Static shape parameters (warmup steps, decay
        intervals) are constructor arguments, not state — rebuilding the
        same schedule is the caller's job, exactly as for model
        architecture versus parameters.
        """
        return {"step_count": self.step_count, "base_lr": self.base_lr}

    def load_state_dict(self, state: Dict[str, float]) -> None:
        """Restore a snapshot written by :meth:`state_dict`.

        Mid-trial resume is bit-identical: the next :meth:`step` computes
        ``compute_lr(step_count + 1)`` from the restored counter and base
        rate, exactly the value the uninterrupted run would have produced.
        """
        missing = {"step_count", "base_lr"} - set(state)
        if missing:
            raise KeyError(
                f"scheduler state is missing {sorted(missing)}; expected a "
                "snapshot from LRScheduler.state_dict()"
            )
        self.step_count = int(state["step_count"])
        self.base_lr = float(state["base_lr"])


class ConstantLR(LRScheduler):
    """Keeps the learning rate fixed (useful as an explicit default)."""

    def compute_lr(self, step: int) -> float:
        return self.base_lr


class LinearWarmupDecay(LRScheduler):
    """Linear warmup to ``base_lr`` followed by linear decay to zero.

    This is the schedule used for BERT fine-tuning in the paper's workload.
    """

    def __init__(self, optimizer: Optimizer, warmup_steps: int, total_steps: int):
        super().__init__(optimizer)
        if total_steps <= 0:
            raise ValueError("total_steps must be positive")
        if warmup_steps < 0 or warmup_steps > total_steps:
            raise ValueError("warmup_steps must be in [0, total_steps]")
        self.warmup_steps = int(warmup_steps)
        self.total_steps = int(total_steps)

    def compute_lr(self, step: int) -> float:
        if self.warmup_steps and step <= self.warmup_steps:
            return self.base_lr * step / self.warmup_steps
        remaining = max(self.total_steps - step, 0)
        denominator = max(self.total_steps - self.warmup_steps, 1)
        return self.base_lr * remaining / denominator


class StepDecay(LRScheduler):
    """Multiplies the learning rate by ``gamma`` every ``step_size`` steps."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1):
        super().__init__(optimizer)
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.step_size = int(step_size)
        self.gamma = float(gamma)

    def compute_lr(self, step: int) -> float:
        return self.base_lr * (self.gamma ** (step // self.step_size))
