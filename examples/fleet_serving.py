"""A model fleet behind one router: shared pool, shared memory budget.

Run with:  python examples/fleet_serving.py

Hydra's serving-side counterpart to model selection: after a search run
publishes many candidate models, all of them can serve *at once* from one
:class:`~repro.serving.FleetRouter` — one replica pool, one device budget —
instead of one dedicated server per model (see docs/router.md):

1. publish four different-width MLPs to a ModelRegistry and bring the whole
   fleet up with one ``serve_fleet`` call, under a device budget smaller
   than the fleet's total parameter bytes;
2. check a routed answer is bit-identical to a dedicated server's, even for
   a model that was evicted cold;
3. drive a skewed traffic mix through the router and read the per-model,
   residency, and scheduler metrics back out.
"""

import tempfile

import numpy as np

from repro.api import serve, serve_fleet
from repro.models import FeedForwardConfig, FeedForwardNetwork
from repro.serving import LoadGenerator, ModelRegistry, warm_up
from repro.utils import format_table, seed_everything

WIDTHS = {"mlp-w24": 24, "mlp-w32": 32, "mlp-w40": 40, "mlp-w48": 48}
NUM_FEATURES = 16
NUM_CLASSES = 4


def build(name: str) -> FeedForwardNetwork:
    width = WIDTHS[name]
    config = FeedForwardConfig(
        input_dim=NUM_FEATURES, hidden_dims=(width, width),
        num_classes=NUM_CLASSES, name=name,
    )
    return FeedForwardNetwork(config, seed=width)


def main() -> None:
    seed_everything(11)

    print("=== 1. Publish four candidates, serve them as one fleet ===")
    registry = ModelRegistry(tempfile.mkdtemp(prefix="repro-fleet-"))
    nbytes = {}
    for name in WIDTHS:
        model = build(name)
        registry.publish(name, model)
        nbytes[name] = sum(p.data.nbytes for p in model.parameters())
    total = sum(nbytes.values())
    # Room for roughly the two largest models: the fleet *must* evict.
    budget = int(0.6 * total)
    print(f"fleet: {len(WIDTHS)} models, {total} parameter bytes total; "
          f"device budget {budget} bytes ({budget / total:.0%})")

    router = serve_fleet(
        registry, build,
        memory_budget=budget, replicas=2,
        max_batch_size=8, compute_batch_size=8, max_queue=256,
    )

    inputs = np.random.default_rng(3).normal(
        size=(64, NUM_FEATURES)).astype(np.float32)

    print("\n=== 2. Routed answers are bit-identical to dedicated servers ===")
    victim = "mlp-w48"
    with serve(build(victim), max_batch_size=8,
               compute_batch_size=8) as dedicated:
        expected = dedicated.request(inputs[:1])
    # Touch every other model first so the victim is the eviction target.
    for name in WIDTHS:
        if name != victim:
            router.request(name, {"features": inputs[:1]})
    got = router.request(victim, {"features": inputs[:1]})
    assert np.array_equal(got, expected), "routed response must be exact"
    print(f"{victim}: routed response matches its dedicated server bit-for-bit")

    print("\n=== 3. Skewed mix through one pool, fair-share scheduled ===")
    for name in WIDTHS:
        warm_up(router.handle(name), inputs[:1], requests=2)
    mix = {"mlp-w24": 5.0, "mlp-w32": 1.0, "mlp-w40": 1.0, "mlp-w48": 1.0}
    report = LoadGenerator(
        router,
        lambda client, index: inputs[(client + index) % len(inputs)][None, :],
        clients=16, requests_per_client=24, mix=mix,
    ).run()
    metrics = router.metrics()
    router.stop()

    print(format_table(
        ["metric", "value"],
        [["completed", report.completed],
         ["throughput", f"{report.throughput_rps:.0f} req/s"],
         ["p99 latency", f"{report.latency['latency_p99_ms']:.2f} ms"],
         ["rows/batch", f"{metrics['fleet']['mean_batch_rows']:.1f}"]],
    ))
    print(format_table(
        ["model", "requests served", "p99 ms"],
        [[name, report.per_model[name],
          f"{metrics['models'][name]['latency_p99_ms']:.2f}"]
         for name in sorted(WIDTHS)],
    ))
    residency = metrics["residency"]
    scheduler = metrics["scheduler"]
    print(f"residency: {len(residency['resident_models'])} of {len(WIDTHS)} models "
          f"on device ({residency['resident_bytes']} / {budget} bytes); "
          f"{residency['evictions']} evictions, {residency['restores']} restores")
    print(f"scheduler: {scheduler['batches_dispatched']} batches, "
          f"{scheduler['stalls']} stalls")
    assert residency["evictions"] > 0, "the budget should have forced churn"
    print("four models, one pool, one budget: OK")


if __name__ == "__main__":
    main()
