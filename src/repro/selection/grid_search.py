"""Exhaustive grid search (legacy function shim).

The implementation now lives in :class:`repro.api.searchers.GridSearcher`;
this function survives for backward compatibility and for the common case of
searching over a plain callable objective.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.selection.experiment import SelectionResult, TrialConfig
from repro.selection.search_space import SearchSpace

#: a train function receives (config, num_epochs) and returns a metrics dict
TrainFn = Callable[[TrialConfig, int], Dict[str, float]]


def grid_search(
    search_space: SearchSpace,
    train_fn: TrainFn,
    num_epochs: int = 1,
    objective: str = "loss",
    mode: str = "min",
    max_trials: Optional[int] = None,
) -> SelectionResult:
    """Train every configuration on the Cartesian grid and rank by ``objective``.

    This is the workload shape the paper's motivating example describes (a
    radiologist comparing dozens of configurations): an embarrassingly
    parallel set of independent training jobs.
    """
    from repro.api import Budget, Experiment, FunctionBackend, GridSearcher

    experiment = Experiment(
        space=search_space,
        searcher=GridSearcher(max_trials=max_trials),
        backend=FunctionBackend(train_fn),
        objective=objective,
        mode=mode,
        budget=Budget(epochs_per_trial=num_epochs),
        name="grid_search",
    )
    return experiment.run()
