"""E5 — Desideratum D1: device utilization across strategies and model counts.

Hydra's first desideratum is maximising device utilization during multi-model
training.  This benchmark sweeps the number of candidate BERT-Large
configurations on the 4-GPU paper testbed and reports cluster utilization for
classic model parallelism versus shard parallelism (task parallelism is
infeasible at this scale — the model does not fit one device).
"""

import pytest

from benchmarks.conftest import bert_large_jobs, print_report
from repro.scheduler import ModelParallelStrategy, ShardParallelStrategy

MODEL_COUNTS = (1, 2, 4, 8)


@pytest.mark.benchmark(group="utilization")
def test_utilization_vs_model_count(benchmark, paper_cluster):
    def sweep():
        results = {}
        for num_models in MODEL_COUNTS:
            jobs = bert_large_jobs(num_models, batches=2)
            paper_cluster.reset()
            mp = ModelParallelStrategy().schedule(jobs, paper_cluster)
            paper_cluster.reset()
            sp = ShardParallelStrategy().schedule(bert_large_jobs(num_models, batches=2),
                                                  paper_cluster)
            results[num_models] = (mp, sp)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    for num_models, (mp, sp) in results.items():
        rows.append([
            num_models,
            f"{mp.cluster_utilization:.3f}",
            f"{sp.cluster_utilization:.3f}",
            f"{sp.cluster_utilization / mp.cluster_utilization:.2f}x",
        ])
    print_report(
        "Desideratum D1 — cluster utilization, BERT-Large model selection on 4x V100 "
        "(model parallelism idles; shard parallelism approaches full utilization)",
        ["num_models", "model_parallel_util", "shard_parallel_util", "improvement"],
        rows,
    )

    for num_models, (mp, sp) in results.items():
        assert mp.cluster_utilization < 0.45
        if num_models >= 4:
            # With at least one model per device, Hydra keeps devices busy.
            assert sp.cluster_utilization > 0.7
            assert sp.cluster_utilization > 2 * mp.cluster_utilization
    # Utilization grows with the number of independent models available.
    shard_utils = [sp.cluster_utilization for _, sp in results.values()]
    assert shard_utils[-1] > shard_utils[0]
