"""Baseline: task parallelism — one whole model per device at a time.

This is the regime of Ray Tune / Vizier style model selection: trials are
independent processes pinned to whole GPUs.  It parallelises perfectly across
models but (a) cannot train a model whose working set exceeds one device and
(b) leaves devices idle once their queue of models drains (the "tail" effect
Figure 2 illustrates).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.cluster.cluster import Cluster
from repro.exceptions import SchedulingError
from repro.scheduler.base import ScheduleResult, Strategy
from repro.scheduler.placement import Placement
from repro.scheduler.task import ShardTask, TrainingJob, build_task_graph


class TaskParallelStrategy(Strategy):
    """Round-robin whole models across devices; serialise models sharing a device."""

    name = "task-parallel"

    def schedule(self, jobs: Sequence[TrainingJob], cluster: Cluster) -> ScheduleResult:
        jobs = list(jobs)
        if not jobs:
            raise SchedulingError("no jobs to schedule")
        devices = cluster.devices
        placement = Placement()
        tasks_by_job: Dict[str, List[ShardTask]] = {}
        queue_per_device: Dict[str, List[TrainingJob]] = {d.name: [] for d in devices}
        peak_demand: Dict[str, int] = {d.name: 0 for d in devices}

        for index, job in enumerate(jobs):
            device = devices[index % len(devices)]
            working = sum(shard.working_bytes for shard in job.plan.shards)
            if working > device.spec.memory_bytes:
                raise SchedulingError(
                    f"task parallelism cannot train model {job.model_id!r}: it needs "
                    f"{working / 2**30:.2f} GiB on a single device but {device.name!r} has "
                    f"{device.spec.memory_bytes / 2**30:.2f} GiB — the model must be sharded"
                )
            peak_demand[device.name] = max(peak_demand[device.name], working)
            for shard in job.plan.shards:
                placement.assign(job.model_id, shard.index, device.name)
            tasks_by_job[job.model_id] = build_task_graph(job)
            queue_per_device[device.name].append(job)

        # Jobs queued on the same device run one after another.
        extra_deps: Dict[str, List[str]] = {}
        for queue in queue_per_device.values():
            for previous, current in zip(queue, queue[1:]):
                extra = self.job_boundary_deps([previous], [current], tasks_by_job)
                for task_id, deps in extra.items():
                    extra_deps.setdefault(task_id, []).extend(deps)

        all_tasks = [task for job in jobs for task in tasks_by_job[job.model_id]]
        sim_tasks = self.to_sim_tasks(
            all_tasks, placement, extra_deps=extra_deps, track_activation_memory=False
        )
        trace = self._simulate(cluster, sim_tasks)
        trace.peak_memory_bytes = peak_demand
        return ScheduleResult(strategy=self.name, trace=trace, jobs=jobs, placements=[placement])
