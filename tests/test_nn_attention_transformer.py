"""Tests for multi-head attention and transformer encoder blocks."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn import MultiHeadSelfAttention, TransformerEncoder, TransformerEncoderLayer


def random_hidden(batch=2, seq=5, hidden=8, seed=0):
    return Tensor(
        np.random.default_rng(seed).normal(size=(batch, seq, hidden)).astype(np.float32),
        requires_grad=True,
    )


class TestMultiHeadSelfAttention:
    def test_output_shape_preserved(self):
        attn = MultiHeadSelfAttention(8, 2, dropout=0.0, rng=np.random.default_rng(0))
        out = attn(random_hidden())
        assert out.shape == (2, 5, 8)

    def test_hidden_size_must_divide_heads(self):
        with pytest.raises(ValueError):
            MultiHeadSelfAttention(10, 3)

    def test_gradients_reach_all_projections(self):
        attn = MultiHeadSelfAttention(8, 2, dropout=0.0, rng=np.random.default_rng(0))
        out = attn(random_hidden())
        out.sum().backward()
        for name, param in attn.named_parameters():
            assert param.grad is not None, name
            assert np.isfinite(param.grad).all(), name

    def test_attention_mask_blocks_padding_positions(self):
        attn = MultiHeadSelfAttention(8, 2, dropout=0.0, rng=np.random.default_rng(0))
        x = random_hidden(batch=1, seq=4)
        mask_full = np.array([[True, True, True, True]])
        mask_padded = np.array([[True, True, False, False]])
        out_full = attn(x, attention_mask=mask_full)
        out_padded = attn(Tensor(x.data), attention_mask=mask_padded)
        # Masking the last two keys must change the attended representation.
        assert not np.allclose(out_full.data, out_padded.data, atol=1e-6)

    def test_masked_positions_do_not_influence_valid_outputs(self):
        attn = MultiHeadSelfAttention(8, 2, dropout=0.0, rng=np.random.default_rng(0))
        base = np.random.default_rng(1).normal(size=(1, 4, 8)).astype(np.float32)
        modified = base.copy()
        modified[0, 3, :] += 100.0  # perturb a masked (padding) position
        mask = np.array([[True, True, True, False]])
        out_base = attn(Tensor(base), attention_mask=mask)
        out_modified = attn(Tensor(modified), attention_mask=mask)
        assert np.allclose(out_base.data[0, :3], out_modified.data[0, :3], atol=1e-4)

    def test_bad_mask_shape_raises(self):
        attn = MultiHeadSelfAttention(8, 2, dropout=0.0)
        with pytest.raises(ValueError):
            attn(random_hidden(), attention_mask=np.ones((2, 9), dtype=bool))

    def test_deterministic_given_seed(self):
        a = MultiHeadSelfAttention(8, 4, dropout=0.0, rng=np.random.default_rng(3))
        b = MultiHeadSelfAttention(8, 4, dropout=0.0, rng=np.random.default_rng(3))
        x = random_hidden(seed=2)
        assert np.allclose(a(x).data, b(Tensor(x.data)).data)


class TestTransformerEncoderLayer:
    def test_shape_preserved_and_grads_flow(self):
        layer = TransformerEncoderLayer(8, 2, 16, dropout=0.0, rng=np.random.default_rng(0))
        x = random_hidden()
        out = layer(x)
        assert out.shape == x.shape
        out.sum().backward()
        assert all(p.grad is not None for p in layer.parameters())

    def test_parameter_count_formula(self):
        hidden, heads, inter = 8, 2, 16
        layer = TransformerEncoderLayer(hidden, heads, inter, rng=np.random.default_rng(0))
        attention = 4 * (hidden * hidden + hidden)
        ffn = hidden * inter + inter + inter * hidden + hidden
        norms = 2 * (2 * hidden)
        assert layer.num_parameters() == attention + ffn + norms

    def test_mask_passed_through(self):
        layer = TransformerEncoderLayer(8, 2, 16, dropout=0.0, rng=np.random.default_rng(0))
        x = random_hidden(batch=1, seq=4)
        mask = np.array([[True, True, True, False]])
        out = layer(x, attention_mask=mask)
        assert out.shape == (1, 4, 8)

    def test_output_is_layer_normalised(self):
        layer = TransformerEncoderLayer(16, 4, 32, dropout=0.0, rng=np.random.default_rng(0))
        out = layer(random_hidden(hidden=16))
        assert np.allclose(out.data.mean(axis=-1), 0.0, atol=1e-4)


class TestTransformerEncoder:
    def test_stacks_requested_number_of_layers(self):
        encoder = TransformerEncoder(3, 8, 2, 16, dropout=0.0, rng=np.random.default_rng(0))
        assert len(encoder.layers) == 3
        out = encoder(random_hidden())
        assert out.shape == (2, 5, 8)

    def test_zero_layers_is_identity(self):
        encoder = TransformerEncoder(0, 8, 2, 16)
        x = random_hidden()
        assert np.array_equal(encoder(x).data, x.data)
