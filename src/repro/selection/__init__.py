"""Model selection: search spaces, search drivers, and Cerebro-style hopping."""

from repro.selection.search_space import Choice, Uniform, LogUniform, SearchSpace
from repro.selection.experiment import (
    ExperimentTracker,
    FailedTrial,
    SelectionResult,
    TrialConfig,
    TrialResult,
)
from repro.selection.grid_search import grid_search
from repro.selection.random_search import random_search
from repro.selection.successive_halving import successive_halving
from repro.selection.cerebro import CerebroModelHopper

__all__ = [
    "Choice",
    "Uniform",
    "LogUniform",
    "SearchSpace",
    "TrialConfig",
    "TrialResult",
    "FailedTrial",
    "SelectionResult",
    "ExperimentTracker",
    "grid_search",
    "random_search",
    "successive_halving",
    "CerebroModelHopper",
]
