"""Profiling entry points.

``profile_config`` works from an architecture description alone (used for
BERT-Large-scale simulation); ``profile_model`` profiles an instantiated
:class:`~repro.models.base.ShardableModel` and cross-checks the analytical
parameter count against the real parameter count where possible.
"""

from __future__ import annotations

from typing import Optional

from repro.profiling.cost_model import ModelProfile


def profile_config(config, batch_size: int = 1, seq_len: Optional[int] = None) -> ModelProfile:
    """Profile an architecture config (``FeedForwardConfig`` or ``BertConfig``).

    Any object exposing ``profile()`` / ``block_costs()`` works; sequence
    models accept ``seq_len``.
    """
    if hasattr(config, "profile"):
        try:
            return config.profile(seq_len) if seq_len is not None else config.profile()
        except TypeError:
            return config.profile()
    raise TypeError(f"object of type {type(config).__name__} is not profilable")


def profile_model(model, batch_size: int = 1, seq_len: Optional[int] = None) -> ModelProfile:
    """Profile an instantiated shardable model."""
    if seq_len is not None:
        try:
            return model.profile(batch_size=batch_size, seq_len=seq_len)
        except TypeError:
            pass
    return model.profile(batch_size=batch_size)
