"""Mini-batch loading."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional

import numpy as np

from repro.data.dataset import Dataset
from repro.utils.rng import get_rng


@dataclass
class Batch:
    """A stacked mini-batch: field name -> array of shape (batch, ...)."""

    arrays: Dict[str, np.ndarray] = field(default_factory=dict)

    def __getitem__(self, name: str) -> np.ndarray:
        return self.arrays[name]

    def __contains__(self, name: str) -> bool:
        return name in self.arrays

    @property
    def size(self) -> int:
        """Number of examples in the batch."""
        first = next(iter(self.arrays.values()))
        return len(first)

    def keys(self):
        return self.arrays.keys()


class DataLoader:
    """Iterates a dataset in mini-batches.

    Shuffling uses a private generator seeded per epoch from ``seed`` so the
    batch order is reproducible and identical between the sharded and
    unsharded training runs compared in the gradient-parity experiments.
    """

    def __init__(
        self,
        dataset: Dataset,
        batch_size: int = 32,
        shuffle: bool = False,
        drop_last: bool = False,
        seed: Optional[int] = None,
    ):
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.dataset = dataset
        self.batch_size = int(batch_size)
        self.shuffle = bool(shuffle)
        self.drop_last = bool(drop_last)
        self.seed = seed
        self._epoch = 0

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def set_epoch(self, epoch: int) -> None:
        """Set the epoch counter used to derive the shuffle order."""
        self._epoch = int(epoch)

    def __iter__(self) -> Iterator[Batch]:
        n = len(self.dataset)
        epoch = self._epoch
        self._epoch += 1
        indices = np.arange(n)
        if self.shuffle:
            if self.seed is not None:
                generator = np.random.default_rng((self.seed, epoch))
            else:
                generator = get_rng()
            indices = generator.permutation(n)
        return self._batches(indices)

    def _batches(self, indices: np.ndarray) -> Iterator[Batch]:
        n = len(indices)
        for start in range(0, n, self.batch_size):
            chunk = indices[start:start + self.batch_size]
            if self.drop_last and len(chunk) < self.batch_size:
                break
            examples = [self.dataset[int(i)] for i in chunk]
            stacked = {
                name: np.stack([np.asarray(example[name]) for example in examples])
                for name in examples[0]
            }
            yield Batch(stacked)
