"""Cerebro-style model hopping on real data partitions.

Cerebro (Nakandala et al.) shards the *dataset* across workers and hops
models between workers between sub-epochs, so every model sees all the data
once per epoch while data never moves.  The paper names Cerebro as the model
selection system Hydra integrates with; this module implements the hopper on
the real (numpy) execution path, and the scheduler-level counterpart lives in
:class:`repro.scheduler.hybrid.HybridShardDataParallelStrategy`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.data.dataloader import DataLoader
from repro.data.dataset import Dataset
from repro.data.partition import partition_dataset
from repro.exceptions import SchedulingError
from repro.models.base import ShardableModel
from repro.optim.optimizer import Optimizer
from repro.training.metrics import MetricTracker
from repro.training.sharded_trainer import ShardedModelExecutor
from repro.training.trainer import TrainingReport


@dataclass
class _HopperSlot:
    model_id: str
    executor: ShardedModelExecutor
    optimizer: Optimizer
    report: TrainingReport
    tracker: MetricTracker = field(default_factory=MetricTracker)


class CerebroModelHopper:
    """Train several (optionally sharded) models by hopping them across data partitions."""

    def __init__(
        self,
        dataset: Dataset,
        num_workers: int,
        batch_size: int = 32,
        shuffle: bool = True,
        seed: int = 0,
        pool=None,
    ):
        if num_workers <= 0:
            raise SchedulingError("num_workers must be positive")
        self.num_workers = int(num_workers)
        self.batch_size = int(batch_size)
        self.partitions = partition_dataset(dataset, self.num_workers, shuffle=shuffle, seed=seed)
        self.loaders = [
            DataLoader(partition, batch_size=batch_size, shuffle=shuffle, seed=seed + index)
            for index, partition in enumerate(self.partitions)
        ]
        self._slots: List[_HopperSlot] = []
        # Optional worker pool (anything with submit(fn, ...) -> Future, e.g.
        # repro.api.runtime.WorkerPool).  When set, each sub-epoch's per-worker
        # queues run concurrently — true hop-parallelism: data-parallel workers
        # each training their currently-hosted model at the same time.
        self.pool = pool

    def add_model(
        self,
        model: ShardableModel,
        optimizer: Optimizer,
        boundaries: Optional[Sequence[Tuple[int, int]]] = None,
        model_id: Optional[str] = None,
    ) -> None:
        """Register a model; ``boundaries`` defaults to a single shard (no model parallelism)."""
        if boundaries is None:
            boundaries = [(0, model.num_blocks())]
        executor = ShardedModelExecutor(model, boundaries)
        model_id = model_id or model.model_name
        self._slots.append(
            _HopperSlot(
                model_id=model_id,
                executor=executor,
                optimizer=optimizer,
                report=TrainingReport(model_id=model_id),
            )
        )

    @property
    def num_models(self) -> int:
        return len(self._slots)

    def hop_schedule(self, epoch: int) -> List[List[Tuple[int, int]]]:
        """Per sub-epoch list of ``(model_index, worker_index)`` assignments.

        The schedule is a Latin square: in sub-epoch ``s`` model ``m`` visits
        worker ``(m + s + epoch) % num_workers``, so over one epoch each model
        sees every partition exactly once and no worker hosts two models in
        the same sub-epoch (when ``num_models <= num_workers``).
        """
        schedule: List[List[Tuple[int, int]]] = []
        for sub_epoch in range(self.num_workers):
            assignments = [
                (model_index, (model_index + sub_epoch + epoch) % self.num_workers)
                for model_index in range(self.num_models)
            ]
            schedule.append(assignments)
        return schedule

    def _train_assignment(self, model_index: int, worker_index: int, epoch: int) -> None:
        """Train one hopped model on one worker's partition for one sub-epoch."""
        slot = self._slots[model_index]
        loader = self.loaders[worker_index]
        loader.set_epoch(epoch)
        for batch in loader:
            loss = slot.executor.train_step(batch, slot.optimizer)
            slot.tracker.update(loss=loss)

    def _train_worker_queue(
        self, worker_index: int, model_indices: Sequence[int], epoch: int
    ) -> None:
        """Run one worker's sub-epoch queue in model order (loader stays
        single-threaded, and each model's update order matches the serial
        hopper exactly — parallel hopping is numerically identical)."""
        for model_index in model_indices:
            self._train_assignment(model_index, worker_index, epoch)

    def train_epoch(self, epoch: int = 0) -> Dict[str, Dict[str, float]]:
        """One full epoch: every model visits every partition exactly once.

        With a ``pool``, the workers of each sub-epoch train concurrently;
        sub-epochs remain barriers (a model must leave a worker before it can
        hop to the next), matching Cerebro's execution model.
        """
        if not self._slots:
            raise SchedulingError("no models registered")
        for assignments in self.hop_schedule(epoch):
            if self.pool is None:
                for model_index, worker_index in assignments:
                    self._train_assignment(model_index, worker_index, epoch)
            else:
                queues: Dict[int, List[int]] = {}
                for model_index, worker_index in assignments:
                    queues.setdefault(worker_index, []).append(model_index)
                futures = [
                    self.pool.submit(self._train_worker_queue, worker_index, queue, epoch)
                    for worker_index, queue in sorted(queues.items())
                ]
                for future in futures:
                    future.result()
        results: Dict[str, Dict[str, float]] = {}
        for slot in self._slots:
            metrics = slot.tracker.end_epoch()
            slot.report.epochs.append(metrics)
            results[slot.model_id] = metrics
        return results

    def fit(self, num_epochs: int = 1) -> Dict[str, TrainingReport]:
        for epoch in range(num_epochs):
            self.train_epoch(epoch)
        return {slot.model_id: slot.report for slot in self._slots}
