"""Shared utilities: RNG management, logging, formatting, serialization."""

from repro.utils.rng import RandomState, get_rng, seed_everything, temporary_seed
from repro.utils.logging import get_log_context, get_logger, log_context, set_verbosity
from repro.utils.tabulate import format_table
from repro.utils.serialization import to_json, from_json

__all__ = [
    "RandomState",
    "get_rng",
    "seed_everything",
    "temporary_seed",
    "get_log_context",
    "get_logger",
    "log_context",
    "set_verbosity",
    "format_table",
    "to_json",
    "from_json",
]
