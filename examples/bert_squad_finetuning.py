"""The paper's heavy workload: BERT fine-tuning for span extraction (SQuAD-style).

Run with:  python examples/bert_squad_finetuning.py

Two parts, mirroring the two execution backends of the library:

1. **Simulation at paper scale** — BERT-Large (340M parameters, sequence
   length 384, batch 32) fine-tuned for 3 epochs of a SQuAD-sized workload on
   the 4x16 GB V100 testbed.  The model does not fit one GPU, so task
   parallelism is infeasible; we compare classic model parallelism against
   Hydra's shard parallelism for an 8-configuration selection run.
2. **Real execution at tiny scale** — a BERT-tiny model is really fine-tuned
   on synthetic span-extraction data with the sharded executor, demonstrating
   that sharded fine-tuning learns exactly like single-device fine-tuning.
"""

import numpy as np

from repro import HydraConfig, HydraSession
from repro.data import DataLoader, SyntheticSpanDataset
from repro.models import BertConfig, BertForSpanPrediction
from repro.optim import AdamW, LinearWarmupDecay
from repro.training import ShardedModelExecutor
from repro.utils import format_table, seed_everything

GIB = 1024 ** 3

#: SQuAD v1.1 has ~88k training examples; at batch 32 that is ~2,740 steps/epoch.
#: The simulation uses a scaled-down number of steps so the demo finishes quickly,
#: while keeping the 3-epoch structure of the paper's experiment.
SIMULATED_STEPS_PER_EPOCH = 6
SIMULATED_EPOCHS = 3
NUM_CANDIDATES = 8


def simulate_paper_scale_selection() -> None:
    print("\n=== 1. Simulated BERT-Large fine-tuning (paper scale) ===")
    session = HydraSession(HydraConfig(num_devices=4, gpu="v100-16gb"))
    profile = BertConfig.bert_large().profile(seq_len=384)
    print(f"BERT-Large profile: {profile.total_params / 1e6:.0f}M params, "
          f"{len(profile)} blocks, "
          f"{profile.total_memory_bytes(32) / GIB:.1f} GiB working set at batch 32")

    jobs = [
        session.make_job(f"bert-large-lr{i}", profile, num_epochs=SIMULATED_EPOCHS,
                         batches_per_epoch=SIMULATED_STEPS_PER_EPOCH, batch_size=32,
                         num_shards=4)
        for i in range(NUM_CANDIDATES)
    ]
    outcomes = session.compare_strategies(
        jobs, strategies=("task-parallel", "model-parallel", "shard-parallel")
    )
    rows = []
    for name, outcome in outcomes.items():
        if not outcome.feasible:
            rows.append([name, "infeasible: BERT-Large exceeds one 16 GiB GPU", "-", "-"])
            continue
        result = outcome.unwrap()
        rows.append([
            name, f"{result.makespan / 60:.1f} min", f"{result.cluster_utilization:.2f}",
            f"{result.throughput_samples_per_second:.1f}",
        ])
    print(format_table(["strategy", "simulated time", "utilization", "samples/s"], rows,
                       title=f"{NUM_CANDIDATES} BERT-Large candidates, "
                             f"{SIMULATED_EPOCHS} epochs x {SIMULATED_STEPS_PER_EPOCH} steps"))
    shard = outcomes["shard-parallel"].unwrap()
    model = outcomes["model-parallel"].unwrap()
    print(f"Hydra speedup over classic model parallelism: {shard.speedup_over(model):.2f}x")


def finetune_tiny_bert_for_real() -> None:
    print("\n=== 2. Real sharded fine-tuning of BERT-tiny on synthetic spans ===")
    config = BertConfig.tiny(vocab_size=96, seq_len=48)
    dataset = SyntheticSpanDataset(num_samples=160, seq_len=48, vocab_size=96,
                                   rng=np.random.default_rng(1))
    eval_loader = DataLoader(dataset, batch_size=32)

    model = BertForSpanPrediction(config, seed=0)
    # Shard boundaries: embeddings | encoder layers | span head.
    executor = ShardedModelExecutor(model, [(0, 1), (1, 1 + config.num_layers),
                                            (1 + config.num_layers, model.num_blocks())])
    loader = DataLoader(dataset, batch_size=16, shuffle=True, seed=0)
    optimizer = AdamW(model.parameters(), lr=5e-3, weight_decay=0.01)
    total_steps = len(loader) * 3
    scheduler = LinearWarmupDecay(optimizer, warmup_steps=total_steps // 10,
                                  total_steps=total_steps)

    rows = []
    for epoch in range(3):
        loader.set_epoch(epoch)
        losses = []
        for batch in loader:
            losses.append(executor.train_step(batch, optimizer))
            scheduler.step()
        model.eval()
        accuracies = []
        for batch in eval_loader:
            outputs = executor.forward_only(batch)
            accuracies.append(model.span_accuracy(outputs, batch))
        model.train()
        rows.append([epoch, f"{np.mean(losses):.4f}", f"{np.mean(accuracies):.3f}"])
    print(format_table(["epoch", "train loss", "span exact-match"], rows,
                       title="BERT-tiny, 3 shards, 3 epochs"))


def main() -> None:
    seed_everything(0)
    simulate_paper_scale_selection()
    finetune_tiny_bert_for_real()


if __name__ == "__main__":
    main()
