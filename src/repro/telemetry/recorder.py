"""The span/trace recorder: monotonic spans with parent links, any process.

One :class:`Telemetry` instance records *spans* (named intervals with
``time.monotonic()`` start/end stamps, process/thread ids, and a link to the
enclosing span) and *instant events* into a bounded in-memory buffer, and
owns one :class:`~repro.telemetry.metrics.MetricsRegistry`.  Everything in
the buffer is a plain picklable dict, which is what makes cross-process
collection trivial: a spawn child records into its own ``Telemetry``,
:meth:`drain`\\ s the buffer into its result message, and the parent
:meth:`ingest`\\ s the dicts into its own timeline.  On Linux
``CLOCK_MONOTONIC`` is system-wide, so child timestamps land directly on
the parent's time axis without clock translation.

Two recording shapes:

* ``with tel.span("trial", trial_id=...):`` — lexically nested work.  The
  context manager pushes onto a thread-local stack, so spans opened inside
  it become its children automatically.
* ``token = tel.begin("step", ...); ...; tel.end(token)`` — interleaved
  work (the shard-parallel trainer runs many models' steps concurrently on
  one thread), where spans overlap and cannot nest lexically.  ``begin``
  captures the current stack top as the parent but does not push.

The disabled path is :class:`NullTelemetry` — a picklable singleton whose
``span`` returns one shared no-op context manager.  Instrumentation sites
guard with a single ``if tel.enabled:`` branch, which the E16 benchmark
(``benchmarks/test_bench_telemetry.py``) holds to <3% overhead on the
training hotpath and the serving loop.

Export targets: :meth:`Telemetry.export_chrome_trace` writes the Chrome /
Perfetto ``trace.json`` format (load it at ``ui.perfetto.dev`` or
``chrome://tracing``); :meth:`Telemetry.export_jsonl` writes one event per
line for programmatic consumers.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from typing import Any, Dict, Iterable, List, Optional

from repro.telemetry.metrics import MetricsRegistry

#: default bound on the in-memory event buffer; overflow increments
#: ``Telemetry.dropped`` instead of growing without limit
DEFAULT_MAX_EVENTS = 200_000


class _SpanToken:
    """An open span: returned by ``begin`` / yielded by ``span``."""

    __slots__ = ("name", "cat", "attrs", "start", "span_id", "parent_id", "tid")

    def __init__(
        self,
        name: str,
        cat: str,
        attrs: Dict[str, Any],
        start: float,
        span_id: str,
        parent_id: Optional[str],
        tid: int,
    ):
        self.name = name
        self.cat = cat
        self.attrs = attrs
        self.start = start
        self.span_id = span_id
        self.parent_id = parent_id
        self.tid = tid


class _Span:
    """Context-manager shape of a span (pushes onto the thread-local stack)."""

    __slots__ = ("_telemetry", "_token")

    def __init__(self, telemetry: "Telemetry", token: _SpanToken):
        self._telemetry = telemetry
        self._token = token

    def __enter__(self) -> _SpanToken:
        self._telemetry._stack().append(self._token)
        return self._token

    def __exit__(self, *exc_info: Any) -> bool:
        stack = self._telemetry._stack()
        if stack and stack[-1] is self._token:
            stack.pop()
        else:  # pragma: no cover - exit out of order (generator teardown)
            try:
                stack.remove(self._token)
            except ValueError:
                pass
        self._telemetry.end(self._token)
        return False


class _NullSpan:
    """The shared no-op span of :class:`NullTelemetry`."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Telemetry:
    """Records spans, instants, and metrics for one process (see module docstring).

    Example::

        tel = Telemetry()
        with tel.span("experiment", name="demo"):
            with tel.span("trial", trial_id="grid-0"):
                ...
        tel.export_chrome_trace("trace.json")

    ``max_events`` bounds the buffer; past it new events are counted in
    :attr:`dropped` and discarded (never torn — an event is either whole in
    the buffer or absent).  The instance is thread-safe but deliberately
    not picklable: cross the process boundary with an ``enabled`` flag and
    :meth:`drain`/:meth:`ingest`, never with the recorder object.
    """

    enabled = True

    def __init__(self, max_events: int = DEFAULT_MAX_EVENTS):
        self._lock = threading.Lock()
        self._events: List[Dict[str, Any]] = []
        self._max_events = int(max_events)
        self.dropped = 0
        self._pid = os.getpid()
        self._ids = itertools.count(1)
        self._tls = threading.local()
        self.metrics = MetricsRegistry()

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def _stack(self) -> List[_SpanToken]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def _open(self, name: str, cat: str, attrs: Dict[str, Any]) -> _SpanToken:
        stack = self._stack()
        parent = stack[-1].span_id if stack else None
        return _SpanToken(
            name=name,
            cat=cat,
            attrs=attrs,
            start=time.monotonic(),
            span_id=f"{self._pid}:{next(self._ids)}",
            parent_id=parent,
            tid=threading.get_ident(),
        )

    def span(self, name: str, cat: str = "repro", **attrs: Any) -> _Span:
        """A context manager recording one nested span."""
        return _Span(self, self._open(name, cat, attrs))

    def begin(self, name: str, cat: str = "repro", **attrs: Any) -> _SpanToken:
        """Open an interleaved span (closed by :meth:`end`; never stacked)."""
        return self._open(name, cat, attrs)

    def end(self, token: _SpanToken) -> None:
        """Close a span and commit it to the buffer."""
        self._append(
            {
                "name": token.name,
                "cat": token.cat,
                "ph": "X",
                "ts": token.start,
                "dur": time.monotonic() - token.start,
                "pid": self._pid,
                "tid": token.tid,
                "id": token.span_id,
                "parent": token.parent_id,
                "args": token.attrs,
            }
        )

    def event(self, name: str, cat: str = "repro", **attrs: Any) -> None:
        """Record one instant (zero-duration) event."""
        stack = self._stack()
        self._append(
            {
                "name": name,
                "cat": cat,
                "ph": "i",
                "ts": time.monotonic(),
                "pid": self._pid,
                "tid": threading.get_ident(),
                "id": f"{self._pid}:{next(self._ids)}",
                "parent": stack[-1].span_id if stack else None,
                "args": attrs,
            }
        )

    def _append(self, event: Dict[str, Any]) -> None:
        with self._lock:
            if len(self._events) >= self._max_events:
                self.dropped += 1
                return
            self._events.append(event)

    # ------------------------------------------------------------------ #
    # Cross-process collection
    # ------------------------------------------------------------------ #
    def drain(self) -> List[Dict[str, Any]]:
        """Take (and clear) the buffered events — the child side of a flush."""
        with self._lock:
            events, self._events = self._events, []
        return events

    def ingest(self, events: Iterable[Dict[str, Any]]) -> None:
        """Merge events drained from another recorder (typically a child).

        Events keep their original pid/tid/ids, so a Chrome trace shows the
        child's spans in the child's own process track.  Only whole dicts
        arrive (the flush rides a completed result message), so a killed
        child loses its unflushed buffer but can never tear the timeline.
        """
        with self._lock:
            for event in events:
                if len(self._events) >= self._max_events:
                    self.dropped += 1
                    continue
                self._events.append(dict(event))

    def events(self) -> List[Dict[str, Any]]:
        """A snapshot copy of the buffered events."""
        with self._lock:
            return [dict(event) for event in self._events]

    # ------------------------------------------------------------------ #
    # Metrics facade
    # ------------------------------------------------------------------ #
    def counter(self, name: str, value: float = 1.0) -> None:
        """Increment a named monotonic counter."""
        self.metrics.counter(name, value)

    def gauge(self, name: str, value: float) -> None:
        """Set a named gauge to its latest value."""
        self.metrics.gauge(name, value)

    def observe(self, name: str, value: float) -> None:
        """Add one observation to a named histogram."""
        self.metrics.observe(name, value)

    def register_collector(self, name: str, fn) -> None:
        """Register a callback polled at snapshot time (absorbs live stats)."""
        self.metrics.register_collector(name, fn)

    def metrics_snapshot(self) -> Dict[str, Any]:
        """The registry's unified snapshot (see :mod:`repro.telemetry.schema`)."""
        return self.metrics.snapshot()

    def prometheus_text(self) -> str:
        """The registry in Prometheus text exposition format."""
        return self.metrics.prometheus_text()

    # ------------------------------------------------------------------ #
    # Export
    # ------------------------------------------------------------------ #
    def _origin(self, events: List[Dict[str, Any]]) -> float:
        return min((event["ts"] for event in events), default=0.0)

    def export_chrome_trace(self, path) -> str:
        """Write the buffer as Chrome/Perfetto ``trace.json``; return the path.

        Spans become complete (``"X"``) events, instants become ``"i"``
        events, and each distinct pid gets a ``process_name`` metadata row
        (``main`` for this recorder's process, ``child`` for ingested ones).
        Timestamps are microseconds relative to the earliest event.
        """
        events = self.events()
        origin = self._origin(events)
        trace: List[Dict[str, Any]] = []
        for pid in sorted({event["pid"] for event in events}):
            label = "main" if pid == self._pid else "child"
            trace.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": f"{label} (pid {pid})"},
                }
            )
        for event in events:
            row: Dict[str, Any] = {
                "name": event["name"],
                "cat": event["cat"],
                "ph": event["ph"],
                "ts": (event["ts"] - origin) * 1e6,
                "pid": event["pid"],
                "tid": event["tid"],
                "args": dict(event["args"], id=event["id"], parent=event["parent"]),
            }
            if event["ph"] == "X":
                row["dur"] = event["dur"] * 1e6
            else:
                row["s"] = "t"
            trace.append(row)
        payload = {"traceEvents": trace, "displayTimeUnit": "ms"}
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        return str(path)

    def export_jsonl(self, path) -> str:
        """Write the buffer as one JSON event per line; return the path.

        Timestamps are seconds relative to the earliest event (monotonic
        origin), durations are seconds; everything else is the raw event.
        """
        events = self.events()
        origin = self._origin(events)
        with open(path, "w", encoding="utf-8") as handle:
            for event in events:
                row = dict(event, ts=event["ts"] - origin)
                handle.write(json.dumps(row) + "\n")
        return str(path)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        with self._lock:
            return (
                f"Telemetry({len(self._events)} events, dropped={self.dropped}, "
                f"pid={self._pid})"
            )


def _null_telemetry() -> "NullTelemetry":
    return NULL_TELEMETRY


class NullTelemetry:
    """The disabled recorder: every operation is a no-op.

    There is one shared instance, :data:`NULL_TELEMETRY`; it pickles back
    to itself, so backends carrying it cross process boundaries for free.
    Instrumentation sites check :attr:`enabled` once and skip the recording
    calls entirely — this class exists so *unguarded* calls are still safe.
    """

    enabled = False

    def span(self, name: str, cat: str = "repro", **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def begin(self, name: str, cat: str = "repro", **attrs: Any) -> None:
        return None

    def end(self, token: Any) -> None:
        pass

    def event(self, name: str, cat: str = "repro", **attrs: Any) -> None:
        pass

    def drain(self) -> List[Dict[str, Any]]:
        return []

    def ingest(self, events: Iterable[Dict[str, Any]]) -> None:
        pass

    def events(self) -> List[Dict[str, Any]]:
        return []

    def counter(self, name: str, value: float = 1.0) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def register_collector(self, name: str, fn) -> None:
        pass

    def metrics_snapshot(self) -> Dict[str, Any]:
        return {"counters": {}, "gauges": {}, "histograms": {}, "collectors": {}}

    def prometheus_text(self) -> str:
        return ""

    def __reduce__(self):
        return (_null_telemetry, ())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NullTelemetry()"


#: the shared disabled recorder every instrumented component defaults to
NULL_TELEMETRY = NullTelemetry()
