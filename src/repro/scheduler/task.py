"""Shard-level task graphs.

Hydra's key move is to schedule at the granularity of *(model, shard, pass,
mini-batch)* tasks instead of whole models.  :func:`build_task_graph` turns a
:class:`TrainingJob` (a model's sharding plan plus its epoch/batch counts)
into exactly that task graph, with the dependencies that make sharded
training equivalent to unsharded training:

* forward of shard ``i`` needs forward of shard ``i-1`` (same batch);
* backward of shard ``i`` needs backward of shard ``i+1`` (same batch) and
  its own forward (for the stashed activations);
* the optimizer update of shard ``i`` needs that shard's backward;
* forward of shard ``i`` for batch ``b+1`` needs shard ``i``'s update for
  batch ``b`` (weights must be current — Hydra does not pipeline batches
  within one model).

Tasks of different models share no edges; that independence is the
parallelism the shard-parallel scheduler exploits.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.exceptions import SchedulingError
from repro.sharding.plan import ShardingPlan

#: optimizer-update FLOPs per parameter (Adam: ~6 multiply-adds per scalar)
UPDATE_FLOPS_PER_PARAM = 6.0


class TaskKind(str, enum.Enum):
    """Pass direction of a shard task."""

    FORWARD = "forward"
    BACKWARD = "backward"
    UPDATE = "update"


@dataclass
class ShardTask:
    """One schedulable unit: a pass over one shard for one mini-batch.

    ``extra_transfers`` lists additional ``(source_device, bytes)`` inputs a
    strategy wants charged before the task runs (e.g. the parameter movement
    of a Cerebro-style model hop); the intrinsic activation/gradient transfer
    implied by ``input_bytes`` is derived from the placement instead.
    """

    task_id: str
    model_id: str
    shard_index: int
    kind: TaskKind
    epoch: int
    batch_index: int
    flops: float
    input_bytes: int
    output_bytes: int
    activation_bytes: int
    deps: List[str] = field(default_factory=list)
    extra_transfers: List[tuple] = field(default_factory=list)

    @property
    def shard_key(self) -> str:
        return f"{self.model_id}/shard{self.shard_index}"


@dataclass
class TrainingJob:
    """One model's training assignment within a selection run."""

    model_id: str
    plan: ShardingPlan
    num_epochs: int = 1
    batches_per_epoch: int = 1
    samples_per_batch: int = 32

    def __post_init__(self) -> None:
        if self.num_epochs <= 0 or self.batches_per_epoch <= 0:
            raise SchedulingError(
                f"job {self.model_id!r}: epochs and batches per epoch must be positive"
            )

    @property
    def num_shards(self) -> int:
        return self.plan.num_shards

    @property
    def total_batches(self) -> int:
        return self.num_epochs * self.batches_per_epoch

    @property
    def total_samples(self) -> int:
        return self.total_batches * self.samples_per_batch


def task_id_for(model_id: str, epoch: int, batch: int, shard: int, kind: TaskKind) -> str:
    return f"{model_id}/e{epoch}/b{batch}/s{shard}/{kind.value}"


def build_task_graph(
    job: TrainingJob,
    include_updates: bool = True,
) -> List[ShardTask]:
    """Compile one job into its ordered list of :class:`ShardTask` items."""
    plan = job.plan
    shards = plan.shards
    num_shards = len(shards)
    tasks: List[ShardTask] = []

    def previous_batch(epoch: int, batch: int) -> Optional[tuple]:
        if batch > 0:
            return (epoch, batch - 1)
        if epoch > 0:
            return (epoch - 1, job.batches_per_epoch - 1)
        return None

    for epoch in range(job.num_epochs):
        for batch in range(job.batches_per_epoch):
            # Forward chain.
            for shard_index, shard in enumerate(shards):
                deps: List[str] = []
                if shard_index > 0:
                    deps.append(task_id_for(job.model_id, epoch, batch, shard_index - 1, TaskKind.FORWARD))
                prior = previous_batch(epoch, batch)
                if prior is not None:
                    prior_epoch, prior_batch = prior
                    anchor = TaskKind.UPDATE if include_updates else TaskKind.BACKWARD
                    deps.append(task_id_for(job.model_id, prior_epoch, prior_batch, shard_index, anchor))
                tasks.append(
                    ShardTask(
                        task_id=task_id_for(job.model_id, epoch, batch, shard_index, TaskKind.FORWARD),
                        model_id=job.model_id,
                        shard_index=shard_index,
                        kind=TaskKind.FORWARD,
                        epoch=epoch,
                        batch_index=batch,
                        flops=shard.forward_flops,
                        input_bytes=shard.input_bytes,
                        output_bytes=shard.output_bytes,
                        activation_bytes=shard.activation_bytes,
                        deps=deps,
                    )
                )
            # Backward chain (reverse order).
            for shard_index in reversed(range(num_shards)):
                shard = shards[shard_index]
                deps = [task_id_for(job.model_id, epoch, batch, shard_index, TaskKind.FORWARD)]
                if shard_index < num_shards - 1:
                    deps.append(task_id_for(job.model_id, epoch, batch, shard_index + 1, TaskKind.BACKWARD))
                tasks.append(
                    ShardTask(
                        task_id=task_id_for(job.model_id, epoch, batch, shard_index, TaskKind.BACKWARD),
                        model_id=job.model_id,
                        shard_index=shard_index,
                        kind=TaskKind.BACKWARD,
                        epoch=epoch,
                        batch_index=batch,
                        flops=shard.backward_flops,
                        # The gradient flowing into this shard from downstream has the
                        # size of this shard's output activation.
                        input_bytes=shard.output_bytes if shard_index < num_shards - 1 else 0,
                        output_bytes=shard.input_bytes,
                        activation_bytes=shard.activation_bytes,
                        deps=deps,
                    )
                )
            # Per-shard optimizer updates.
            if include_updates:
                for shard_index, shard in enumerate(shards):
                    tasks.append(
                        ShardTask(
                            task_id=task_id_for(job.model_id, epoch, batch, shard_index, TaskKind.UPDATE),
                            model_id=job.model_id,
                            shard_index=shard_index,
                            kind=TaskKind.UPDATE,
                            epoch=epoch,
                            batch_index=batch,
                            flops=shard.param_count * UPDATE_FLOPS_PER_PARAM,
                            input_bytes=0,
                            output_bytes=0,
                            activation_bytes=0,
                            deps=[task_id_for(job.model_id, epoch, batch, shard_index, TaskKind.BACKWARD)],
                        )
                    )
    return tasks


def build_task_graphs(jobs: Sequence[TrainingJob], include_updates: bool = True) -> List[ShardTask]:
    """Task graphs for several independent jobs, concatenated."""
    ids: Dict[str, TrainingJob] = {}
    for job in jobs:
        if job.model_id in ids:
            raise SchedulingError(f"duplicate model id {job.model_id!r} in job list")
        ids[job.model_id] = job
    tasks: List[ShardTask] = []
    for job in jobs:
        tasks.extend(build_task_graph(job, include_updates=include_updates))
    return tasks
