"""Online inference: from a selected model to answered requests.

The paper's pipeline ends when model selection picks a winner; this package
is the production half the ROADMAP asks for — deploying that winner and
serving traffic against it (see ``docs/serving.md``):

* :class:`ModelRegistry` — versioned published checkpoints (the
  training→serving hand-off, in the same ``.npz`` serialization as
  checkpoints and disk-spilled shards);
* :class:`DynamicBatcher` — bounded-queue admission control plus
  micro-batch coalescing under ``max_batch_size`` / ``max_wait_ms``;
* :class:`Replica` — one servable model copy, fully resident or *spilled*
  (a sharded executor leasing shards through its own
  :class:`~repro.memory.SpillManager`, so over-memory models serve from a
  single device budget);
* :class:`ModelServer` — a replica pool on the runtime's
  :class:`~repro.api.runtime.pool.WorkerPool`, with per-request deadlines
  and p50/p95/p99 latency + throughput metrics;
* :class:`LoadGenerator` — closed-loop clients for load tests and the E13
  benchmark.

Exactness is the core contract, inherited from the training side: replicas
run every forward at one fixed compute geometry, so batched responses are
``array_equal`` to unbatched single-request forwards, and spilled replicas
answer bit-identically to resident ones.

The declarative entry points live one layer up:
:func:`repro.api.serve` builds a server from a model, and
``SelectionResult.deploy`` goes straight from an experiment's winner
(rebuilt via the caller's builder, weights from the registry) to a running
server.
"""

from repro.serving.batcher import DynamicBatcher, InferenceRequest, PendingResponse
from repro.serving.loadgen import LoadGenerator, LoadReport, warm_up
from repro.serving.registry import ModelRegistry, ModelVersion
from repro.serving.replica import Replica
from repro.serving.server import ModelServer
from repro.serving.stats import LatencyStats, latency_summary

__all__ = [
    "DynamicBatcher",
    "InferenceRequest",
    "LatencyStats",
    "LoadGenerator",
    "LoadReport",
    "ModelRegistry",
    "ModelServer",
    "ModelVersion",
    "PendingResponse",
    "Replica",
    "latency_summary",
    "warm_up",
]
