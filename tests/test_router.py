"""The fleet router: exactness under eviction, fairness, and admission.

The contracts under test, in order of importance:

* **fleet == dedicated** — a model served through a shared
  :class:`~repro.serving.FleetRouter` (one pool, one budget, other models
  competing, evictions in flight) answers ``array_equal`` to a dedicated
  single-model :class:`~repro.serving.ModelServer` at the same compute
  geometry — whether the model was resident or evicted when asked;
* **cold models serve** — a budget smaller than any two models forces every
  switch to evict/restore, and responses stay bit-exact through the churn;
* **weighted-fair, never starved** — under a skewed mix the minority
  model's requests complete interleaved with the majority's, not after;
* **admission is per model** — one model's full queue rejects that model's
  traffic only;
* **API wiring** — ``serve_fleet`` and ``SelectionResult.deploy(router=)``
  land models in a shared fleet.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.data.dataloader import Batch
from repro.exceptions import (
    ConfigurationError,
    ServerOverloadedError,
    ServingError,
)
from repro.models import FeedForwardConfig, FeedForwardNetwork
from repro.serving import (
    FleetRouter,
    LoadGenerator,
    ModelRegistry,
    ModelServer,
    Replica,
)
from repro.serving.loadgen import mix_schedule

CONFIG = FeedForwardConfig(input_dim=16, hidden_dims=(24, 16), num_classes=4)
GEOMETRY = 8  # compute geometry shared by every exactness comparison


def make_model(seed: int = 5) -> FeedForwardNetwork:
    return FeedForwardNetwork(CONFIG, seed=seed)


def model_bytes(model) -> int:
    return sum(p.data.nbytes for p in model.parameters())


def make_fleet(names, router, **add_options):
    for index, name in enumerate(names):
        router.add_model(name, make_model(seed=20 + index), **add_options)
    return router


def dedicated_reference(seed: int, requests):
    """What a dedicated single-model server answers for ``requests``."""
    replica = Replica.resident(make_model(seed=seed))
    return [replica.infer({"features": x}, pad_to=GEOMETRY) for x in requests]


def _process_fleet_builder(model_name: str):
    """Module-level fleet builder: pickles into replica child processes.

    The architecture is all that matters — each child's weights come from
    the registry version pinned at deploy time."""
    return make_model(seed=99)


class _SleepyModel(FeedForwardNetwork):
    """A model whose forward takes a configurable wall-clock time."""

    def __init__(self, delay_seconds: float, seed: int = 5):
        super().__init__(CONFIG, seed=seed)
        self.delay_seconds = delay_seconds

    def forward(self, batch: Batch):
        time.sleep(self.delay_seconds)
        return super().forward(batch)


@pytest.fixture
def requests_32():
    rng = np.random.default_rng(13)
    return [rng.normal(size=(1, 16)).astype(np.float32) for _ in range(32)]


# --------------------------------------------------------------------------- #
# Exactness: fleet == dedicated, resident or evicted
# --------------------------------------------------------------------------- #
class TestFleetExactness:
    def test_mixed_fleet_matches_dedicated_servers(self, requests_32):
        """Four models, budget for ~2.5: every response is bit-identical to a
        dedicated per-model server's, with evictions provably happening and
        ``scrub_evicted`` poisoning any restore the router might skip."""
        names = ["m0", "m1", "m2", "m3"]
        one = model_bytes(make_model())
        references = {
            name: dedicated_reference(20 + index, requests_32)
            for index, name in enumerate(names)
        }
        router = FleetRouter(
            memory_budget=int(one * 2.5),
            replicas=2,
            max_batch_size=GEOMETRY,
            scrub_evicted=True,
            watchdog_interval_s=None,
        )
        make_fleet(names, router)
        with router:
            # Interleave models request by request so residency churns.
            for index, x in enumerate(requests_32):
                for name in names:
                    got = router.request(name, {"features": x})
                    assert np.array_equal(got, references[name][index])
        report = router.metrics()
        assert report["residency"]["evictions"] > 0
        assert report["residency"]["restores"] > 0
        assert report["fleet"]["completed"] == len(requests_32) * len(names)

    def test_registered_bytes_exceed_budget_but_resident_do_not(self):
        one = model_bytes(make_model())
        budget = int(one * 1.5)
        router = FleetRouter(
            memory_budget=budget, replicas=1, watchdog_interval_s=None
        )
        make_fleet(["a", "b", "c"], router)
        x = np.zeros((1, 16), dtype=np.float32)
        with router:
            for name in ["a", "b", "c", "a"]:
                router.request(name, {"features": x})
            report = router.metrics()
        assert report["residency"]["registered_bytes"] == 3 * one
        assert report["residency"]["registered_bytes"] > budget
        assert report["residency"]["resident_bytes"] <= budget

    def test_concurrent_traffic_is_exact(self, requests_32):
        """Closed-loop clients hammering all models at once (the E14 shape)."""
        names = ["m0", "m1", "m2", "m3"]
        one = model_bytes(make_model())
        references = {
            name: dedicated_reference(20 + index, requests_32)
            for index, name in enumerate(names)
        }
        router = FleetRouter(
            memory_budget=int(one * 2.5),
            replicas=2,
            max_batch_size=GEOMETRY,
            scrub_evicted=True,
            watchdog_interval_s=None,
        )
        make_fleet(names, router)
        from repro.api.runtime.pool import ThreadWorkerPool

        def client(name):
            for index, x in enumerate(requests_32):
                got = router.request(name, {"features": x})
                if not np.array_equal(got, references[name][index]):
                    return f"{name}[{index}] diverged"
            return None

        with router:
            with ThreadWorkerPool(len(names)) as pool:
                failures = [
                    f.result() for f in [pool.submit(client, n) for n in names]
                ]
        assert failures == [None] * len(names)


# --------------------------------------------------------------------------- #
# Eviction/restore churn under a minimal budget
# --------------------------------------------------------------------------- #
class TestEvictionChurn:
    def test_budget_smaller_than_any_two_models(self, requests_32):
        """With room for just one model, every switch is an evict+restore —
        the worst case for residency bookkeeping — and answers stay exact."""
        names = ["a", "b", "c"]
        one = model_bytes(make_model())
        references = {
            name: dedicated_reference(20 + index, requests_32[:8])
            for index, name in enumerate(names)
        }
        router = FleetRouter(
            memory_budget=int(one * 1.2),  # < 2 * one: never two resident
            replicas=1,
            max_batch_size=GEOMETRY,
            scrub_evicted=True,
            watchdog_interval_s=None,
        )
        make_fleet(names, router)
        with router:
            for index, x in enumerate(requests_32[:8]):
                for name in names:
                    got = router.request(name, {"features": x})
                    assert np.array_equal(got, references[name][index])
            report = router.metrics()
        # 8 rounds over 3 models with room for 1: nearly every switch evicts.
        assert report["residency"]["evictions"] >= 10
        assert report["residency"]["restores"] >= 10
        assert len(report["residency"]["resident_models"]) <= 1

    def test_models_usable_after_stop(self):
        """stop() restores every model's canonical bytes into its arrays."""
        one = model_bytes(make_model())
        router = FleetRouter(
            memory_budget=int(one * 1.2), replicas=1, watchdog_interval_s=None
        )
        models = {name: make_model(seed=ord(name)) for name in ["a", "b"]}
        originals = {
            name: [p.data.copy() for p in model.parameters()]
            for name, model in models.items()
        }
        for name, model in models.items():
            router.add_model(name, model)
        x = np.zeros((1, 16), dtype=np.float32)
        with router:
            router.request("a", {"features": x})
            router.request("b", {"features": x})
        for name, model in models.items():
            for param, original in zip(model.parameters(), originals[name]):
                assert np.array_equal(param.data, original)


# --------------------------------------------------------------------------- #
# Fairness
# --------------------------------------------------------------------------- #
class TestFairness:
    def test_minority_model_is_not_starved_under_skew(self):
        """9:1 traffic skew: the minority model's completions interleave with
        the majority's instead of all landing after them."""
        router = FleetRouter(
            replicas=1,
            max_batch_size=2,
            max_queue=256,
            watchdog_interval_s=None,
        )
        router.add_model("heavy", _SleepyModel(0.002, seed=7))
        router.add_model("light", _SleepyModel(0.002, seed=8))
        x = np.zeros((1, 16), dtype=np.float32)
        with router:
            # Pre-load a deep backlog for "heavy", then a few for "light".
            heavy = [router.submit("heavy", {"features": x}) for _ in range(60)]
            light = [router.submit("light", {"features": x}) for _ in range(6)]
            for response in heavy + light:
                response.result(timeout=30)
        last_light = max(r.completed_at for r in light)
        after_light = sum(1 for r in heavy if r.completed_at > last_light)
        # Stride scheduling serves light's 6 requests long before heavy's 60
        # drain; a FIFO-across-the-fleet scheduler would leave after_light == 0.
        assert after_light >= 20

    def test_weights_shift_service_proportionally(self):
        """A weight-2 model gets ~2x the rows of a weight-1 model while both
        are backlogged."""
        router = FleetRouter(
            replicas=1,
            max_batch_size=2,
            max_queue=256,
            watchdog_interval_s=None,
        )
        router.add_model("fast-lane", _SleepyModel(0.002, seed=7), weight=2.0)
        router.add_model("slow-lane", _SleepyModel(0.002, seed=8), weight=1.0)
        x = np.zeros((1, 16), dtype=np.float32)
        with router:
            fast = [router.submit("fast-lane", {"features": x}) for _ in range(30)]
            slow = [router.submit("slow-lane", {"features": x}) for _ in range(30)]
            for response in fast + slow:
                response.result(timeout=30)
        # Among the first 30 completions overall, fast-lane should hold a
        # clear majority (exact 2:1 modulo batch quantisation).
        order = sorted(fast + slow, key=lambda r: r.completed_at)
        fast_share = sum(1 for r in order[:30] if r in fast)
        assert fast_share >= 17


# --------------------------------------------------------------------------- #
# Admission control
# --------------------------------------------------------------------------- #
class TestAdmission:
    def test_rejection_is_per_model(self):
        """One model's full queue rejects only that model's traffic."""
        router = FleetRouter(
            replicas=1,
            max_batch_size=1,
            max_queue=2,
            watchdog_interval_s=None,
        )
        router.add_model("busy", _SleepyModel(0.2))
        router.add_model("idle", make_model(seed=9), max_queue=64)
        x = np.zeros((1, 16), dtype=np.float32)
        with router:
            # Fill busy's queue past capacity: 1 in flight + 2 queued.
            pending = [router.submit("busy", {"features": x}) for _ in range(3)]
            with pytest.raises(ServerOverloadedError, match="busy"):
                for _ in range(4):
                    pending.append(router.submit("busy", {"features": x}))
            # The other model still answers immediately.
            assert router.request("idle", {"features": x}).shape == (1, 4)
            for response in pending:
                response.result(timeout=10)
        report = router.metrics()
        assert report["models"]["busy"]["rejected"] >= 1
        assert report["models"]["idle"]["rejected"] == 0
        assert report["fleet"]["rejected"] == report["models"]["busy"]["rejected"]

    def test_oversized_request_rejected(self):
        router = FleetRouter(replicas=1, max_batch_size=4, watchdog_interval_s=None)
        router.add_model("m", make_model())
        with router:
            with pytest.raises(ConfigurationError, match="split it client-side"):
                router.submit("m", np.zeros((5, 16), dtype=np.float32))

    def test_unknown_model_rejected(self):
        router = FleetRouter(watchdog_interval_s=None)
        router.add_model("known", make_model())
        with router:
            with pytest.raises(ConfigurationError, match="no model 'unknown'"):
                router.submit("unknown", np.zeros((1, 16), dtype=np.float32))


# --------------------------------------------------------------------------- #
# Configuration and lifecycle
# --------------------------------------------------------------------------- #
class TestRouterLifecycle:
    def test_duplicate_model_name_rejected(self):
        router = FleetRouter(watchdog_interval_s=None)
        router.add_model("m", make_model())
        with pytest.raises(ConfigurationError, match="already registered"):
            router.add_model("m", make_model())

    def test_model_larger_than_budget_rejected(self):
        one = model_bytes(make_model())
        router = FleetRouter(memory_budget=one // 2, watchdog_interval_s=None)
        with pytest.raises(ConfigurationError, match="fit the budget whole"):
            router.add_model("m", make_model())

    def test_stopped_router_cannot_restart(self):
        router = FleetRouter(watchdog_interval_s=None)
        router.add_model("m", make_model())
        with router:
            pass
        with pytest.raises(ServingError, match="was stopped"):
            router.start()
        with pytest.raises(ServingError, match="was stopped"):
            router.add_model("late", make_model())

    def test_submit_requires_running_router(self):
        router = FleetRouter(watchdog_interval_s=None)
        router.add_model("m", make_model())
        with pytest.raises(ServingError, match="not running"):
            router.submit("m", np.zeros((1, 16), dtype=np.float32))

    def test_add_model_while_serving(self):
        """The fleet grows without a restart; new models serve immediately."""
        router = FleetRouter(replicas=1, watchdog_interval_s=None)
        router.add_model("first", make_model(seed=20))
        x = np.zeros((1, 16), dtype=np.float32)
        with router:
            router.request("first", {"features": x})
            router.add_model("second", make_model(seed=21))
            got = router.request("second", {"features": x})
            reference = Replica.resident(make_model(seed=21)).infer(
                {"features": x}, pad_to=router.max_batch_size
            )
            assert np.array_equal(got, reference)
        assert router.models == ["first", "second"]

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ConfigurationError):
            FleetRouter(replicas=0)
        with pytest.raises(ConfigurationError):
            FleetRouter(memory_budget=0)
        with pytest.raises(ConfigurationError):
            FleetRouter(max_cold_skips=-1)
        router = FleetRouter(watchdog_interval_s=None)
        with pytest.raises(ConfigurationError):
            router.add_model("m", make_model(), weight=0.0)
        with pytest.raises(ConfigurationError):
            router.add_model("m", make_model(), compute_batch_size=2, max_batch_size=4)

    def test_watchdog_counts_stalls(self):
        """A long forward with queued work behind it trips the watchdog."""
        router = FleetRouter(
            replicas=1, max_batch_size=1, watchdog_interval_s=0.05
        )
        router.add_model("slow", _SleepyModel(0.5))
        x = np.zeros((1, 16), dtype=np.float32)
        with router:
            pending = [router.submit("slow", {"features": x}) for _ in range(2)]
            for response in pending:
                response.result(timeout=10)
            report = router.metrics()
        assert report["scheduler"]["stalls"] >= 1


# --------------------------------------------------------------------------- #
# Scheduler metrics
# --------------------------------------------------------------------------- #
class TestRouterMetrics:
    def test_metrics_sections_and_batch_accounting(self):
        router = FleetRouter(replicas=1, max_batch_size=4, watchdog_interval_s=None)
        router.add_model("m", make_model())
        x = np.zeros((2, 16), dtype=np.float32)
        with router:
            for _ in range(6):
                router.request("m", {"features": x})
            report = router.metrics()
        assert set(report) == {"fleet", "models", "residency", "scheduler"}
        fleet = report["fleet"]
        assert fleet["completed"] == 6
        assert fleet["batches"] >= 1
        assert fleet["mean_batch_rows"] >= 2
        assert "queue_depth_max" in fleet and "queue_depth_mean" in fleet
        assert report["models"]["m"]["completed"] == 6
        assert report["scheduler"]["batches_dispatched"] == fleet["batches"]
        assert report["scheduler"]["queue_depths"] == {"m": 0}
        for key in ("latency_p50_ms", "latency_p95_ms", "latency_p99_ms"):
            assert fleet[key] >= 0.0

    def test_handle_is_server_shaped(self):
        router = FleetRouter(replicas=1, watchdog_interval_s=None)
        router.add_model("m", make_model(seed=20))
        handle = router.handle("m")
        x = np.zeros((1, 16), dtype=np.float32)
        with router:
            response = handle.submit({"features": x})
            got = response.result(timeout=10)
            also = handle.request({"features": x})
            assert np.array_equal(got, also)
            assert handle.metrics()["completed"] == 2
        with pytest.raises(ConfigurationError):
            router.handle("nope")


# --------------------------------------------------------------------------- #
# API wiring: serve_fleet and deploy(router=)
# --------------------------------------------------------------------------- #
class TestFleetAPI:
    def test_serve_fleet_from_registry(self, tmp_path):
        from repro.api import serve_fleet

        registry = ModelRegistry(tmp_path)
        for index in range(3):
            registry.publish(f"mlp-{index}", make_model(seed=30 + index))
        one = model_bytes(make_model())
        router = serve_fleet(
            registry,
            lambda name: make_model(seed=99),  # weights come from the registry
            memory_budget=int(one * 1.5),
            replicas=2,
            max_batch_size=GEOMETRY,
        )
        try:
            assert router.models == ["mlp-0", "mlp-1", "mlp-2"]
            x = np.zeros((1, 16), dtype=np.float32)
            for index in range(3):
                got = router.request(f"mlp-{index}", {"features": x})
                reference = Replica.resident(make_model(seed=30 + index)).infer(
                    {"features": x}, pad_to=GEOMETRY
                )
                assert np.array_equal(got, reference)
        finally:
            router.stop()

    def test_serve_fleet_validation(self, tmp_path):
        from repro.api import serve_fleet

        registry = ModelRegistry(tmp_path)
        with pytest.raises(ConfigurationError, match="at least one model"):
            serve_fleet(registry, lambda name: make_model())
        registry.publish("m", make_model())
        with pytest.raises(ConfigurationError, match="not in the fleet"):
            serve_fleet(registry, lambda name: make_model(), weights={"ghost": 1.0})
        with pytest.raises(ConfigurationError, match="memory_budget"):
            serve_fleet(
                registry, _process_fleet_builder,
                replica_mode="process", memory_budget=1 << 20, start=False,
            )

    def test_process_fleet_matches_dedicated_servers(self, requests_32, tmp_path):
        # Each model serves from its own child process, mmapping its pinned
        # registry version — and still answers bit-identically to a
        # dedicated in-process server at the same geometry.
        from repro.api import serve_fleet

        registry = ModelRegistry(tmp_path)
        names = ["m0", "m1"]
        for index, name in enumerate(names):
            registry.publish(name, make_model(seed=30 + index))
        references = {
            name: dedicated_reference(30 + index, requests_32[:8])
            for index, name in enumerate(names)
        }
        router = serve_fleet(
            registry,
            _process_fleet_builder,
            replica_mode="process",
            replicas=1,
            max_batch_size=GEOMETRY,
            compute_batch_size=GEOMETRY,
        )
        try:
            for name in names:
                for x, expected in zip(requests_32[:8], references[name]):
                    got = router.request(name, {"features": x}, timeout_ms=60_000)
                    assert np.array_equal(got, expected)
        finally:
            router.stop()

    def test_deploy_into_router(self, tmp_path):
        from repro.selection.experiment import ExperimentTracker

        registry = ModelRegistry(tmp_path)
        tracker = ExperimentTracker(objective="loss", mode="min")
        for index, trial_id in enumerate(["trial-a", "trial-b"]):
            model = make_model(seed=40 + index)
            registry.publish(trial_id, model)
            tracker.start_trial(trial_id)
            tracker.record(
                trial_id,
                hyperparameters={"seed": 40 + index},
                metrics={"loss": 1.0 - index * 0.5},
                epochs_trained=1,
            )
        result = tracker.as_result("tracker")
        router = FleetRouter(replicas=1, max_batch_size=GEOMETRY, watchdog_interval_s=None)

        def build(config):
            return make_model(seed=config.hyperparameters["seed"])

        returned = result.deploy(build, registry=registry, router=router)
        assert returned is router
        # best() is trial-b (loss 0.5); it joined under its trial id.
        assert router.models == ["trial-b"]
        result.deploy(
            build,
            registry=registry,
            router=router,
            trial=result.trials[0],
            weight=2.0,
        )
        assert router.models == ["trial-a", "trial-b"]
        x = np.zeros((1, 16), dtype=np.float32)
        with router:
            for trial_id, seed in [("trial-a", 40), ("trial-b", 41)]:
                got = router.request(trial_id, {"features": x})
                reference = Replica.resident(make_model(seed=seed)).infer(
                    {"features": x}, pad_to=GEOMETRY
                )
                assert np.array_equal(got, reference)


# --------------------------------------------------------------------------- #
# Load generation against a fleet
# --------------------------------------------------------------------------- #
class TestFleetLoadGeneration:
    def test_mix_schedule_is_exact_and_deterministic(self):
        schedule = mix_schedule({"a": 3.0, "b": 1.0}, 40)
        assert schedule.count("a") == 30
        assert schedule.count("b") == 10
        assert schedule == mix_schedule({"a": 3.0, "b": 1.0}, 40)
        # No clumping: every window of 4 holds at least one "b"-free slot mix.
        assert all("a" in schedule[i : i + 4] for i in range(0, 40, 4))
        with pytest.raises(ConfigurationError):
            mix_schedule({}, 4)
        with pytest.raises(ConfigurationError):
            mix_schedule({"a": 0.0}, 4)

    def test_open_loop_mix_over_router(self):
        router = FleetRouter(replicas=2, max_batch_size=GEOMETRY, watchdog_interval_s=None)
        make_fleet(["m0", "m1"], router)
        x = np.zeros((1, 16), dtype=np.float32)
        with router:
            generator = LoadGenerator(
                router,
                lambda client, index: {"features": x},
                clients=4,
                requests_per_client=8,
                arrival_rate_rps=500.0,
                mix={"m0": 3.0, "m1": 1.0},
            )
            report = generator.run()
        assert report.mode == "open"
        assert report.offered_rps == 500.0
        assert report.completed == 32
        assert report.per_model == {"m0": 24, "m1": 8}
        flattened = report.as_dict()
        assert flattened["per_model"] == {"m0": 24.0, "m1": 8.0}

    def test_router_target_requires_mix(self):
        router = FleetRouter(watchdog_interval_s=None)
        router.add_model("m", make_model())
        with pytest.raises(ConfigurationError, match="needs a mix"):
            LoadGenerator(router, lambda c, i: {})
        server = ModelServer([Replica.resident(make_model())])
        with pytest.raises(ConfigurationError, match="FleetRouter target"):
            LoadGenerator(server, lambda c, i: {}, mix={"m": 1.0})
