"""Model sharding: splitting a model's block sequence into device-sized shards."""

from repro.sharding.shard import ModelShard
from repro.sharding.plan import ShardingPlan
from repro.sharding.partitioner import (
    partition_uniform,
    partition_min_max,
    partition_by_memory_limit,
    make_plan,
)
from repro.sharding.validation import validate_plan

__all__ = [
    "ModelShard",
    "ShardingPlan",
    "partition_uniform",
    "partition_min_max",
    "partition_by_memory_limit",
    "make_plan",
    "validate_plan",
]
