"""``repro.api.serve`` — the declarative front door to online inference.

One call turns a (trained) model into a running
:class:`~repro.serving.ModelServer`: replica construction, sharding and
spill-manager plumbing for over-memory models, and batching configuration
all happen here, mirroring how ``Experiment.run(memory_budget=...)`` hides
the training-side spill wiring.  ``SelectionResult.deploy`` composes this
with the :class:`~repro.serving.ModelRegistry` to go from an experiment's
winner to a server in one step (see ``docs/serving.md``).
"""

from __future__ import annotations

from typing import Callable, Optional, Union

from repro.exceptions import ConfigurationError
from repro.models.base import ShardableModel
from repro.serving.replica import Replica
from repro.serving.server import ModelServer

#: what ``serve`` accepts: a live model, or a zero-argument factory that
#: builds one fresh copy per replica
ModelSource = Union[ShardableModel, Callable[[], ShardableModel]]


def serve(
    model: ModelSource,
    replicas: int = 1,
    max_batch_size: int = 8,
    max_wait_ms: float = 2.0,
    max_queue: int = 64,
    timeout_ms: Optional[float] = None,
    compute_batch_size: Optional[int] = None,
    memory_budget: Optional[int] = None,
    num_shards: Optional[int] = None,
    eviction_policy: str = "schedule-aware",
    prefetch: bool = True,
    spill_dir: Optional[str] = None,
    name: str = "server",
    start: bool = True,
) -> ModelServer:
    """Deploy ``model`` behind a dynamically batched replica pool.

    ``model`` is a live :class:`~repro.models.base.ShardableModel` — shared
    read-only by every replica — or a zero-argument factory called once per
    replica (required when replicas must not share parameter arrays, e.g.
    spilled serving with more than one replica).

    ``memory_budget`` (bytes) opts each replica into *spilled* serving: the
    model is cut into ``num_shards`` shards (default: one per block) and
    served through a private :class:`~repro.memory.SpillManager` whose
    single arena holds ``memory_budget`` bytes — over-memory models answer
    bit-identically to resident ones from a bounded device footprint.

    The remaining knobs configure the :class:`~repro.serving.ModelServer`:
    ``max_batch_size``/``max_wait_ms`` bound the dynamic batcher,
    ``max_queue`` bounds admission, ``timeout_ms`` sets the default
    per-request deadline, and ``compute_batch_size`` fixes the execution
    geometry (default ``max_batch_size``) — servers sharing weights and
    geometry answer bit-identically regardless of batching.

    With ``start=True`` (default) the server is already running; use it as
    a context manager or call ``stop()`` when done.

    Example::

        server = serve(model, max_batch_size=8, max_wait_ms=2.0)
        logits = server.request({"features": x})
        server.stop()

    Raises:
        ConfigurationError: for invalid counts/budgets, or ``replicas > 1``
            with ``memory_budget`` but no model factory (spilled replicas
            each need their own parameter copy).
    """
    if replicas <= 0:
        raise ConfigurationError(f"replicas must be positive, got {replicas}")
    factory: Optional[Callable[[], ShardableModel]]
    if callable(model) and not isinstance(model, ShardableModel):
        factory = model
    else:
        factory = None
    if memory_budget is not None and replicas > 1 and factory is None:
        raise ConfigurationError(
            "spilled serving with multiple replicas needs a model factory: "
            "each replica's spill manager evicts/restores its own parameter "
            "arrays, so replicas cannot share one model object — pass "
            "serve(lambda: build_model(), ...) instead of a live model"
        )

    built = []
    for index in range(replicas):
        instance = factory() if factory is not None else model
        replica_name = f"{name}/replica{index}"
        if memory_budget is not None:
            built.append(
                Replica.spilled(
                    instance,
                    memory_budget=memory_budget,
                    num_shards=num_shards,
                    eviction_policy=eviction_policy,
                    prefetch=prefetch,
                    spill_dir=spill_dir,
                    name=replica_name,
                )
            )
        else:
            built.append(Replica.resident(instance, name=replica_name))

    server = ModelServer(
        built,
        max_batch_size=max_batch_size,
        max_wait_ms=max_wait_ms,
        max_queue=max_queue,
        timeout_ms=timeout_ms,
        compute_batch_size=compute_batch_size,
        name=name,
    )
    return server.start() if start else server
