"""Simulated accelerator devices.

A :class:`DeviceSpec` captures the two quantities the experiments depend on:
memory capacity (which forces model parallelism for large models) and
sustained compute throughput (which converts FLOPs into simulated seconds).
The ``v100-16gb`` preset mirrors the paper's testbed of 16 GB Tesla V100s.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.exceptions import ConfigurationError, OutOfDeviceMemoryError

GIB = 1024 ** 3


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of an accelerator.

    ``flops_per_second`` is the *sustained* (not peak) throughput used to
    convert work into time; 14 TFLOP/s is a reasonable sustained fp32+tensor
    mix for V100 training workloads.
    """

    name: str
    memory_bytes: int
    flops_per_second: float
    kind: str = "gpu"

    def compute_time(self, flops: float) -> float:
        """Seconds needed to execute ``flops`` at sustained throughput."""
        if flops < 0:
            raise ValueError(f"flops must be non-negative, got {flops}")
        return flops / self.flops_per_second


#: catalogue of well-known accelerators (memory, sustained FLOP/s)
GPU_PRESETS: Dict[str, DeviceSpec] = {
    "v100-16gb": DeviceSpec("v100-16gb", memory_bytes=16 * GIB, flops_per_second=14e12),
    "v100-32gb": DeviceSpec("v100-32gb", memory_bytes=32 * GIB, flops_per_second=14e12),
    "k80-12gb": DeviceSpec("k80-12gb", memory_bytes=12 * GIB, flops_per_second=4e12),
    "a100-40gb": DeviceSpec("a100-40gb", memory_bytes=40 * GIB, flops_per_second=60e12),
    "cpu-host": DeviceSpec("cpu-host", memory_bytes=256 * GIB, flops_per_second=0.5e12, kind="cpu"),
}


class Device:
    """A device instance with a mutable memory ledger.

    Allocations are keyed so that the same logical object (e.g. the
    parameters of shard 2 of model 7) cannot be double-charged, and so
    releases can name exactly what they free.
    """

    def __init__(self, spec: DeviceSpec, name: str | None = None):
        self.spec = spec
        self.name = name if name is not None else spec.name
        self._allocations: Dict[str, int] = {}
        self.peak_bytes = 0

    # ------------------------------------------------------------------ #
    # Memory ledger
    # ------------------------------------------------------------------ #
    @property
    def used_bytes(self) -> int:
        return sum(self._allocations.values())

    @property
    def free_bytes(self) -> int:
        return self.spec.memory_bytes - self.used_bytes

    def allocate(self, key: str, num_bytes: int) -> None:
        """Charge ``num_bytes`` under ``key``; raises if the device is full."""
        if num_bytes < 0:
            raise ValueError(f"allocation size must be non-negative, got {num_bytes}")
        if key in self._allocations:
            raise ConfigurationError(f"allocation key {key!r} already present on {self.name}")
        if num_bytes > self.free_bytes:
            raise OutOfDeviceMemoryError(self.name, num_bytes, self.free_bytes)
        self._allocations[key] = int(num_bytes)
        self.peak_bytes = max(self.peak_bytes, self.used_bytes)

    def release(self, key: str) -> int:
        """Free the allocation under ``key`` and return its size."""
        if key not in self._allocations:
            raise ConfigurationError(f"no allocation named {key!r} on device {self.name}")
        return self._allocations.pop(key)

    def holds(self, key: str) -> bool:
        return key in self._allocations

    def allocation_keys(self):
        return list(self._allocations)

    def reset(self) -> None:
        """Clear all allocations and peak tracking (between experiments)."""
        self._allocations.clear()
        self.peak_bytes = 0

    # ------------------------------------------------------------------ #
    def compute_time(self, flops: float) -> float:
        return self.spec.compute_time(flops)

    def __repr__(self) -> str:
        used_gib = self.used_bytes / GIB
        total_gib = self.spec.memory_bytes / GIB
        return f"Device({self.name}, {used_gib:.2f}/{total_gib:.0f} GiB used)"
