"""Unified observability: spans + metrics across select→train→spill→serve.

The telemetry substrate the ROADMAP's remaining items (auto-solver
profiling, SLO autoscaling) consume (see ``docs/observability.md``):

* :class:`Telemetry` — the enabled recorder: ``span``/``begin``/``event``
  with monotonic timestamps and parent links, a bounded event buffer,
  Chrome/Perfetto + JSONL export, and one :class:`MetricsRegistry`;
* :data:`NULL_TELEMETRY` — the shared no-op recorder every instrumented
  component defaults to; one ``if tel.enabled:`` branch per site keeps the
  disabled path inside the E16 overhead budget;
* cross-process collection — spawn children record into their own
  recorder, ``drain()`` into the existing result channels, and the parent
  ``ingest()``\\ s, so one trace shows every process;
* :mod:`repro.telemetry.schema` — the documented snapshot schema with the
  validators the tests share.

Wiring points: ``Experiment.run(telemetry=...)``,
``serve(telemetry=...)`` / ``serve_fleet(telemetry=...)``.
"""

from repro.telemetry.metrics import Histogram, MetricsRegistry
from repro.telemetry.recorder import NULL_TELEMETRY, NullTelemetry, Telemetry
from repro.telemetry.schema import (
    HISTOGRAM_SUMMARY_KEYS,
    LATENCY_SNAPSHOT_KEYS,
    MONOTONIC_COUNTERS,
    SchemaError,
    assert_monotonic,
    validate_fleet_metrics,
    validate_latency_snapshot,
    validate_registry_snapshot,
)

__all__ = [
    "HISTOGRAM_SUMMARY_KEYS",
    "Histogram",
    "LATENCY_SNAPSHOT_KEYS",
    "MONOTONIC_COUNTERS",
    "MetricsRegistry",
    "NULL_TELEMETRY",
    "NullTelemetry",
    "SchemaError",
    "Telemetry",
    "assert_monotonic",
    "validate_fleet_metrics",
    "validate_latency_snapshot",
    "validate_registry_snapshot",
]
