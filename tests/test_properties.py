"""Property-based tests (hypothesis) for core data structures and invariants,
plus the exhaustive cross-pool determinism sweep for the concurrent runtime."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.api import Budget, Experiment, ShardParallelBackend
from repro.autograd import Tensor, check_gradients, ops
from repro.cluster import Cluster, ClusterSimulator, Device, DeviceSpec, SimTask
from repro.data import DataLoader, make_classification
from repro.models import FeedForwardConfig, FeedForwardNetwork
from repro.optim import Adam
from repro.profiling import ModelProfile, linear_cost
from repro.selection import SearchSpace
from repro.sharding import ShardingPlan, partition_min_max, partition_uniform
from repro.training import ShardedModelExecutor

# Keep hypothesis fast and deterministic for CI-style runs.
settings.register_profile("repro", max_examples=25, deadline=None, derandomize=True)
settings.load_profile("repro")


# --------------------------------------------------------------------------- #
# Autograd properties
# --------------------------------------------------------------------------- #
small_arrays = st.integers(min_value=1, max_value=4).flatmap(
    lambda rows: st.integers(min_value=1, max_value=4).map(lambda cols: (rows, cols))
)


@st.composite
def float_matrix(draw, max_dim=4):
    rows = draw(st.integers(1, max_dim))
    cols = draw(st.integers(1, max_dim))
    values = draw(
        st.lists(
            st.floats(min_value=-3, max_value=3, allow_nan=False, width=32),
            min_size=rows * cols,
            max_size=rows * cols,
        )
    )
    return np.array(values, dtype=np.float64).reshape(rows, cols)


class TestAutogradProperties:
    @given(float_matrix(), float_matrix())
    def test_addition_is_commutative(self, a, b):
        if a.shape != b.shape:
            b = np.resize(b, a.shape)
        left = (Tensor(a) + Tensor(b)).data
        right = (Tensor(b) + Tensor(a)).data
        assert np.allclose(left, right)

    @given(float_matrix())
    def test_sum_gradient_is_all_ones(self, a):
        x = Tensor(a, requires_grad=True)
        x.sum().backward()
        assert np.allclose(x.grad, np.ones_like(a))

    @given(float_matrix())
    def test_mean_equals_sum_over_size(self, a):
        x = Tensor(a)
        assert np.allclose(x.mean().data, x.sum().data / a.size, atol=1e-6)

    @given(float_matrix())
    def test_softmax_rows_are_distributions(self, a):
        out = ops.softmax(Tensor(a), axis=-1).data
        assert np.all(out >= 0)
        assert np.allclose(out.sum(axis=-1), 1.0, atol=1e-5)

    @given(float_matrix())
    def test_relu_output_nonnegative_and_idempotent(self, a):
        once = ops.relu(Tensor(a)).data
        twice = ops.relu(ops.relu(Tensor(a))).data
        assert np.all(once >= 0)
        assert np.allclose(once, twice)

    @given(float_matrix())
    def test_elementwise_product_gradient_matches_numerical(self, a):
        x = Tensor(a, requires_grad=True)
        check_gradients(lambda t: (t * t).sum(), [x], atol=1e-3, rtol=1e-2)

    @given(float_matrix(), st.integers(0, 1))
    def test_sum_then_total_equals_total_sum(self, a, axis):
        x = Tensor(a)
        axis = axis % a.ndim
        assert np.allclose(x.sum(axis=axis).sum().data, x.sum().data, atol=1e-5)


# --------------------------------------------------------------------------- #
# Partitioner properties
# --------------------------------------------------------------------------- #
@st.composite
def random_profile(draw):
    num_blocks = draw(st.integers(2, 12))
    widths = draw(
        st.lists(st.integers(4, 128), min_size=num_blocks, max_size=num_blocks)
    )
    blocks = [linear_cost(f"b{i}", w, w) for i, w in enumerate(widths)]
    return ModelProfile(model_name="prop", blocks=blocks)


class TestPartitionerProperties:
    @given(random_profile(), st.integers(1, 6))
    def test_boundaries_partition_the_block_range(self, profile, num_shards):
        num_shards = min(num_shards, len(profile))
        for partition in (partition_uniform(profile, num_shards),
                          partition_min_max(profile, num_shards)):
            assert partition[0][0] == 0
            assert partition[-1][1] == len(profile)
            assert len(partition) == num_shards
            for (s1, e1), (s2, e2) in zip(partition, partition[1:]):
                assert e1 == s2
                assert e1 > s1
            assert partition[-1][1] > partition[-1][0]

    @given(random_profile(), st.integers(1, 6))
    def test_plan_conserves_parameters_and_flops(self, profile, num_shards):
        num_shards = min(num_shards, len(profile))
        plan = ShardingPlan("m", profile, partition_min_max(profile, num_shards), batch_size=2)
        assert plan.total_param_count == profile.total_params
        total_fwd = sum(shard.forward_flops for shard in plan.shards)
        assert total_fwd == pytest.approx(profile.total_forward_flops(2))

    @given(random_profile(), st.integers(2, 5))
    def test_min_max_never_worse_than_uniform(self, profile, num_shards):
        num_shards = min(num_shards, len(profile))

        def bottleneck(boundaries):
            return max(profile.range_memory_bytes(s, e) for s, e in boundaries)

        assert bottleneck(partition_min_max(profile, num_shards)) <= bottleneck(
            partition_uniform(profile, num_shards)
        ) + 1e-9

    @given(random_profile())
    def test_memory_reduction_factor_at_least_one(self, profile):
        plan = ShardingPlan("m", profile, partition_min_max(profile, min(2, len(profile))))
        assert plan.memory_reduction_factor() >= 1.0


# --------------------------------------------------------------------------- #
# Simulator properties
# --------------------------------------------------------------------------- #
@st.composite
def random_task_graph(draw):
    num_devices = draw(st.integers(1, 3))
    num_tasks = draw(st.integers(1, 15))
    tasks = []
    for index in range(num_tasks):
        deps = []
        if index > 0:
            deps = draw(
                st.lists(st.integers(0, index - 1), max_size=2, unique=True)
            )
        tasks.append(
            SimTask(
                task_id=f"t{index}",
                device=f"gpu{draw(st.integers(0, num_devices - 1))}",
                compute_flops=float(draw(st.integers(1, 20))) * 1e8,
                deps=[f"t{d}" for d in deps],
            )
        )
    return num_devices, tasks


class TestSimulatorProperties:
    @given(random_task_graph())
    def test_all_tasks_run_dependencies_hold_devices_exclusive(self, graph):
        num_devices, tasks = graph
        spec = DeviceSpec("unit", memory_bytes=2 ** 40, flops_per_second=1e9)
        cluster = Cluster([Device(spec, f"gpu{i}") for i in range(num_devices)])
        trace = ClusterSimulator(cluster).run(tasks)

        records = {r.task_id: r for r in trace.records}
        assert len(records) == len(tasks)
        # Dependencies: a task starts only after its dependencies end.
        for task in tasks:
            for dep in task.deps:
                assert records[task.task_id].start >= records[dep].end - 1e-9
        # Device exclusivity: records on the same device never overlap.
        for name in cluster.device_names():
            device_records = sorted(
                (r for r in trace.records if r.device == name), key=lambda r: r.start
            )
            for first, second in zip(device_records, device_records[1:]):
                assert second.start >= first.end - 1e-9
        # Utilization is a valid fraction and busy time never exceeds makespan per device.
        assert 0.0 <= trace.utilization() <= 1.0 + 1e-9


# --------------------------------------------------------------------------- #
# Sharded-execution parity property
# --------------------------------------------------------------------------- #
@st.composite
def random_boundaries(draw, num_blocks=3):
    cuts = draw(st.lists(st.integers(1, num_blocks - 1), max_size=num_blocks - 1, unique=True))
    points = [0, *sorted(cuts), num_blocks]
    return list(zip(points[:-1], points[1:]))


class TestShardingParityProperty:
    @given(random_boundaries(num_blocks=3), st.integers(0, 3))
    def test_any_sharding_gives_identical_gradients(self, boundaries, seed):
        config = FeedForwardConfig.tiny()
        rng = np.random.default_rng(7)
        batch_features = rng.normal(size=(8, config.input_dim)).astype(np.float32)
        batch_labels = rng.integers(0, config.num_classes, size=8)
        batch = {"features": batch_features, "label": batch_labels}

        reference = FeedForwardNetwork(config, seed=seed)
        sharded = FeedForwardNetwork(config, seed=seed)

        loss = reference.loss_on_batch(batch)
        reference.zero_grad()
        loss.backward()

        executor = ShardedModelExecutor(sharded, boundaries)
        executor.begin_batch()
        sharded.zero_grad()
        for index in range(executor.num_shards):
            executor.run_forward(index, batch)
        executor.compute_loss(batch)
        for index in reversed(range(executor.num_shards)):
            executor.run_backward(index)

        for (name, p_ref), (_, p_sharded) in zip(
            reference.named_parameters(), sharded.named_parameters()
        ):
            assert np.allclose(p_ref.grad, p_sharded.grad, atol=1e-6), name


# --------------------------------------------------------------------------- #
# Cross-pool determinism sweep
# --------------------------------------------------------------------------- #
_SWEEP_DATA = make_classification(
    num_samples=64, num_features=8, num_classes=3, class_separation=2.0,
    rng=np.random.default_rng(0),
)

#: a fraction of what the cohort's shards need — forces real spill traffic
_TIGHT_BUDGET = 48 * 1024


def _sweep_builder(trial):
    """Module-level builder: must pickle into process-pool worker children."""
    width = int(trial.get("width", 16))
    config = FeedForwardConfig(input_dim=8, hidden_dims=(width,), num_classes=3)
    model = FeedForwardNetwork(config, seed=0)
    optimizer = Adam(model.parameters(), lr=float(trial.get("lr", 1e-2)))
    loader = DataLoader(_SWEEP_DATA, batch_size=16, shuffle=True, seed=0)
    return model, optimizer, loader


def _sweep_run(workers, pool, memory_budget):
    backend = ShardParallelBackend(
        builder=_sweep_builder, num_devices=2, memory_budget=memory_budget
    )
    experiment = Experiment(
        space=SearchSpace({"width": [16, 32], "lr": [1e-2, 1e-3]}),
        searcher="grid",
        objective="loss",
        budget=Budget(epochs_per_trial=2),
    )
    if workers is None:
        return experiment.run(backend=backend)
    return experiment.run(backend=backend, workers=workers, pool=pool)


@pytest.fixture(scope="module")
def sweep_reference():
    """One serial, unconstrained run — the ranking every combo must match."""
    result = _sweep_run(None, None, None)
    ranking = [t.trial_id for t in result.ranked()]
    losses = {t.trial_id: t.metric("loss") for t in result.trials}
    return ranking, losses


class TestCrossPoolDeterminism:
    """The tentpole invariant, swept exhaustively.

    Rankings and losses must be **bit-identical** — not merely close —
    across every execution substrate: worker count {1, 2, 4} x pool kind
    {serial, thread, process} x memory budget {unconstrained, tight}.
    Thread pools share live state, process pools round-trip every trial
    through pickled backends and checkpoint snapshots, and tight budgets
    reroute every shard through the spill manager; none of it may perturb
    a single bit of any model's update sequence.
    """

    @pytest.mark.parametrize(
        "memory_budget", [None, _TIGHT_BUDGET], ids=["unbounded", "tight"]
    )
    @pytest.mark.parametrize("pool", ["serial", "thread", "process"])
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_rankings_and_losses_bit_identical(
        self, workers, pool, memory_budget, sweep_reference
    ):
        reference_ranking, reference_losses = sweep_reference
        result = _sweep_run(workers, pool, memory_budget)
        assert not result.failures
        assert [t.trial_id for t in result.ranked()] == reference_ranking
        # Float equality on purpose: the guarantee is bit-exactness.
        assert {
            t.trial_id: t.metric("loss") for t in result.trials
        } == reference_losses
