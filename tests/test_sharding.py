"""Tests for shards, plans, partitioners, and plan validation."""

import numpy as np
import pytest

from repro.cluster import GPU_PRESETS
from repro.exceptions import PartitionError
from repro.models import BertConfig, FeedForwardConfig
from repro.profiling import ModelProfile, linear_cost
from repro.sharding import (
    ShardingPlan,
    make_plan,
    partition_by_memory_limit,
    partition_min_max,
    partition_uniform,
    validate_plan,
)

GIB = 1024 ** 3


def toy_profile(num_blocks=6, width=64):
    return ModelProfile(
        model_name="toy",
        blocks=[linear_cost(f"b{i}", width, width) for i in range(num_blocks)],
    )


def uneven_profile():
    """Blocks with very different sizes to exercise balancing."""
    widths = [(8, 8), (256, 256), (8, 8), (256, 256), (8, 8), (8, 8)]
    return ModelProfile(
        model_name="uneven",
        blocks=[linear_cost(f"b{i}", a, b) for i, (a, b) in enumerate(widths)],
    )


class TestPartitionUniform:
    def test_even_split(self):
        assert partition_uniform(toy_profile(6), 3) == [(0, 2), (2, 4), (4, 6)]

    def test_remainder_spread_to_front(self):
        assert partition_uniform(toy_profile(7), 3) == [(0, 3), (3, 5), (5, 7)]

    def test_one_shard(self):
        assert partition_uniform(toy_profile(5), 1) == [(0, 5)]

    def test_validation(self):
        with pytest.raises(PartitionError):
            partition_uniform(toy_profile(3), 0)
        with pytest.raises(PartitionError):
            partition_uniform(toy_profile(3), 4)


class TestPartitionMinMax:
    def test_covers_all_blocks_contiguously(self):
        boundaries = partition_min_max(uneven_profile(), 3)
        assert boundaries[0][0] == 0
        assert boundaries[-1][1] == 6
        for (s1, e1), (s2, e2) in zip(boundaries, boundaries[1:]):
            assert e1 == s2

    def test_produces_requested_shard_count(self):
        for k in range(1, 7):
            assert len(partition_min_max(toy_profile(6), k)) == k

    def test_balances_better_than_uniform_on_uneven_blocks(self):
        profile = uneven_profile()

        def bottleneck(boundaries):
            return max(
                profile.range_memory_bytes(start, stop) for start, stop in boundaries
            )

        uniform = bottleneck(partition_uniform(profile, 3))
        balanced = bottleneck(partition_min_max(profile, 3, weight="memory"))
        assert balanced <= uniform

    def test_matches_bruteforce_optimum_on_small_inputs(self):
        import itertools

        profile = uneven_profile()
        weights = [profile.block_memory_bytes(i) for i in range(len(profile))]
        num_shards = 3

        best = None
        positions = range(1, len(weights))
        for cut in itertools.combinations(positions, num_shards - 1):
            bounds = [0, *cut, len(weights)]
            groups = [sum(weights[a:b]) for a, b in zip(bounds, bounds[1:])]
            bottleneck = max(groups)
            best = bottleneck if best is None else min(best, bottleneck)

        produced = partition_min_max(profile, num_shards, weight="memory")
        produced_bottleneck = max(
            profile.range_memory_bytes(start, stop) for start, stop in produced
        )
        assert produced_bottleneck == pytest.approx(best, rel=1e-6)

    def test_flops_weighting_supported(self):
        boundaries = partition_min_max(toy_profile(8), 4, weight="flops")
        assert len(boundaries) == 4

    def test_unknown_weight_rejected(self):
        with pytest.raises(PartitionError):
            partition_min_max(toy_profile(4), 2, weight="watts")

    def test_validation(self):
        with pytest.raises(PartitionError):
            partition_min_max(toy_profile(3), 0)
        with pytest.raises(PartitionError):
            partition_min_max(toy_profile(3), 5)


class TestPartitionByMemoryLimit:
    def test_single_shard_when_budget_is_huge(self):
        assert partition_by_memory_limit(toy_profile(), 10 * GIB) == [(0, 6)]

    def test_splits_when_budget_is_small(self):
        profile = toy_profile(6)
        per_block = profile.block_memory_bytes(0)
        boundaries = partition_by_memory_limit(profile, int(per_block * 2.5))
        assert len(boundaries) == 3
        for start, stop in boundaries:
            assert profile.range_memory_bytes(start, stop) <= per_block * 2.5

    def test_block_larger_than_budget_rejected(self):
        with pytest.raises(PartitionError):
            partition_by_memory_limit(toy_profile(), 10)

    def test_invalid_budget(self):
        with pytest.raises(PartitionError):
            partition_by_memory_limit(toy_profile(), 0)


class TestShardingPlan:
    def test_shards_cover_model_and_conserve_params(self):
        profile = toy_profile(6)
        plan = ShardingPlan("toy", profile, [(0, 2), (2, 5), (5, 6)], batch_size=4)
        assert plan.num_shards == 3
        assert plan.total_param_count == profile.total_params

    def test_boundary_validation(self):
        profile = toy_profile(4)
        with pytest.raises(PartitionError):
            ShardingPlan("toy", profile, [(0, 2), (3, 4)])  # gap
        with pytest.raises(PartitionError):
            ShardingPlan("toy", profile, [(0, 2), (2, 2), (2, 4)])  # empty
        with pytest.raises(PartitionError):
            ShardingPlan("toy", profile, [(0, 3)])  # does not cover
        with pytest.raises(PartitionError):
            ShardingPlan("toy", profile, [])
        with pytest.raises(PartitionError):
            ShardingPlan("toy", profile, [(0, 4)], batch_size=0)

    def test_shard_fields(self):
        profile = toy_profile(4, width=32)
        plan = ShardingPlan("toy", profile, [(0, 2), (2, 4)], batch_size=8)
        first, second = plan.shards
        assert first.input_bytes == 0
        assert first.output_bytes == profile.blocks[1].output_bytes_per_sample * 8
        assert second.input_bytes == first.output_bytes
        assert first.param_count == 2 * (32 * 32 + 32)
        assert first.optimizer_bytes == first.param_count * profile.optimizer_bytes_per_param
        assert first.backward_flops == pytest.approx(2 * first.forward_flops)
        assert first.shard_id == "toy/shard0"
        assert first.num_blocks == 2
        assert str(first)

    def test_shard_for_block(self):
        plan = ShardingPlan("toy", toy_profile(6), [(0, 3), (3, 6)])
        assert plan.shard_for_block(0).index == 0
        assert plan.shard_for_block(5).index == 1
        with pytest.raises(PartitionError):
            plan.shard_for_block(17)

    def test_memory_reduction_factor_for_bert_large(self):
        """Reproduces the §4.2 headline: 4-way BERT-Large sharding gives ~3-4x less per-device memory."""
        profile = BertConfig.bert_large().profile(seq_len=384)
        plan = make_plan("bert", profile, batch_size=32, num_shards=4)
        assert 3.0 <= plan.memory_reduction_factor() <= 4.5

    def test_iteration(self):
        plan = ShardingPlan("toy", toy_profile(4), [(0, 2), (2, 4)])
        assert len(list(plan)) == 2
        assert len(plan) == 2


class TestMakePlan:
    def test_requires_exactly_one_mode(self):
        profile = toy_profile()
        with pytest.raises(PartitionError):
            make_plan("toy", profile)
        with pytest.raises(PartitionError):
            make_plan("toy", profile, num_shards=2, memory_limit_bytes=GIB)

    def test_uniform_strategy(self):
        plan = make_plan("toy", toy_profile(6), num_shards=3, strategy="uniform")
        assert plan.boundaries == [(0, 2), (2, 4), (4, 6)]

    def test_unknown_strategy(self):
        with pytest.raises(PartitionError):
            make_plan("toy", toy_profile(), num_shards=2, strategy="magic")

    def test_memory_limit_mode(self):
        profile = BertConfig.bert_large().profile(seq_len=384)
        plan = make_plan("bert", profile, batch_size=32,
                         memory_limit_bytes=GPU_PRESETS["v100-16gb"].memory_bytes)
        assert plan.num_shards >= 2
        assert plan.max_shard_working_bytes <= GPU_PRESETS["v100-16gb"].memory_bytes

    def test_mlp_single_shard_when_it_fits(self):
        profile = FeedForwardConfig.paper_1_2m().profile()
        plan = make_plan("mlp", profile, batch_size=32,
                         memory_limit_bytes=GPU_PRESETS["v100-16gb"].memory_bytes)
        assert plan.num_shards == 1


class TestValidatePlan:
    def test_valid_plan_passes(self):
        profile = BertConfig.bert_large().profile(seq_len=384)
        plan = make_plan("bert", profile, batch_size=32, num_shards=4)
        assert validate_plan(plan, GPU_PRESETS["v100-16gb"]) == []

    def test_oversized_shard_detected(self):
        profile = BertConfig.bert_large().profile(seq_len=384)
        plan = make_plan("bert", profile, batch_size=32, num_shards=1)
        problems = validate_plan(plan, GPU_PRESETS["v100-16gb"], strict=False)
        assert problems
        with pytest.raises(PartitionError):
            validate_plan(plan, GPU_PRESETS["v100-16gb"], strict=True)
