"""Tests for the shard-level task graph, placement, and policies."""

import numpy as np
import pytest

from repro.cluster import Cluster, SimTask
from repro.exceptions import SchedulingError
from repro.models import BertConfig, FeedForwardConfig
from repro.scheduler import (
    Placement,
    ShardTask,
    TaskKind,
    TrainingJob,
    backward_first_policy,
    build_task_graph,
    fifo_policy,
    get_policy,
    memory_aware_placement,
    model_round_robin_policy,
    plan_waves,
    random_policy,
    round_robin_placement,
)
from repro.scheduler.task import build_task_graphs, task_id_for
from repro.sharding import make_plan

GIB = 1024 ** 3


def mlp_job(model_id="mlp-0", num_shards=2, epochs=1, batches=2, batch_size=8):
    profile = FeedForwardConfig.paper_1_2m().profile()
    plan = make_plan(model_id, profile, batch_size=batch_size, num_shards=num_shards)
    return TrainingJob(model_id=model_id, plan=plan, num_epochs=epochs,
                       batches_per_epoch=batches, samples_per_batch=batch_size)


def bert_job(model_id="bert-0", num_shards=4, epochs=1, batches=2, batch_size=16):
    profile = BertConfig.bert_large().profile(seq_len=384)
    plan = make_plan(model_id, profile, batch_size=batch_size, num_shards=num_shards)
    return TrainingJob(model_id=model_id, plan=plan, num_epochs=epochs,
                       batches_per_epoch=batches, samples_per_batch=batch_size)


class TestTrainingJob:
    def test_derived_quantities(self):
        job = mlp_job(epochs=3, batches=5, batch_size=8)
        assert job.total_batches == 15
        assert job.total_samples == 120
        assert job.num_shards == 2

    def test_validation(self):
        with pytest.raises(SchedulingError):
            mlp_job(epochs=0)
        with pytest.raises(SchedulingError):
            mlp_job(batches=0)


class TestBuildTaskGraph:
    def test_task_count(self):
        job = mlp_job(num_shards=2, epochs=2, batches=3)
        tasks = build_task_graph(job)
        # forward + backward + update per shard per batch
        assert len(tasks) == 2 * 3 * 2 * 3

    def test_task_count_without_updates(self):
        job = mlp_job(num_shards=2, epochs=1, batches=2)
        tasks = build_task_graph(job, include_updates=False)
        assert len(tasks) == 2 * 2 * 2
        assert all(task.kind != TaskKind.UPDATE for task in tasks)

    def test_forward_chain_dependencies(self):
        tasks = {t.task_id: t for t in build_task_graph(mlp_job(num_shards=3, batches=1))}
        fwd1 = tasks[task_id_for("mlp-0", 0, 0, 1, TaskKind.FORWARD)]
        assert task_id_for("mlp-0", 0, 0, 0, TaskKind.FORWARD) in fwd1.deps

    def test_backward_depends_on_forward_and_downstream(self):
        tasks = {t.task_id: t for t in build_task_graph(mlp_job(num_shards=3, batches=1))}
        bwd1 = tasks[task_id_for("mlp-0", 0, 0, 1, TaskKind.BACKWARD)]
        assert task_id_for("mlp-0", 0, 0, 1, TaskKind.FORWARD) in bwd1.deps
        assert task_id_for("mlp-0", 0, 0, 2, TaskKind.BACKWARD) in bwd1.deps
        last_bwd = tasks[task_id_for("mlp-0", 0, 0, 2, TaskKind.BACKWARD)]
        assert len(last_bwd.deps) == 1  # only its own forward

    def test_update_depends_on_backward(self):
        tasks = {t.task_id: t for t in build_task_graph(mlp_job(num_shards=2, batches=1))}
        update = tasks[task_id_for("mlp-0", 0, 0, 1, TaskKind.UPDATE)]
        assert update.deps == [task_id_for("mlp-0", 0, 0, 1, TaskKind.BACKWARD)]

    def test_next_batch_waits_for_update(self):
        tasks = {t.task_id: t for t in build_task_graph(mlp_job(num_shards=2, batches=2))}
        fwd_b1 = tasks[task_id_for("mlp-0", 0, 1, 0, TaskKind.FORWARD)]
        assert task_id_for("mlp-0", 0, 0, 0, TaskKind.UPDATE) in fwd_b1.deps

    def test_next_epoch_waits_for_previous_epoch(self):
        tasks = {t.task_id: t for t in build_task_graph(mlp_job(num_shards=2, epochs=2, batches=1))}
        fwd_e1 = tasks[task_id_for("mlp-0", 1, 0, 0, TaskKind.FORWARD)]
        assert task_id_for("mlp-0", 0, 0, 0, TaskKind.UPDATE) in fwd_e1.deps

    def test_backward_flops_are_double_forward(self):
        tasks = build_task_graph(mlp_job(num_shards=2, batches=1))
        forwards = {t.shard_index: t for t in tasks if t.kind == TaskKind.FORWARD}
        backwards = {t.shard_index: t for t in tasks if t.kind == TaskKind.BACKWARD}
        for shard, fwd in forwards.items():
            assert backwards[shard].flops == pytest.approx(2 * fwd.flops)

    def test_transfer_bytes_match_shard_boundaries(self):
        job = mlp_job(num_shards=2, batches=1)
        tasks = build_task_graph(job)
        fwd1 = next(t for t in tasks if t.kind == TaskKind.FORWARD and t.shard_index == 1)
        assert fwd1.input_bytes == job.plan.shards[1].input_bytes
        bwd0 = next(t for t in tasks if t.kind == TaskKind.BACKWARD and t.shard_index == 0)
        assert bwd0.input_bytes == job.plan.shards[0].output_bytes

    def test_cross_model_independence(self):
        tasks = build_task_graphs([mlp_job("a"), mlp_job("b")])
        a_ids = {t.task_id for t in tasks if t.model_id == "a"}
        for task in tasks:
            if task.model_id == "b":
                assert not (set(task.deps) & a_ids)

    def test_duplicate_model_ids_rejected(self):
        with pytest.raises(SchedulingError):
            build_task_graphs([mlp_job("same"), mlp_job("same")])

    def test_shard_key_and_tags(self):
        task = build_task_graph(mlp_job())[0]
        assert task.shard_key == "mlp-0/shard0"


class TestPlacement:
    def test_assign_and_lookup(self):
        placement = Placement()
        placement.assign("m", 0, "gpu1")
        assert placement.device_for("m", 0) == "gpu1"
        assert placement.shards_on("gpu1") == [("m", 0)]
        assert placement.devices_used() == ["gpu1"]
        assert len(placement) == 1

    def test_missing_lookup_raises(self):
        with pytest.raises(SchedulingError):
            Placement().device_for("m", 0)

    def test_round_robin_staggers_models(self, four_gpu_cluster):
        jobs = [bert_job(f"b{i}") for i in range(2)]
        placement = round_robin_placement(jobs, four_gpu_cluster, charge_memory=False)
        assert placement.device_for("b0", 0) == "gpu0"
        assert placement.device_for("b1", 0) == "gpu1"
        assert placement.device_for("b0", 1) == "gpu1"

    def test_round_robin_charges_memory(self, four_gpu_cluster):
        jobs = [bert_job("b0")]
        round_robin_placement(jobs, four_gpu_cluster, charge_memory=True)
        assert all(d.used_bytes > 0 for d in four_gpu_cluster.devices)

    def test_memory_aware_balances_free_memory(self, four_gpu_cluster):
        jobs = [bert_job(f"b{i}", num_shards=4) for i in range(2)]
        memory_aware_placement(jobs, four_gpu_cluster)
        used = [d.used_bytes for d in four_gpu_cluster.devices]
        assert max(used) < 2.5 * min(used)

    def test_memory_aware_rejects_oversized_shard(self, two_gpu_cluster):
        job = bert_job("big", num_shards=1, batch_size=32)
        with pytest.raises(SchedulingError):
            memory_aware_placement([job], two_gpu_cluster)

    def test_memory_aware_rejects_when_cluster_full(self, two_gpu_cluster):
        jobs = [bert_job(f"b{i}", num_shards=2, batch_size=32) for i in range(6)]
        with pytest.raises(SchedulingError):
            memory_aware_placement(jobs, two_gpu_cluster)


class TestWavePlanning:
    def test_single_wave_when_everything_fits(self, four_gpu_cluster):
        jobs = [bert_job(f"b{i}") for i in range(2)]
        waves = plan_waves(jobs, four_gpu_cluster)
        assert len(waves) == 1
        assert len(waves[0]) == 2

    def test_multiple_waves_when_cluster_is_small(self, four_gpu_cluster):
        jobs = [bert_job(f"b{i}", batch_size=32) for i in range(8)]
        waves = plan_waves(jobs, four_gpu_cluster)
        assert len(waves) >= 2
        assert sum(len(wave) for wave in waves) == 8

    def test_impossible_job_rejected(self, two_gpu_cluster):
        job = bert_job("impossible", num_shards=1, batch_size=32)
        with pytest.raises(SchedulingError):
            plan_waves([job], two_gpu_cluster)

    def test_wave_order_preserves_submission_order(self, four_gpu_cluster):
        jobs = [bert_job(f"b{i}", batch_size=32) for i in range(6)]
        waves = plan_waves(jobs, four_gpu_cluster)
        flattened = [job.model_id for wave in waves for job in wave]
        assert flattened == [f"b{i}" for i in range(6)]


class TestPolicies:
    def _ready(self):
        return [
            SimTask("fwd-new", "gpu0", tags={"kind": "forward", "epoch": 0, "batch": 3, "model": "b"}),
            SimTask("bwd-old", "gpu0", tags={"kind": "backward", "epoch": 0, "batch": 1, "model": "a"}),
            SimTask("upd-old", "gpu0", tags={"kind": "update", "epoch": 0, "batch": 1, "model": "c"}),
        ]

    def test_fifo_returns_first(self):
        ready = self._ready()
        assert fifo_policy("gpu0", ready) is ready[0]

    def test_backward_first_prefers_updates_then_backwards(self):
        ready = self._ready()
        assert backward_first_policy("gpu0", ready).task_id == "upd-old"
        ready = [t for t in ready if t.task_id != "upd-old"]
        assert backward_first_policy("gpu0", ready).task_id == "bwd-old"

    def test_model_round_robin_picks_a_ready_task(self):
        chosen = model_round_robin_policy("gpu0", self._ready())
        assert chosen.tags["model"] == "a"

    def test_random_policy_deterministic_with_seed(self):
        from repro.scheduler.policies import random_policy_factory

        ready = self._ready()
        a = random_policy_factory(3)
        b = random_policy_factory(3)
        assert [a("gpu0", ready).task_id for _ in range(5)] == [
            b("gpu0", ready).task_id for _ in range(5)
        ]

    def test_random_policy_returns_member(self):
        ready = self._ready()
        assert random_policy("gpu0", ready) in ready

    def test_get_policy_by_name(self):
        assert get_policy("fifo") is fifo_policy
        assert callable(get_policy("model_round_robin"))
        assert callable(get_policy("random", seed=1))
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            get_policy("not-a-policy")
