"""``ConcurrentBackend``: concurrent trial execution for any backend.

This wrapper is how an :class:`~repro.api.experiment.Experiment` gains a
worker pool without touching searchers or backends: it *is* an
:class:`~repro.api.backend.ExecutionBackend`, so the
:class:`~repro.api.experiment.TrialRunner` drives it like any other, but
each cohort call fans out across a :class:`~repro.api.runtime.pool.WorkerPool`:

* ``prepare`` is **deferred**: the outer handle is created instantly and the
  inner backend's (potentially expensive) ``prepare`` runs inside the worker
  on first training contact — so a cohort's preparations overlap too;
* ``train_many`` dispatches one future per trial through an
  :class:`~repro.api.runtime.runner.AsyncTrialRunner`, with per-trial retry,
  backoff, and straggler timeout from a
  :class:`~repro.api.runtime.runner.RetryPolicy`;
* a trial that still fails is marked on its handle (``handle.failure``) and
  surfaces as a :class:`~repro.selection.experiment.FailedTrial` — the rest
  of the cohort and the experiment continue;
* results are collected in handle order, never completion order, so the
  :class:`~repro.selection.experiment.SelectionResult` ranking is identical
  at any worker count.

Semantics note: a cohort-engine backend (shard-parallel, Cerebro) normally
co-schedules the whole cohort inside one driver.  Wrapped, each trial trains
in its own single-model driver on its own worker instead.  Each model's own
update sequence is unchanged — cohort membership never leaks into a model's
numerics — so losses and rankings match the serial run exactly.
"""

from __future__ import annotations

import shutil
import tempfile
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.api.backend import ExecutionBackend, TrialHandle
from repro.api.runtime.pool import WorkerPool, make_pool
from repro.api.runtime.runner import AsyncTrialRunner, RetryPolicy, TrialFault
from repro.exceptions import ConfigurationError
from repro.selection.experiment import TrialConfig
from repro.telemetry import NULL_TELEMETRY, Telemetry
from repro.utils.logging import log_context
from repro.utils.serialization import probe_picklable


@dataclass(frozen=True)
class _ChildTrialReport:
    """What one process-pool trial task ships back over the pipe.

    Live state never crosses: ``snapshot`` is whatever the inner backend's
    ``save_snapshot`` returned (a checkpoint path for real-training
    backends), and the parent re-attaches it with ``load_snapshot``.
    ``events`` are the child's drained telemetry events (empty when
    telemetry is off) — they ride the existing result channel, so a child
    killed mid-trial ships nothing and the parent trace is never torn.
    """

    metrics: Dict[str, float]
    elapsed: float
    snapshot: Any
    annotations: Dict[str, Any] = field(default_factory=dict)
    events: Tuple = ()


class _ChildTrialTask:
    """A picklable per-trial task: one whole train call, run in a child.

    The task carries the inner backend *by value* — every dispatch unpickles
    a fresh copy in the worker child, which rebuilds per-process resources
    (spill managers rebuild from their options; registries rebind to their
    root directory).  The child never runs ``teardown``: publish-like
    side effects happen exactly once, in the parent, at retirement
    (``finalize_snapshot``).
    """

    def __init__(
        self,
        inner: ExecutionBackend,
        epochs: int,
        snapshot_dir: str,
        telemetry_enabled: bool = False,
    ):
        self.inner = inner
        self.epochs = epochs
        self.snapshot_dir = snapshot_dir
        # A bool crosses the pickle boundary; a live recorder (locks) cannot.
        # The child builds its own buffer and drains it into the report.
        self.telemetry_enabled = bool(telemetry_enabled)

    def __call__(self, outer: TrialHandle) -> _ChildTrialReport:
        backend = self.inner
        tel = Telemetry() if self.telemetry_enabled else NULL_TELEMETRY
        try:
            setter = getattr(backend, "set_telemetry", None)
            if tel.enabled and callable(setter):
                setter(tel)
            with log_context(trial_id=outer.trial_id):
                if tel.enabled:
                    # A nesting span, so the backend's epoch/step spans get
                    # this trial as their parent in the merged trace.
                    with tel.span("trial", cat="experiment", trial_id=outer.trial_id):
                        handle, metrics, elapsed, snapshot = self._run(backend, outer)
                else:
                    handle, metrics, elapsed, snapshot = self._run(backend, outer)
            return _ChildTrialReport(
                metrics=dict(metrics),
                elapsed=elapsed,
                snapshot=snapshot,
                annotations=dict(handle.annotations),
                events=tuple(tel.drain()) if tel.enabled else (),
            )
        finally:
            # This unpickled backend copy dies with the task, but the child
            # process persists — release any threads it started (prefetch
            # workers) rather than accumulating them across tasks.
            close = getattr(backend, "close", None)
            if callable(close):
                try:
                    close()
                except Exception:  # noqa: BLE001 - cleanup must not mask
                    pass

    def _run(self, backend: ExecutionBackend, outer: TrialHandle):
        """Prepare → (resume) → train → snapshot; the task's actual work."""
        handle = backend.prepare(outer.trial)
        handle.epochs_trained = outer.epochs_trained
        if outer.state is not None:
            backend.load_snapshot(handle, outer.state)
        started = time.monotonic()
        metrics = backend.train(handle, self.epochs)
        elapsed = time.monotonic() - started
        handle.epochs_trained += self.epochs
        handle.last_metrics = dict(metrics)
        snapshot = backend.save_snapshot(handle, self.snapshot_dir)
        return handle, metrics, elapsed, snapshot


class ConcurrentBackend(ExecutionBackend):
    """Wraps any :class:`ExecutionBackend` with pooled, fault-tolerant trials.

    ``workers`` sizes an owned pool of ``pool_kind`` (``"thread"`` by
    default, ``"process"`` for GIL-free trials); pass ``pool`` instead to
    share one across backends (the caller keeps ownership and ``pool_kind``
    is ignored).  ``retry`` configures per-trial fault tolerance.  The
    wrapper is resumable exactly when the inner backend is, so searcher
    eligibility (e.g. successive halving) is unchanged.

    With a **process** pool each trial's whole train call runs in a worker
    child process: the inner backend must pickle (checked up front with a
    round-trip probe — module-level builder functions yes, lambdas no), the
    trial comes home as a ``save_snapshot`` token instead of live state,
    and retirement (``finalize_snapshot`` + ``teardown``) happens exactly
    once, in the parent.  Results are bit-identical to the thread and
    serial pools at any worker count.

    Example::

        from repro.api import ConcurrentBackend, FunctionBackend

        backend = ConcurrentBackend(
            FunctionBackend(lambda trial, epochs: {"loss": 0.0}), workers=4
        )
        try:
            ...  # Experiment(...).run(backend=backend)
        finally:
            backend.close()

    (``Experiment.run(..., workers=N, pool="...")`` builds and closes one
    of these for you; constructing it by hand is only needed for custom
    pools/policies.)

    Raises:
        ConfigurationError: if ``workers`` is not positive, the retry policy
            is invalid, the inner backend declares
            ``concurrency_safe = False`` (its metrics depend on cohort
            co-scheduling — the cluster simulator), or a process pool is
            requested for an inner backend that cannot pickle.
    """

    resumable = True  # overwritten per-instance from the inner backend

    def __init__(
        self,
        inner: ExecutionBackend,
        workers: int = 4,
        pool: Optional[WorkerPool] = None,
        retry: Optional[RetryPolicy] = None,
        pool_kind: str = "thread",
    ):
        if not inner.concurrency_safe:
            raise ConfigurationError(
                f"backend {inner.name!r} measures whole-cohort co-scheduling; "
                f"concurrent per-trial dispatch would change its metrics, not "
                f"accelerate it — run it without workers"
            )
        requested_kind = pool.kind if pool is not None else pool_kind
        if requested_kind == "process":
            problem = probe_picklable(inner)
            if problem is not None:
                raise ConfigurationError(
                    f"backend {inner.name!r} cannot cross a process boundary "
                    f"({problem}); process pools ship the backend to worker "
                    "children by pickling it — use module-level builder "
                    "functions (not closures/lambdas), or a thread pool"
                )
        self.inner = inner
        self.name = f"concurrent({inner.name})"
        self.resumable = inner.resumable
        if pool is not None:
            self.pool = pool
            self._owned_pool: Optional[WorkerPool] = None
        else:
            self.pool = make_pool(workers, kind=pool_kind)
            self._owned_pool = self.pool
        self._process_mode = self.pool.kind == "process"
        self._snapshot_dir: Optional[str] = None
        if self._process_mode:
            self._snapshot_dir = tempfile.mkdtemp(prefix="repro-trial-snapshots-")
        self.retry = retry if retry is not None else RetryPolicy()
        self._runner = AsyncTrialRunner(self.pool, self.retry)
        self._lock = threading.Lock()

    def set_telemetry(self, telemetry) -> None:
        """Attach a recorder; propagate inward only when trials stay in-process.

        In process mode the inner backend is pickled into every child task —
        a live recorder (it holds locks) must not be hung on it; children
        get a ``telemetry_enabled`` flag and build their own buffer instead.
        """
        super().set_telemetry(telemetry)
        if not self._process_mode:
            setter = getattr(self.inner, "set_telemetry", None)
            if callable(setter):
                setter(self.telemetry)
        if self.telemetry.enabled:
            self.telemetry.register_collector(
                "runtime.pool",
                lambda: {"kind": {"thread": 0, "process": 1}.get(self.pool.kind, -1),
                         "workers": self.pool.size},
            )

    # ------------------------------------------------------------------ #
    # Protocol
    # ------------------------------------------------------------------ #
    def prepare(self, trial: TrialConfig) -> TrialHandle:
        """Create a lightweight handle; the inner ``prepare`` is deferred.

        The expensive part (building models, plans, loaders) runs inside a
        worker at this trial's first ``train``/``train_many`` contact, so a
        whole cohort's preparations overlap instead of queueing on the
        caller's thread.
        """
        return TrialHandle(trial=trial)

    def train(self, handle: TrialHandle, epochs: int) -> Dict[str, float]:
        """Train one trial through the pool (a cohort of one)."""
        return self.train_many([handle], epochs)[handle.trial_id]

    def train_many(
        self, handles: Sequence[TrialHandle], epochs: int
    ) -> Dict[str, Dict[str, float]]:
        """Fan the cohort out across the pool; collect metrics in handle order.

        Each trial's task is ``prepare`` (first time only) + ``train`` on the
        inner backend, retried per the policy.  A trial that exhausts its
        retries or straggles past the cohort deadline gets ``handle.failure``
        set to a :class:`TrialFault`, its inner state torn down, and an empty
        metrics dict here — the :class:`TrialRunner` turns that into a
        :class:`FailedTrial` record.  Retries re-run the whole task, so a
        failing ``prepare`` is re-attempted from scratch (at-least-once
        execution: a trial that mutated state before raising resumes from
        that state).
        """
        live = [handle for handle in handles if handle.failure is None]
        tel = self.telemetry
        if self._process_mode:
            task = _ChildTrialTask(
                self.inner, epochs, self._snapshot_dir,
                telemetry_enabled=tel.enabled,
            )
        else:
            task = lambda handle: self._train_one(handle, epochs)  # noqa: E731
        outcomes = self._runner.run_cohort(task, live)
        metrics: Dict[str, Dict[str, float]] = {}
        for handle in handles:
            outcome = outcomes.get(handle.trial_id)
            if isinstance(outcome, TrialFault) or outcome is None:
                if isinstance(outcome, TrialFault):
                    handle.failure = outcome
                    self._teardown_inner(handle)
                    if tel.enabled:
                        tel.counter("runtime.trials.failed")
                metrics[handle.trial_id] = {}
                continue
            if tel.enabled:
                tel.counter("runtime.trials.completed")
            if isinstance(outcome, _ChildTrialReport):
                handle.wall_seconds += outcome.elapsed
                for key, value in outcome.annotations.items():
                    handle.annotations.setdefault(key, value)
                handle.last_metrics = dict(outcome.metrics)
                self.inner.load_snapshot(handle, outcome.snapshot)
                if outcome.events:
                    tel.ingest(outcome.events)
                metrics[handle.trial_id] = dict(outcome.metrics)
                continue
            trial_metrics, elapsed = outcome
            handle.wall_seconds += elapsed
            inner_handle = handle.state
            for key, value in inner_handle.annotations.items():
                handle.annotations.setdefault(key, value)
            handle.last_metrics = dict(trial_metrics)
            metrics[handle.trial_id] = dict(trial_metrics)
        return metrics

    def teardown(self, handle: TrialHandle) -> None:
        """Release the trial's inner state (inline — never through the pool,
        which abandoned stragglers may be saturating; ``_teardown_inner`` is
        thread-safe, so running it on the caller's thread is always safe)."""
        self._teardown_inner(handle)

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Shut down the owned pool (no-op when the pool was caller-supplied).

        Shutdown does not wait: an abandoned straggler keeps its thread until
        it finishes (threads cannot be killed), but its result is already
        discarded and it must not delay the experiment's return.
        """
        if self._owned_pool is not None:
            self._owned_pool.shutdown(wait=False)
        if self._snapshot_dir is not None:
            shutil.rmtree(self._snapshot_dir, ignore_errors=True)
            self._snapshot_dir = None

    def __enter__(self) -> "ConcurrentBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC backstop for the owned pool
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------ #
    def _train_one(
        self, handle: TrialHandle, epochs: int
    ) -> Tuple[Dict[str, float], float]:
        """In-worker task: lazily prepare, then train, timing this trial only."""
        tel = self.telemetry
        with log_context(trial_id=handle.trial_id):
            if tel.enabled:
                with tel.span("trial", cat="experiment", trial_id=handle.trial_id):
                    return self._train_one_impl(handle, epochs)
            return self._train_one_impl(handle, epochs)

    def _train_one_impl(
        self, handle: TrialHandle, epochs: int
    ) -> Tuple[Dict[str, float], float]:
        inner_handle = self._inner_handle(handle)
        started = time.monotonic()
        trial_metrics = self.inner.train(inner_handle, epochs)
        elapsed = time.monotonic() - started
        inner_handle.epochs_trained += epochs
        inner_handle.last_metrics = dict(trial_metrics)
        return dict(trial_metrics), elapsed

    def _inner_handle(self, handle: TrialHandle) -> TrialHandle:
        """Get or build the inner backend's handle for this outer handle.

        Only one worker task touches a given trial at a time (the runner
        submits at most one future per handle per cohort), but the lock keeps
        first-contact preparation safe if a straggler from an abandoned
        dispatch is still running.
        """
        with self._lock:
            inner_handle = handle.state
        if inner_handle is None:
            prepared = self.inner.prepare(handle.trial)
            with self._lock:
                if handle.state is None:
                    handle.state = prepared
                inner_handle = handle.state
        return inner_handle

    def _teardown_inner(self, handle: TrialHandle) -> None:
        """Best-effort inner teardown; never raises (used on failure paths).

        In process mode the outer handle's state is a snapshot token, not an
        inner handle: retirement runs ``finalize_snapshot`` (rebuild trained
        state for publish-like side effects) then ``teardown`` on the outer
        handle itself — exactly once, in the parent; worker children never
        tear down.
        """
        if self._process_mode:
            try:
                self.inner.finalize_snapshot(handle)
                self.inner.teardown(handle)
            except Exception:  # noqa: BLE001 - teardown must not mask the fault
                handle.state = None
            return
        with self._lock:
            inner_handle = handle.state
            handle.state = None
        if inner_handle is None:
            return
        try:
            self.inner.teardown(inner_handle)
        except Exception:  # noqa: BLE001 - teardown must not mask the fault
            pass
